"""TLB shootdown protocol and the stale-translation detector.

A single-core monitor may simply flush its own TLB after unmapping a
page.  With N vCPUs, *every other* core may still cache the dead
translation, so an unmap must complete a shootdown — an IPI per remote
core, each a scheduling point — before the freed frame is scrubbed or
reused.  This is the concurrent form of the paper's Sec. 5 concern that
no window may exist "where a mapping points at a free frame": here the
mapping lives on in a remote TLB instead of a page table.

The detector formalises when a cached translation is *harmfully* stale.
A TLB entry that merely outlived its page-table mapping is benign while
the shootdown is in flight, because the frame underneath it still holds
the enclave's page (the monitor unmaps, *then* shoots down, *then*
scrubs and releases).  The conviction condition is a cached translation
whose target frame the EPCM no longer accounts to that enclave at that
address — at that point the vCPU can reach memory the monitor believes
reclaimed.

This module deliberately duck-types the monitor (``cpus``, ``epcm``,
``layout``, ``config``, ``enclave_translate``) instead of importing
:mod:`repro.hyperenclave`, keeping the concurrency package importable
from inside the hyperenclave modules it instruments.
"""

from typing import List

from repro.errors import ReproError, StaleTranslation
from repro.concurrency import scheduler as conc

_HOST_ID = 0  # mirrors repro.hyperenclave.monitor.HOST_ID (no import: cycle)


def tlb_shootdown(monitor):
    """Flush the translation of every vCPU, remote cores first.

    Each remote flush is preceded by a ``shootdown.ipi`` yield point —
    the window in which that core still runs on its stale TLB, which is
    exactly where the explorer interleaves other vCPUs.  Remote flushes
    are *not* rolled back if the surrounding hypercall aborts: flushing
    a cache is always safe (every dropped entry is re-derivable from
    the page tables), matching real IPIs that cannot be recalled.

    On a single-vCPU monitor this degenerates to exactly one local
    ``flush_all`` — sequential flush-count accounting is unchanged.
    """
    vid = conc.current_vid()
    if vid is None:
        vid = getattr(monitor, "_vid", 0)
    for other, cpu in enumerate(monitor.cpus):
        if other == vid:
            continue
        conc.yield_point("shootdown.ipi", f"ipi vcpu{vid}->vcpu{other}")
        cpu.tlb.flush_all()
    monitor.cpus[vid].tlb.flush_all()


def detect_stale_translations(monitor) -> List[StaleTranslation]:
    """Convict every harmfully stale TLB entry across all vCPUs.

    Runs as the scheduler's per-decision probe (it performs no yields),
    so a violation is caught inside the window where it is live, even
    if a later flush would have hidden it by the end of the schedule.
    """
    findings = []
    config = monitor.config
    page = config.page_size
    for vid, cpu in enumerate(monitor.cpus):
        eid = cpu.active
        if eid == _HOST_ID:
            continue  # host loads bypass the TLB (direct physical map)
        entries, _flush_count = cpu.tlb.snapshot()
        for (_asid, (va_page, write)), (pa_page, span) in entries:
            # A block (huge-page) TLB entry caches the translation of
            # its whole span; comparing only the base page would miss an
            # interior page whose mapping changed underneath the entry.
            # Sweep every page the entry covers (one conviction per
            # entry suffices).
            for off in range(0, span or page, page):
                va = va_page + off
                try:
                    expected = config.page_base(
                        monitor.enclave_translate(eid, va, write=write))
                except ReproError:
                    expected = None
                if expected == pa_page + off:
                    continue
                frame = config.frame_of(pa_page + off)
                if monitor.layout.is_epc(frame):
                    entry = monitor.epcm.entry_for_frame(frame)
                    if (entry.owner == eid and entry.va == va
                            and entry.state.value == "reg"):
                        # Unmapped but not yet released: the in-flight
                        # shootdown window, in which the frame still
                        # holds this enclave's page.  Benign by
                        # construction.
                        continue
                    reason = (f"frame {frame} is "
                              f"{entry.state.value}/owner={entry.owner}")
                elif expected is None:
                    reason = "there is no mapping"
                else:
                    reason = f"the va now maps to {expected:#x}"
                findings.append(StaleTranslation(
                    vid=vid, principal=eid, va_page=va,
                    cached_pa=pa_page + off, reason=reason))
                break
    return findings
