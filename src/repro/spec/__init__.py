"""Functional specifications of the paging subsystem (Sec. 4.1).

Two views of the same page tables:

* the **low spec** (:mod:`repro.spec.flat`) — "a flat representation":
  pure functions over an abstract state holding the page-table pool as a
  map of 64-bit words plus the allocation bitmap,
* the **high spec** (:mod:`repro.spec.tree`) — "a tree representation
  for use by the higher layers": entries *contain* the next table
  directly, so aliasing is unrepresentable and installing a mapping is a
  local change.

:mod:`repro.spec.pte_record` defines the parameterised PTE record with
the paper's ``unused_inv``; :mod:`repro.spec.relation` defines ``R_pte``
and ``R`` relating the two views plus the abstraction function that
*computes* the tree view from flat memory (and refuses when an entry
escapes the monitor's frame area — the exact reason the Sec. 4.1
shallow-copy bug is unprovable).
"""

from repro.spec.pte_record import PTERecord, TreeTable
from repro.spec.flat import (
    FlatPtState,
    flat_initial_state,
    flat_alloc_frame,
    flat_read_entry,
    flat_write_entry,
    flat_new_table,
    flat_walk,
    flat_map_page,
    flat_unmap,
    flat_query,
)
from repro.spec.tree import (
    tree_empty,
    tree_walk,
    tree_map_page,
    tree_unmap,
    tree_query,
    tree_mappings,
    tree_table_count,
)
from repro.spec.relation import (
    abstract_table,
    r_pte,
    relation_r,
    AbstractionFailure,
)
from repro.spec.walk import spec_translate, spec_walk_terminal

__all__ = [
    "PTERecord", "TreeTable",
    "FlatPtState", "flat_initial_state", "flat_alloc_frame",
    "flat_read_entry", "flat_write_entry", "flat_new_table", "flat_walk",
    "flat_map_page", "flat_unmap", "flat_query",
    "tree_empty", "tree_walk", "tree_map_page", "tree_unmap",
    "tree_query", "tree_mappings", "tree_table_count",
    "abstract_table", "r_pte", "relation_r", "AbstractionFailure",
    "spec_translate", "spec_walk_terminal",
]
