"""repro.engine — the parallel checking fabric.

Every checking engine in the repro (fault campaigns, the
bounded-preemption interleaving explorer, the two-world noninterference
sweeps, the hardened pure checks) is a pure function of its seeds, so
its work units can be fanned out across processes and the results
merged deterministically.  This package provides:

* :mod:`repro.engine.executor` — a deterministic sharded
  ``ProcessPoolExecutor`` wrapper: work units are partitioned by a
  stable shard key and the merge reassembles results in unit order, so
  the combined output is byte-identical to the sequential run no matter
  how many workers raced.
* :mod:`repro.engine.fingerprint` — canonical 64-bit fingerprints over
  the mutable monitor structures (phys, pt_allocator, epcm, enclaves,
  cpus/TLBs), stable across worker processes.
* :mod:`repro.engine.memo` — fingerprint-keyed memoisation of invariant
  sweeps, the vCPU consistency check, and noninterference observation
  diffs, with per-structure dirty tracking: only families whose
  structures changed since an already-certified state are re-checked.
* :mod:`repro.engine.campaigns` — parallel counterparts of every
  sequential campaign, each byte-identical to its sequential twin.
* :mod:`repro.engine.bug_matrix` — the 13-planted-bug conviction
  matrix, runnable through the parallel fabric.
* :mod:`repro.engine.bench` — the perf harness emitting
  ``BENCH_checking.json`` (schedules/sec, states/sec, cache hit rates,
  speedup vs sequential).
"""

from repro.engine.executor import ShardedExecutor, resolve_workers
from repro.engine.fingerprint import (
    STRUCTURES,
    fingerprint,
    state_fingerprint,
    structure_fingerprints,
)
from repro.engine.memo import FAMILY_DEPS, CheckMemo
from repro.engine.campaigns import (
    parallel_bitflip_campaigns,
    parallel_crash_in_critical_section_campaign,
    parallel_crash_ni_campaign,
    parallel_crash_step_campaign,
    parallel_interleaving_campaign,
    parallel_pure_check_grid,
    sequential_pure_check_grid,
)
from repro.engine.bug_matrix import run_matrix, run_matrix_parallel


def __getattr__(name):
    # Lazy so `python -m repro.engine.bench` does not trip runpy's
    # already-imported warning.
    if name == "bench_checking":
        from repro.engine.bench import bench_checking
        return bench_checking
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ShardedExecutor",
    "resolve_workers",
    "STRUCTURES",
    "fingerprint",
    "state_fingerprint",
    "structure_fingerprints",
    "FAMILY_DEPS",
    "CheckMemo",
    "parallel_bitflip_campaigns",
    "parallel_crash_in_critical_section_campaign",
    "parallel_crash_ni_campaign",
    "parallel_crash_step_campaign",
    "parallel_interleaving_campaign",
    "parallel_pure_check_grid",
    "sequential_pure_check_grid",
    "run_matrix",
    "run_matrix_parallel",
    "bench_checking",
]
