"""The metrics registry: snapshot, delta, counter groups, merging.

The merge semantics are the load-bearing part — the parallel fabric
aggregates worker snapshots through :meth:`MetricsRegistry.merge`, so
counters must add, gauges must combine order-independently (max), and
histogram summaries must compose exactly.
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry


class TestWriting:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        assert registry.inc("runs") == 1
        assert registry.inc("runs", 4) == 5
        assert registry.snapshot()["counters"]["runs"] == 5

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("pool.workers", 4)
        registry.set_gauge("pool.workers", 2)
        assert registry.snapshot()["gauges"]["pool.workers"] == 2

    def test_histograms_stream_summaries(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 1.0):
            registry.observe("unit.seconds", value)
        hist = registry.snapshot()["histograms"]["unit.seconds"]
        assert hist == {"count": 3, "total": 3.0, "min": 0.5, "max": 1.5}


class TestCounterGroups:
    def test_group_is_live_storage(self):
        registry = MetricsRegistry()
        stats = registry.counter_group("solver", ("calls", "hits"))
        stats["calls"] += 3          # the hot-loop idiom, unchanged
        assert registry.snapshot()["counters"]["solver.calls"] == 3

    def test_same_prefix_returns_same_dict(self):
        registry = MetricsRegistry()
        first = registry.counter_group("solver", ("calls",))
        second = registry.counter_group("solver", ("hits",))
        assert first is second
        assert set(first) == {"calls", "hits"}

    def test_group_adds_to_inherited_plain_counter(self):
        """A same-named plain counter (a forked worker inherits the
        parent's merged totals that way) adds to the group value in the
        snapshot — overwriting would make the worker's shard delta come
        out as ``group - inherited`` and corrupt the parent on merge."""
        registry = MetricsRegistry()
        registry.inc("solver.calls", 10)          # inherited via fork
        before = registry.snapshot()
        stats = registry.counter_group("solver", ("calls",))
        stats["calls"] += 3                       # this process's work
        after = registry.snapshot()
        assert after["counters"]["solver.calls"] == 13
        assert registry.delta(before, after)["counters"][
            "solver.calls"] == 3

    def test_reset_keeps_group_identity(self):
        registry = MetricsRegistry()
        stats = registry.counter_group("solver", ("calls",))
        stats["calls"] = 7
        registry.inc("other", 2)
        registry.reset()
        assert registry.counter_group("solver", ()) is stats
        assert stats["calls"] == 0
        assert registry.snapshot()["counters"] == {"solver.calls": 0}


class TestDelta:
    def test_counter_delta(self):
        registry = MetricsRegistry()
        registry.inc("runs", 2)
        before = registry.snapshot()
        registry.inc("runs", 3)
        registry.inc("fresh")
        delta = registry.delta(before)
        assert delta["counters"] == {"runs": 3, "fresh": 1}

    def test_histogram_delta_subtracts_counts_and_totals(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 1.0)
        before = registry.snapshot()
        registry.observe("seconds", 3.0)
        delta = registry.delta(before)
        assert delta["histograms"]["seconds"]["count"] == 1
        assert delta["histograms"]["seconds"]["total"] == 3.0


class TestMerge:
    def test_counters_add_and_route_into_groups(self):
        parent = MetricsRegistry()
        stats = parent.counter_group("solver", ("calls",))
        stats["calls"] = 2
        parent.inc("plain", 1)
        worker = MetricsRegistry()
        worker.counter_group("solver", ("calls",))["calls"] = 5
        worker.inc("plain", 2)
        worker.inc("worker.only", 3)
        parent.merge(worker.snapshot())
        # The live group dict saw the worker's work too.
        assert stats["calls"] == 7
        merged = parent.snapshot()["counters"]
        assert merged["solver.calls"] == 7
        assert merged["plain"] == 3
        assert merged["worker.only"] == 3

    def test_gauges_merge_to_max(self):
        parent = MetricsRegistry()
        parent.set_gauge("depth", 2)
        worker = MetricsRegistry()
        worker.set_gauge("depth", 5)
        worker.set_gauge("fresh", 1)
        parent.merge(worker.snapshot())
        assert parent.snapshot()["gauges"] == {"depth": 5, "fresh": 1}
        # Order independence: merging the smaller value changes nothing.
        low = MetricsRegistry()
        low.set_gauge("depth", 1)
        parent.merge(low.snapshot())
        assert parent.snapshot()["gauges"]["depth"] == 5

    def test_histograms_combine_exactly(self):
        parent = MetricsRegistry()
        parent.observe("seconds", 1.0)
        worker = MetricsRegistry()
        worker.observe("seconds", 0.25)
        worker.observe("seconds", 4.0)
        parent.merge(worker.snapshot())
        hist = parent.snapshot()["histograms"]["seconds"]
        assert hist == {"count": 3, "total": 5.25, "min": 0.25, "max": 4.0}

    def test_merge_order_cannot_change_the_result(self):
        snapshots = []
        for values in ((1.0, 2.0), (0.5,), (3.0, 0.75)):
            worker = MetricsRegistry()
            for value in values:
                worker.observe("seconds", value)
                worker.inc("count")
            snapshots.append(worker.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snapshots:
            forward.merge(snap)
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()


def test_global_registry_exists():
    assert isinstance(REGISTRY, MetricsRegistry)
    snapshot = REGISTRY.snapshot()
    assert set(snapshot) == {"counters", "gauges", "histograms"}


def test_render_metrics_formats_every_kind():
    from repro.reporting import render_metrics

    registry = MetricsRegistry()
    registry.inc("campaign.runs", 7)
    registry.set_gauge("pool.workers", 4)
    registry.observe("unit.seconds", 0.5)
    registry.counter_group("solver", ("calls",))["calls"] = 3
    text = render_metrics(registry.snapshot(), title="obs")
    assert "obs" in text
    assert "campaign.runs" in text
    assert "solver.calls" in text
    assert "pool.workers" in text
    assert "unit.seconds" in text
    # Deterministic: same snapshot renders the same text.
    assert text == render_metrics(registry.snapshot(), title="obs")


def test_render_metrics_handles_empty_snapshot():
    from repro.reporting import render_metrics

    text = render_metrics(MetricsRegistry().snapshot())
    assert "(empty)" in text
