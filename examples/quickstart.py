#!/usr/bin/env python3
"""Quickstart: boot HyperEnclave, run an enclave, check everything.

Covers the three faces of the library in ~80 lines:

1. drive the executable HyperEnclave model (boot, ECREATE/EADD/EINIT,
   marshalling-buffer communication),
2. check the Sec. 5.2 security invariants on the live system,
3. verify one function of the mirlight corpus against its spec.

Run:  python examples/quickstart.py
"""

from repro.hyperenclave import RustMonitor
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.security import check_all_invariants
from repro.verification import verify_pure_function, verify_stateful_function

PAGE = TINY.page_size


def main():
    # ---- 1. the system: boot the monitor and run one enclave ----------
    monitor = RustMonitor(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)

    # The (untrusted) OS prepares a source page and an mbuf backing.
    src_pa = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf_pa = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src_pa, 0xC0DE)

    # ECREATE / EADD / EINIT through hypercalls.
    eid = monitor.hc_create(elrange_base=16 * PAGE, elrange_size=2 * PAGE,
                            mbuf_va=12 * PAGE, mbuf_pa=mbuf_pa,
                            mbuf_size=PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src_pa)
    monitor.hc_init(eid)
    print(f"enclave {eid} initialized; "
          f"measurement={monitor.enclaves[eid].measurement:#x}")

    # The enclave sees the copied page; the OS cannot see the EPC.
    print(f"enclave reads its page: "
          f"{monitor.enclave_load(eid, 16 * PAGE):#x}")

    # Communication through the marshalling buffer (the only channel).
    primary_os.gpt_map(app.gpt_root_gpa, 12 * PAGE, mbuf_pa)
    primary_os.store(app, 12 * PAGE, 0xAA)
    print(f"enclave reads mbuf: {monitor.enclave_load(eid, 12 * PAGE):#x}")
    monitor.enclave_store(eid, 12 * PAGE + 8, 0xBB)
    print(f"app reads mbuf reply: {primary_os.load(app, 12 * PAGE + 8):#x}")

    # World switch.
    monitor.hc_enter(eid)
    monitor.vcpu.write_reg("rax", 0x5EC)
    monitor.hc_exit(eid)
    print("enter/exit done; host context restored "
          f"(rax={monitor.vcpu.read_reg('rax'):#x})")

    # ---- 2. the invariants (Sec. 5.2) ----------------------------------
    report = check_all_invariants(monitor)
    print(f"invariants: {report}")
    assert report.ok

    # ---- 3. the verification framework ---------------------------------
    model = build_model(TINY)
    verdict = verify_pure_function(model, "pte_new")
    print(f"code proof  {verdict}")
    verdict = verify_stateful_function(model, "map_page", count=12)
    print(f"code proof  {verdict}")
    print("quickstart complete.")


if __name__ == "__main__":
    main()
