"""Noninterference: Theorem 5.1 and Lemmas 5.2-5.4 as trace checkers.

The paper proves, in Coq, that indistinguishability is preserved by
every transition.  The reproduction *checks* the same statements over
generated executions:

* :func:`check_lemma_integrity` (Lemma 5.2) — while ``p`` is inactive,
  moves by other principals never change V(p, σ).
* :func:`check_lemma_confidentiality` (Lemma 5.3) — from two active
  indistinguishable states, the same move by ``p`` keeps the states
  indistinguishable.
* :func:`check_lemma_activation` (Lemma 5.4) — from two inactive
  indistinguishable states, another principal's moves into ``p``-active
  states keep them indistinguishable.
* :func:`check_theorem_noninterference` (Theorem 5.1) — the composed
  statement over whole traces, driven through :class:`TwoWorlds`.

The two-world construction mirrors the paper's proof narrative: world A
and world B differ only in a secret belonging to some *other* principal
(41 vs 42 in the paper's example); if the observer can ever tell the
worlds apart, confidentiality is broken — and the checker returns the
exact step and observation component as a witness.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import NoninterferenceViolation
from repro.security.observation import observe
from repro.security.transitions import apply_step


def indistinguishable(state_a, state_b, principal) -> bool:
    """V(p, σ_a) == V(p, σ_b)."""
    return observe(state_a, principal) == observe(state_b, principal)


def observation_diff(state_a, state_b, principal) -> Tuple[str, ...]:
    return observe(state_a, principal).diff(observe(state_b, principal))


@dataclass
class NIViolation:
    """A distinguishing witness."""

    lemma: str
    step_index: int
    observer: int
    components: Tuple[str, ...]
    detail: str = ""

    def __str__(self):
        return (f"[{self.lemma}] step {self.step_index}: observer "
                f"{self.observer} distinguishes via {self.components} "
                f"{self.detail}")


class TwoWorlds:
    """Two executions in lockstep, differing only in chosen secrets."""

    def __init__(self, world_a, world_b):
        self.a = world_a
        self.b = world_b
        self.history: List[Tuple] = []

    def apply(self, step_a, step_b=None):
        """Apply a step to both worlds (``step_b`` defaults to
        ``step_a``; pass a different one only for secret-injection moves
        by principals the observer may not see)."""
        step_b = step_b if step_b is not None else step_a
        outcome_a = apply_step(self.a, step_a)
        outcome_b = apply_step(self.b, step_b)
        self.history.append((step_a, step_b))
        return outcome_a, outcome_b

    def indistinguishable_to(self, principal) -> bool:
        return indistinguishable(self.a, self.b, principal)

    def diff_for(self, principal) -> Tuple[str, ...]:
        return observation_diff(self.a, self.b, principal)


# ---------------------------------------------------------------------------
# Lemma 5.2 — integrity
# ---------------------------------------------------------------------------


def check_lemma_integrity(state, steps, observer) -> List[NIViolation]:
    """While ``observer`` stays inactive, each step by another principal
    must leave V(observer) unchanged.

    Steps that activate the observer (enter) end the checked window —
    they belong to Lemma 5.4.  Lifecycle calls *targeting* the observer
    (add_page into it before init) legitimately change its view and must
    not appear in the trace; the caller builds traces accordingly.
    """
    violations = []
    before = observe(state, observer)
    for index, step in enumerate(steps):
        if state.active == observer:
            break
        apply_step(state, step)
        if state.active == observer:
            break  # activation edge: Lemma 5.4 territory
        after = observe(state, observer)
        if after != before:
            violations.append(NIViolation(
                lemma="lemma-5.2-integrity", step_index=index,
                observer=observer, components=before.diff(after),
                detail=f"after {step!r}"))
        before = after
    return violations


# ---------------------------------------------------------------------------
# Lemma 5.3 — confidentiality
# ---------------------------------------------------------------------------


def check_lemma_confidentiality(worlds, steps, actor) -> List[NIViolation]:
    """From active indistinguishable states, ``actor``'s own moves keep
    the worlds indistinguishable to the actor."""
    violations = []
    if not worlds.indistinguishable_to(actor):
        violations.append(NIViolation(
            lemma="lemma-5.3-confidentiality", step_index=-1,
            observer=actor, components=worlds.diff_for(actor),
            detail="initial states already distinguishable"))
        return violations
    for index, step in enumerate(steps):
        worlds.apply(step)
        if not worlds.indistinguishable_to(actor):
            violations.append(NIViolation(
                lemma="lemma-5.3-confidentiality", step_index=index,
                observer=actor, components=worlds.diff_for(actor),
                detail=f"after {step!r}"))
    return violations


# ---------------------------------------------------------------------------
# Lemma 5.4 — activation
# ---------------------------------------------------------------------------


def check_lemma_activation(worlds, steps, observer) -> List[NIViolation]:
    """From inactive indistinguishable states, moves by others that end
    with ``observer`` active keep the worlds indistinguishable."""
    violations = []
    for index, step in enumerate(steps):
        worlds.apply(step)
        if not worlds.indistinguishable_to(observer):
            violations.append(NIViolation(
                lemma="lemma-5.4-activation", step_index=index,
                observer=observer, components=worlds.diff_for(observer),
                detail=f"after {step!r}"))
    return violations


# ---------------------------------------------------------------------------
# Theorem 5.1 — composed noninterference
# ---------------------------------------------------------------------------


def check_theorem_noninterference(worlds, trace, observers,
                                  stop_at_first=False) -> List[NIViolation]:
    """The composed theorem over a whole trace.

    ``trace`` items are either a shared :class:`Step` or an
    ``(step_a, step_b)`` pair for secret-dependent moves by principals
    outside every observer's view.  After every step, each observer's
    indistinguishability is re-checked.
    """
    violations = []
    for observer in observers:
        if not worlds.indistinguishable_to(observer):
            violations.append(NIViolation(
                lemma="theorem-5.1", step_index=-1, observer=observer,
                components=worlds.diff_for(observer),
                detail="initial states already distinguishable"))
    for index, item in enumerate(trace):
        if isinstance(item, tuple) and len(item) == 2:
            worlds.apply(item[0], item[1])
        else:
            worlds.apply(item)
        for observer in observers:
            if not worlds.indistinguishable_to(observer):
                violations.append(NIViolation(
                    lemma="theorem-5.1", step_index=index,
                    observer=observer,
                    components=worlds.diff_for(observer),
                    detail=f"after {item!r}"))
                if stop_at_first:
                    return violations
    return violations


def check_schedule_noninterference(run_world, schedule,
                                   observers) -> List[NIViolation]:
    """Two-world noninterference over one *interleaved* execution.

    ``run_world(secret, schedule)`` must build a fresh world whose
    victim enclave holds ``secret`` and execute ``schedule`` under the
    deterministic scheduler, returning ``(state, RunResult)``.  The two
    worlds (secrets 41 and 42, the paper's example pair) must first
    produce the *identical* scheduler trace — if the interleaving
    itself depends on the secret, that is already a scheduling side
    channel — and must then be indistinguishable to every observer on
    every vCPU's view of the final state.
    """
    state_a, result_a = run_world(41, schedule)
    return check_schedule_noninterference_prepared(
        state_a, result_a, run_world, schedule, observers)


def _default_final_diff(state_a, state_b, vid, observer):
    with state_a.monitor.on_cpu(vid), state_b.monitor.on_cpu(vid):
        return observation_diff(state_a, state_b, observer)


def check_schedule_noninterference_prepared(state_a, result_a, run_world,
                                            schedule, observers,
                                            diff=None) -> List[NIViolation]:
    """:func:`check_schedule_noninterference` with world A pre-run.

    ``run_world`` is deterministic, so a caller that already executed the
    secret-41 world (the interleaving campaign checks invariants on it
    first) can hand in ``(state_a, result_a)`` and pay for only the
    secret-42 run — identical violations, one world build fewer.
    ``diff(state_a, state_b, vid, observer)`` overrides the final-state
    observation diff (the parallel fabric memoises it by fingerprint).
    """
    final_diff = diff or _default_final_diff
    state_b, result_b = run_world(42, schedule)
    violations = []
    if result_a.trace != result_b.trace:
        violations.append(NIViolation(
            lemma="schedule-ni", step_index=-1, observer=-1,
            components=("scheduler-trace",),
            detail="the interleaving itself depends on the secret"))
        return violations
    for observer in observers:
        for vid in range(state_a.monitor.num_vcpus):
            found = final_diff(state_a, state_b, vid, observer)
            if found:
                violations.append(NIViolation(
                    lemma="schedule-ni", step_index=len(result_a.trace),
                    observer=observer, components=found,
                    detail=f"final state as seen from vcpu{vid}"))
    return violations


def assert_noninterference(worlds, trace, observers):
    """Raise :class:`NoninterferenceViolation` on the first witness."""
    violations = check_theorem_noninterference(worlds, trace, observers,
                                               stop_at_first=True)
    if violations:
        witness = violations[0]
        raise NoninterferenceViolation(witness.lemma, str(witness),
                                       witness=witness)
