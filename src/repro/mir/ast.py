"""The mirlight program syntax.

"MIR programs are formatted as control flow graphs, where each labelled
block consists of multiple statements followed by one 'terminator'. We
define the program syntax as a datatype in Coq (28 types of expressions
and 11 statements/terminators are supported)." (Sec. 3.1)

The same counts hold here.  The 28 expression constructors:

==== places (6) ====   Place, Deref, FieldProj, IndexProj, ConstantIndex,
                       Downcast
==== operands (3) ====  Copy, Move, Constant
==== constants (6) ===  ConstInt, ConstBool, ConstUnit, ConstStr,
                       ConstFn, ConstChar
==== rvalues (13) ====  Use, Ref, AddressOf, BinaryOp, CheckedBinaryOp,
                       UnaryOp, Cast, AggregateRv, Repeat, Len,
                       Discriminant, NullaryOp, CopyForDeref

and the 11 statement/terminator constructors:

==== statements (5) ==  Assign, SetDiscriminant, StorageLive,
                       StorageDead, Nop
==== terminators (6) =  Goto, SwitchInt, Return, Call, Drop, Assert

``EXPRESSION_CONSTRUCTORS`` and ``STATEMENT_CONSTRUCTORS`` export the
lists so tests can pin the counts to the paper's.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.mir.types import MirTy, UNIT
from repro.mir.value import Value


# ---------------------------------------------------------------------------
# Places: where values live
# ---------------------------------------------------------------------------


class PlaceProjection:
    """Base class for projections applied to a place."""


@dataclass(frozen=True)
class Deref(PlaceProjection):
    """Follow the pointer stored at the place built so far."""

    def __str__(self):
        return "*"


@dataclass(frozen=True)
class FieldProj(PlaceProjection):
    """Select struct/tuple field ``index``."""

    index: int

    def __str__(self):
        return f".{self.index}"


@dataclass(frozen=True)
class IndexProj(PlaceProjection):
    """Index an array by the value of local variable ``var``."""

    var: str

    def __str__(self):
        return f"[{self.var}]"


@dataclass(frozen=True)
class ConstantIndex(PlaceProjection):
    """Index an array by compile-time constant ``index``."""

    index: int

    def __str__(self):
        return f"[{self.index}c]"


@dataclass(frozen=True)
class Downcast(PlaceProjection):
    """View an enum place as one of its variants (``as Variant``).

    Field projections that follow apply within the variant's payload.  The
    interpreter checks the live discriminant matches ``variant``.
    """

    variant: int

    def __str__(self):
        return f" as v{self.variant}"


@dataclass(frozen=True)
class Place:
    """A variable plus a projection chain, e.g. ``(*self).entries[i].0``."""

    var: str
    projections: Tuple[PlaceProjection, ...] = ()

    def deref(self):
        return Place(self.var, self.projections + (Deref(),))

    def field(self, index):
        return Place(self.var, self.projections + (FieldProj(index),))

    def index_by(self, var):
        return Place(self.var, self.projections + (IndexProj(var),))

    def index_const(self, index):
        return Place(self.var, self.projections + (ConstantIndex(index),))

    def downcast(self, variant):
        return Place(self.var, self.projections + (Downcast(variant),))

    @property
    def is_bare(self):
        """True when the place is just a variable with no projections."""
        return not self.projections

    def __str__(self):
        text = self.var
        for proj in self.projections:
            if isinstance(proj, Deref):
                text = f"(*{text})"
            else:
                text = f"{text}{proj}"
        return text


def place(var, *projections):
    """Shorthand constructor used pervasively by the corpus."""
    return Place(var, tuple(projections))


# ---------------------------------------------------------------------------
# Operands: how values are obtained
# ---------------------------------------------------------------------------


class Operand:
    """Base class of operands (the leaves of rvalues)."""


@dataclass(frozen=True)
class Copy(Operand):
    """Read a place, leaving it live."""

    place: Place

    def __str__(self):
        return f"copy {self.place}"


@dataclass(frozen=True)
class Move(Operand):
    """Read a place, ending its lifetime.

    Our semantics treat Move exactly like Copy (deallocation is a no-op —
    Sec. 3.2) but the constructor is kept distinct because the borrow
    discipline the object-memory model relies on is defined in terms of
    moves, and the retrofit lints want to see them.
    """

    place: Place

    def __str__(self):
        return f"move {self.place}"


@dataclass(frozen=True)
class Constant(Operand):
    """A literal value.  The wrapped :class:`Value` is built via one of
    the six constant constructors below."""

    value: Value

    def __str__(self):
        return str(self.value)


# The six constant *forms* — thin builders kept as named functions so the
# constructor census in EXPRESSION_CONSTRUCTORS can include them.

def ConstInt(value, ty):
    """An integer constant operand of type ``ty``."""
    from repro.mir.value import mk_int
    return Constant(mk_int(value, ty))


def ConstBool(value):
    """A boolean constant operand."""
    from repro.mir.value import mk_bool
    return Constant(mk_bool(value))


def ConstUnit():
    """The unit constant operand."""
    from repro.mir.value import unit
    return Constant(unit())


def ConstStr(text):
    """A string constant operand (panic messages)."""
    from repro.mir.value import StrValue
    return Constant(StrValue(text))


def ConstChar(char):
    """A character constant operand."""
    from repro.mir.value import CharValue
    return Constant(CharValue(char))


def ConstFn(name):
    """A function-item constant operand."""
    from repro.mir.value import FnValue
    return Constant(FnValue(name))


# ---------------------------------------------------------------------------
# Rvalues: the right-hand sides of assignments
# ---------------------------------------------------------------------------


class Rvalue:
    """Base class of rvalues."""


@dataclass(frozen=True)
class Use(Rvalue):
    """An operand used as an rvalue."""
    operand: Operand

    def __str__(self):
        return str(self.operand)


@dataclass(frozen=True)
class Ref(Rvalue):
    """``&place`` / ``&mut place`` — take the address of a place.

    Produces a :class:`~repro.mir.value.PathPtr`.  Any variable that
    appears under Ref is classified as *local* (memory-allocated) by the
    lifting pass.
    """

    place: Place
    mutable: bool = True

    def __str__(self):
        mut = "mut " if self.mutable else ""
        return f"&{mut}{self.place}"


@dataclass(frozen=True)
class AddressOf(Rvalue):
    """``&raw place`` — raw-pointer form of Ref.  Same semantics here;
    kept distinct because its uses are what the unsafe audit counts."""

    place: Place
    mutable: bool = True

    def __str__(self):
        mut = "mut" if self.mutable else "const"
        return f"&raw {mut} {self.place}"


class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    REM = "%"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class BinaryOp(Rvalue):
    """Wrapping/bitwise/compare binary operation."""
    op: BinOp
    left: Operand
    right: Operand

    def __str__(self):
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class CheckedBinaryOp(Rvalue):
    """Overflow-checked arithmetic: yields ``(wrapped_result, overflowed)``.

    rustc emits these for debug-mode arithmetic followed by an Assert
    terminator on the ``.1`` flag; the corpus contains both halves.
    """

    op: BinOp
    left: Operand
    right: Operand

    def __str__(self):
        return f"Checked({self.left} {self.op.value} {self.right})"


class UnOp(enum.Enum):
    NOT = "!"
    NEG = "-"


@dataclass(frozen=True)
class UnaryOp(Rvalue):
    """Logical/bitwise NOT or arithmetic negation."""
    op: UnOp
    operand: Operand

    def __str__(self):
        return f"{self.op.value}{self.operand}"


class CastKind(enum.Enum):
    INT_TO_INT = "IntToInt"
    PTR_TO_INT = "PtrToInt"      # trusted-code only; audited
    INT_TO_PTR = "IntToPtr"      # trusted-code only; audited
    BOOL_TO_INT = "BoolToInt"


@dataclass(frozen=True)
class Cast(Rvalue):
    """A type cast of an operand."""
    kind: CastKind
    operand: Operand
    ty: MirTy

    def __str__(self):
        return f"{self.operand} as {self.ty} ({self.kind.value})"


class AggregateKind(enum.Enum):
    TUPLE = "tuple"
    STRUCT = "struct"
    VARIANT = "variant"
    ARRAY = "array"


@dataclass(frozen=True)
class AggregateRv(Rvalue):
    """Construct a struct/tuple/array/enum-variant from operand fields."""

    kind: AggregateKind
    operands: Tuple[Operand, ...]
    variant: int = 0

    def __str__(self):
        inner = ", ".join(str(o) for o in self.operands)
        if self.kind is AggregateKind.VARIANT:
            return f"variant#{self.variant}({inner})"
        return f"{self.kind.value}({inner})"


@dataclass(frozen=True)
class Repeat(Rvalue):
    """``[operand; count]`` — an array of ``count`` copies."""

    operand: Operand
    count: int

    def __str__(self):
        return f"[{self.operand}; {self.count}]"


@dataclass(frozen=True)
class Len(Rvalue):
    """Length of the array at ``place``."""

    place: Place

    def __str__(self):
        return f"Len({self.place})"


@dataclass(frozen=True)
class Discriminant(Rvalue):
    """Read the discriminant of the enum at ``place``.

    The Sec. 2.3 retrofit removes these for *value-carrying* enums (rule
    3), but matches over data enums such as Option still use them.
    """

    place: Place

    def __str__(self):
        return f"discriminant({self.place})"


class NullOp(enum.Enum):
    SIZE_OF = "SizeOf"
    ALIGN_OF = "AlignOf"


@dataclass(frozen=True)
class NullaryOp(Rvalue):
    """``SizeOf``/``AlignOf`` — appears only in trusted allocator shims.

    The object-view memory has no layout, so evaluating one outside
    trusted code is a semantic error; the corpus confines them to layer 0.
    """

    op: NullOp
    ty: MirTy

    def __str__(self):
        return f"{self.op.value}({self.ty})"


@dataclass(frozen=True)
class CopyForDeref(Rvalue):
    """MIR's ``CopyForDeref`` — copy a pointer value so the *next*
    statement can deref it.  Semantically identical to ``Use(Copy(p))``;
    rustc distinguishes it and so does our census."""

    place: Place

    def __str__(self):
        return f"deref_copy {self.place}"


# ---------------------------------------------------------------------------
# Statements (5)
# ---------------------------------------------------------------------------


class Statement:
    """Base class of in-block statements."""


@dataclass(frozen=True)
class Assign(Statement):
    """``place = rvalue;``"""
    place: Place
    rvalue: Rvalue

    def __str__(self):
        return f"{self.place} = {self.rvalue};"


@dataclass(frozen=True)
class SetDiscriminant(Statement):
    """Overwrite the enum discriminant at a place."""
    place: Place
    variant: int

    def __str__(self):
        return f"discriminant({self.place}) = {self.variant};"


@dataclass(frozen=True)
class StorageLive(Statement):
    """Marks the start of a local's live range.  The interpreter
    allocates uninitialised locals lazily, so this is bookkeeping — but
    the retrofit lints use the markers to check the corpus was generated
    faithfully."""

    var: str

    def __str__(self):
        return f"StorageLive({self.var});"


@dataclass(frozen=True)
class StorageDead(Statement):
    """End of a live range; a no-op at runtime (Sec. 3.2 treats
    deallocation like a GC'd language would)."""

    var: str

    def __str__(self):
        return f"StorageDead({self.var});"


@dataclass(frozen=True)
class Nop(Statement):
    """No operation."""
    def __str__(self):
        return "nop;"


# ---------------------------------------------------------------------------
# Terminators (6)
# ---------------------------------------------------------------------------


class Terminator:
    """Base class of block terminators."""


@dataclass(frozen=True)
class Goto(Terminator):
    """Unconditional jump."""
    target: str

    def __str__(self):
        return f"goto -> {self.target};"


@dataclass(frozen=True)
class SwitchInt(Terminator):
    """Multi-way branch on an integer/bool operand.

    ``targets`` maps tested values to block labels; ``otherwise`` catches
    the rest.  Rust ``if``/``match`` both lower to this.
    """

    operand: Operand
    targets: Tuple[Tuple[int, str], ...]
    otherwise: str

    def __str__(self):
        arms = ", ".join(f"{v} -> {lbl}" for v, lbl in self.targets)
        return f"switchInt({self.operand}) [{arms}, otherwise -> {self.otherwise}];"


@dataclass(frozen=True)
class Return(Terminator):
    """Return the value of the distinguished variable ``_0``."""

    def __str__(self):
        return "return;"


@dataclass(frozen=True)
class Call(Terminator):
    """``dest = func(args) -> target``.

    ``func`` is an operand (normally a ConstFn).  Calls to *trusted*
    functions dispatch to their registered specification instead of MIR
    code (Sec. 4.2).
    """

    func: Operand
    args: Tuple[Operand, ...]
    dest: Place
    target: str

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        return f"{self.dest} = {self.func}({args}) -> {self.target};"


@dataclass(frozen=True)
class Drop(Terminator):
    """Run the drop glue for ``place`` then continue.

    The corpus's types have no interesting Drop impls, so the semantics
    treat this as a jump — but explicit ``drop`` calls to user functions
    are still modelled (Sec. 3.2: "we still model the call to explicit
    'drop' functions" — those appear as ordinary Calls).
    """

    place: Place
    target: str

    def __str__(self):
        return f"drop({self.place}) -> {self.target};"


@dataclass(frozen=True)
class Assert(Terminator):
    """``assert(cond == expected, msg) -> target`` — models Rust panics
    (bounds checks, overflow checks)."""

    cond: Operand
    expected: bool
    msg: str
    target: str

    def __str__(self):
        return f'assert({self.cond} == {str(self.expected).lower()}, "{self.msg}") -> {self.target};'


# ---------------------------------------------------------------------------
# Blocks, functions, programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BasicBlock:
    """A labelled statement list plus one terminator."""
    label: str
    statements: Tuple[Statement, ...]
    terminator: Terminator


@dataclass
class Function:
    """A mirlight function: a CFG plus variable declarations.

    ``params`` lists parameter names in order; ``ret_ty`` documents the
    return type; ``locals_`` is the set of variables classified as
    memory-allocated by the lifting pass (everything else is a
    temporary).  ``layer`` optionally names the CCAL layer the function
    belongs to, and ``attrs`` carries free-form markers (``unsafe_fn``,
    ``trusted`` ...) consumed by the audit tooling.
    """

    name: str
    params: Tuple[str, ...]
    blocks: Dict[str, BasicBlock]
    entry: str = "bb0"
    locals_: frozenset = frozenset()
    var_tys: Dict[str, MirTy] = field(default_factory=dict)
    ret_ty: MirTy = UNIT
    layer: Optional[str] = None
    attrs: Tuple[str, ...] = ()

    RETURN_VAR = "_0"

    def block(self, label):
        return self.blocks[label]

    def is_local_var(self, var):
        """True if ``var`` lives in object memory rather than the
        temporary environment (Sec. 3.2 'Lifting Local Variables')."""
        return var in self.locals_

    def called_functions(self):
        """Names of functions this function calls (for layer ordering)."""
        names = []
        for block in self.blocks.values():
            term = block.terminator
            if isinstance(term, Call) and isinstance(term.func, Constant):
                fn_value = term.func.value
                name = getattr(fn_value, "name", None)
                if name is not None:
                    names.append(name)
        return names

    def statement_count(self):
        return sum(len(b.statements) + 1 for b in self.blocks.values())


@dataclass
class Program:
    """A collection of functions plus global declarations.

    ``globals_`` maps global names to initial values (installed into
    object memory before execution).  Trusted functions are registered on
    the interpreter, not here, because their meaning is a specification
    over the abstract state rather than MIR code.
    """

    functions: Dict[str, Function] = field(default_factory=dict)
    globals_: Dict[str, Value] = field(default_factory=dict)

    def add_function(self, function):
        """Register a function (duplicates rejected)."""
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        self.functions[function.name] = function
        return function

    def function(self, name):
        return self.functions[name]

    def merged_with(self, other):
        """A new program containing both function sets (layer assembly)."""
        merged = Program(dict(self.functions), dict(self.globals_))
        for fn in other.functions.values():
            merged.add_function(fn)
        merged.globals_.update(other.globals_)
        return merged


# ---------------------------------------------------------------------------
# The constructor census pinned by tests to the paper's counts
# ---------------------------------------------------------------------------

EXPRESSION_CONSTRUCTORS = (
    # places (6)
    Place, Deref, FieldProj, IndexProj, ConstantIndex, Downcast,
    # operands (3)
    Copy, Move, Constant,
    # constant forms (6)
    ConstInt, ConstBool, ConstUnit, ConstStr, ConstChar, ConstFn,
    # rvalues (13)
    Use, Ref, AddressOf, BinaryOp, CheckedBinaryOp, UnaryOp, Cast,
    AggregateRv, Repeat, Len, Discriminant, NullaryOp, CopyForDeref,
)

STATEMENT_CONSTRUCTORS = (
    # statements (5)
    Assign, SetDiscriminant, StorageLive, StorageDead, Nop,
    # terminators (6)
    Goto, SwitchInt, Return, Call, Drop, Assert,
)
