"""The complete bug → checker matrix, over every buggy monitor variant.

Extends Figure 5 to the full negative-example set: thirteen planted
bugs, each detected by the checker the paper assigns to its class —
structural bugs by the §5.2 invariant families or the §4.1 refinement,
behavioural leaks by the §5 noninterference theorem, the
crash-consistency bug by the fault-injection campaign, and the two
concurrency bugs (missing locking discipline, missing TLB shootdown)
by the bounded-preemption interleaving explorer.  The benchmark times
the whole matrix: total detection cost for all thirteen.

The matrix itself (setups, detectors, bug rows) lives in
:mod:`repro.engine.bug_matrix`, where the parallel checking fabric
runs the identical convictions through its sharded executor
(:func:`~repro.engine.bug_matrix.run_matrix_parallel`); this bench
times the sequential sweep.
"""

from repro.engine.bug_matrix import run_matrix
from repro.hyperenclave import buggy
from repro.reporting import render_table


def test_bench_bug_matrix(benchmark, emit):
    results = benchmark(run_matrix)
    rows = [[bug, "DETECTED" if detected else "MISSED", how]
            for bug, detected, how in results]
    emit("bug_matrix",
         render_table(["Planted bug", "Verdict", "Detected by"], rows,
                      title="The full bug → checker matrix "
                            "(all 13 buggy variants)"))
    assert len(results) == len(buggy.ALL_BUGGY_MONITORS) == 13
    assert all(detected for _bug, detected, _how in results)
