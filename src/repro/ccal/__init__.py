"""CCAL-style layered verification, extended to Rust/MIR (Sec. 3.4).

The Certified Concurrent Abstraction Layers methodology views function
executions as relations between *abstract states* and arranges functions
in a dependency hierarchy of *layers*: a proof in a high layer sees only
the specifications of the layer below, never its code.  This subpackage
reproduces that machinery as executable checking:

* :mod:`repro.ccal.absstate` — immutable abstract states and the ZMap
  persistent map used by the tree-shaped page-table specification,
* :mod:`repro.ccal.spec` — functional specifications with the paper's
  ``Args * AbsState -> Ret * AbsState`` shape,
* :mod:`repro.ccal.layer` — layer objects, interface export, stack
  assembly with caller-callee order checks,
* :mod:`repro.ccal.pointers` — factories and classification for the
  three pointer disciplines (concrete / trusted / RData),
* :mod:`repro.ccal.refinement` — co-simulation refinement checking: the
  Python stand-in for the paper's Coq simulation proofs.
"""

from repro.ccal.absstate import AbsState
from repro.ccal.zmap import ZMap
from repro.ccal.spec import Spec, pure_spec, state_spec
from repro.ccal.layer import Layer, LayerStack
from repro.ccal.pointers import (
    trusted_field_ptr,
    trusted_cell_ptr,
    rdata_handle,
    PointerCase,
    classify_pointer_flows,
)
from repro.ccal.refinement import (
    RefinementRelation,
    CoSimChecker,
    CheckReport,
    mir_impl,
)

__all__ = [
    "AbsState",
    "ZMap",
    "Spec",
    "pure_spec",
    "state_spec",
    "Layer",
    "LayerStack",
    "trusted_field_ptr",
    "trusted_cell_ptr",
    "rdata_handle",
    "PointerCase",
    "classify_pointer_flows",
    "RefinementRelation",
    "CoSimChecker",
    "CheckReport",
    "mir_impl",
]
