"""Call-graph analysis, layer inference, and effort accounting.

* :mod:`repro.analysis.blob` — the paper's "ad-hoc scripts" (Sec. 3.3),
  done properly: split the mirlightgen "big blob" into per-function
  sources and order functions into layers from the call graph,
* :mod:`repro.analysis.effort` — the Table 1 / Sec. 6 accounting:
  component line counts, the mirlight expansion factor, and the
  checker-per-line ratio compared against the paper's 1.25 and SeKVM's
  2.16.
"""

from repro.analysis.blob import (
    call_graph,
    split_blob,
    infer_layer_indices,
    layering_consistency,
)
from repro.analysis.effort import (
    PAPER_TABLE1,
    PAPER_RATIOS,
    measure_components,
    corpus_mirlight_loc,
    proof_effort_summary,
)

__all__ = [
    "call_graph", "split_blob", "infer_layer_indices",
    "layering_consistency",
    "PAPER_TABLE1", "PAPER_RATIOS", "measure_components",
    "corpus_mirlight_loc", "proof_effort_summary",
]
