"""The transition system: schedule discipline, faults as no-ops, oracle
semantics for the marshalling buffer, hypercall steps."""

import pytest

from repro.errors import SecurityError
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
    apply_step, apply_trace,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


@pytest.fixture
def world():
    monitor, app, eid = build_enclave_world(secret=0x41)
    return SystemState(monitor, oracle=DataOracle([0xAB, 0xCD])), app, eid


class TestLocalCompute:
    def test_literal_and_ops(self, world):
        state, _app, _eid = world
        apply_step(state, LocalCompute(HOST_ID, "rax", value=5))
        apply_step(state, LocalCompute(HOST_ID, "rbx", value=3))
        apply_step(state, LocalCompute(HOST_ID, "rcx", op="add",
                                       src1="rax", src2="rbx"))
        apply_step(state, LocalCompute(HOST_ID, "rdx", op="xor",
                                       src1="rax", src2="rbx"))
        apply_step(state, LocalCompute(HOST_ID, "rsi", op="copy",
                                       src1="rcx"))
        regs = state.monitor.vcpu
        assert regs.read_reg("rcx") == 8
        assert regs.read_reg("rdx") == 6
        assert regs.read_reg("rsi") == 8

    def test_inactive_principal_is_a_trace_bug(self, world):
        state, _app, eid = world
        with pytest.raises(SecurityError):
            apply_step(state, LocalCompute(eid, "rax", value=1))


class TestMemorySteps:
    def test_host_load_store_gpa(self, world):
        state, _app, _eid = world
        apply_step(state, LocalCompute(HOST_ID, "rax", value=0x77))
        outcome = apply_step(state, MemStore(HOST_ID, 0x200, "rax"))
        assert outcome.applied
        outcome = apply_step(state, MemLoad(HOST_ID, 0x200, "rbx"))
        assert outcome.applied
        assert state.monitor.vcpu.read_reg("rbx") == 0x77

    def test_host_load_via_app_gpt(self, world):
        state, app, _eid = world
        gpa = state.monitor.primary_os.app_map_data(app, 6 * PAGE)
        state.monitor.primary_os.gpa_write_word(gpa, 0x55)
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE, "rax",
                                  via_app=app.app_id))
        assert state.monitor.vcpu.read_reg("rax") == 0x55

    def test_faulting_access_is_noop(self, world):
        state, _app, _eid = world
        secure = TINY.frame_base(state.monitor.layout.epc_base)
        snapshot = state.monitor.phys.snapshot()
        regs_before = state.monitor.vcpu.context()
        outcome = apply_step(state, MemLoad(HOST_ID, secure, "rax"))
        assert not outcome.applied
        assert state.monitor.phys.snapshot() == snapshot
        assert state.monitor.vcpu.context() == regs_before

    def test_unaligned_access_faults(self, world):
        state, _app, _eid = world
        assert not apply_step(state, MemLoad(HOST_ID, 0x201, "rax")).applied

    def test_enclave_load_of_own_page(self, world):
        state, _app, eid = world
        apply_step(state, Hypercall(HOST_ID, "enter", (eid,)))
        outcome = apply_step(state, MemLoad(eid, 16 * PAGE, "rax"))
        assert outcome.applied
        assert state.monitor.vcpu.read_reg("rax") == 0x41


class TestOracleSemantics:
    def test_mbuf_load_comes_from_oracle(self, world):
        state, app, _eid = world
        state.monitor.primary_os.store(app, 12 * PAGE, 0x1111)
        outcome = apply_step(state, MemLoad(HOST_ID, 12 * PAGE, "rax",
                                            via_app=app.app_id))
        assert outcome.detail == "mbuf load (oracle)"
        assert state.monitor.vcpu.read_reg("rax") == 0xAB  # oracle, not 0x1111

    def test_mbuf_store_is_ignored(self, world):
        state, app, _eid = world
        snapshot = state.monitor.phys.snapshot()
        apply_step(state, LocalCompute(HOST_ID, "rax", value=0x2222))
        outcome = apply_step(state, MemStore(HOST_ID, 12 * PAGE, "rax",
                                             via_app=app.app_id))
        assert outcome.applied and "declassified" in outcome.detail
        assert state.monitor.phys.snapshot() == snapshot

    def test_oracle_sequence_consumed_in_order(self, world):
        state, app, _eid = world
        apply_step(state, MemLoad(HOST_ID, 12 * PAGE, "rax",
                                  via_app=app.app_id))
        apply_step(state, MemLoad(HOST_ID, 12 * PAGE, "rbx",
                                  via_app=app.app_id))
        assert state.monitor.vcpu.read_reg("rax") == 0xAB
        assert state.monitor.vcpu.read_reg("rbx") == 0xCD

    def test_enclave_mbuf_read_also_oracled(self, world):
        state, _app, eid = world
        apply_step(state, Hypercall(HOST_ID, "enter", (eid,)))
        outcome = apply_step(state, MemLoad(eid, 12 * PAGE, "rax"))
        assert outcome.detail == "mbuf load (oracle)"


class TestHypercallSteps:
    def test_enter_exit_schedule(self, world):
        state, _app, eid = world
        assert apply_step(state, Hypercall(HOST_ID, "enter",
                                           (eid,))).applied
        assert state.active == eid
        # lifecycle calls from the enclave are rejected no-ops
        assert not apply_step(state, Hypercall(eid, "enter",
                                               (eid,))).applied
        assert apply_step(state, Hypercall(eid, "exit", (eid,))).applied
        assert state.active == HOST_ID

    def test_rejected_hypercall_is_noop(self, world):
        state, _app, _eid = world
        snapshot = state.monitor.phys.snapshot()
        outcome = apply_step(state, Hypercall(HOST_ID, "add_page",
                                              (99, 0, 0)))
        assert not outcome.applied and "rejected" in outcome.detail
        assert state.monitor.phys.snapshot() == snapshot

    def test_unknown_hypercall_rejected(self, world):
        state, _app, _eid = world
        assert not apply_step(state, Hypercall(HOST_ID, "evil",
                                               ())).applied

    def test_host_cannot_exit(self, world):
        state, _app, _eid = world
        assert not apply_step(state, Hypercall(HOST_ID, "exit",
                                               (HOST_ID,))).applied

    def test_apply_trace_counts_steps(self, world):
        state, _app, _eid = world
        outcomes = apply_trace(state, [
            LocalCompute(HOST_ID, "rax", value=1),
            MemLoad(HOST_ID, 0, "rbx"),
        ])
        assert len(outcomes) == 2
        assert state.step_count == 2


class TestTlbSemantics:
    def test_virtual_access_populates_tlb(self, world):
        state, app, _eid = world
        gpa = state.monitor.primary_os.app_map_data(app, 6 * PAGE)
        del gpa
        assert len(state.monitor.tlb) == 0
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE, "rax",
                                  via_app=app.app_id))
        assert state.monitor.tlb.lookup(0, (6 * PAGE, False)) is not None

    def test_direct_gpa_access_bypasses_tlb(self, world):
        state, _app, _eid = world
        apply_step(state, MemLoad(HOST_ID, 0x200, "rax"))
        assert len(state.monitor.tlb) == 0

    def test_cached_translation_reused(self, world):
        state, app, _eid = world
        state.monitor.primary_os.app_map_data(app, 6 * PAGE)
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE, "rax",
                                  via_app=app.app_id))
        # Poison the cache; the next access must ride it (hardware
        # behaviour — the walk is skipped on a hit).
        state.monitor.tlb.insert(0, (6 * PAGE, False), 0x200)
        state.monitor.phys.write_word(0x208, 0x7777)
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE + 8, "rbx",
                                  via_app=app.app_id))
        assert state.monitor.vcpu.read_reg("rbx") == 0x7777

    def test_world_switch_flushes(self, world):
        state, app, eid = world
        state.monitor.primary_os.app_map_data(app, 6 * PAGE)
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE, "rax",
                                  via_app=app.app_id))
        assert len(state.monitor.tlb) == 1
        apply_step(state, Hypercall(HOST_ID, "enter", (eid,)))
        assert len(state.monitor.tlb) == 0

    def test_write_and_read_cached_separately(self, world):
        state, app, _eid = world
        state.monitor.primary_os.app_map_data(app, 6 * PAGE)
        apply_step(state, MemLoad(HOST_ID, 6 * PAGE, "rax",
                                  via_app=app.app_id))
        assert state.monitor.tlb.lookup(0, (6 * PAGE, True)) is None
        apply_step(state, MemStore(HOST_ID, 6 * PAGE, "rax",
                                   via_app=app.app_id))
        assert state.monitor.tlb.lookup(0, (6 * PAGE, True)) is not None


class TestSystemState:
    def test_clone_is_independent(self, world):
        state, _app, _eid = world
        clone = state.clone()
        apply_step(state, LocalCompute(HOST_ID, "rax", value=7))
        assert clone.monitor.vcpu.read_reg("rax") == 0
        assert state.monitor.vcpu.read_reg("rax") == 7

    def test_live_principals(self, world):
        state, _app, eid = world
        assert state.live_principals() == [HOST_ID, eid]


class TestDataOracle:
    def test_cycles_by_default(self):
        oracle = DataOracle([1, 2])
        assert [oracle.next() for _ in range(5)] == [1, 2, 1, 2, 1]

    def test_non_cycling_exhausts(self):
        oracle = DataOracle([1], cycle=False)
        oracle.next()
        with pytest.raises(SecurityError):
            oracle.next()

    def test_empty_returns_zero(self):
        assert DataOracle().next() == 0

    def test_fork_preserves_position(self):
        oracle = DataOracle([1, 2, 3])
        oracle.next()
        fork = oracle.fork()
        assert fork.next() == oracle.next() == 2

    def test_seeded_deterministic(self):
        assert [DataOracle.seeded(5).next() for _ in range(1)] == \
            [DataOracle.seeded(5).next()]
