"""Temporary environments and activation frames.

Sec. 3.2, "Lifting Local Variables": any MIR variable whose address is
taken is a *local* and lives in object memory; every other variable is a
*temporary* kept in "a 'temporary environment' which only exists during
the execution of the function".  The net effect is that straight-line
functional code (the majority of the corpus — 65 of 77 functions) runs
without touching memory at all.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import MirRuntimeError
from repro.mir.value import Value


class TempEnv:
    """The temporary environment of one function activation."""

    def __init__(self):
        self._values: Dict[str, Value] = {}

    def read(self, var):
        try:
            return self._values[var]
        except KeyError:
            raise MirRuntimeError(f"read of uninitialised temporary {var!r}")

    def write(self, var, value):
        """Bind a temporary to a value."""
        if not isinstance(value, Value):
            raise MirRuntimeError(f"cannot bind non-Value {value!r} to {var!r}")
        self._values[var] = value

    def is_bound(self, var):
        return var in self._values

    def __contains__(self, var):
        return var in self._values

    def __len__(self):
        return len(self._values)


@dataclass
class Frame:
    """One activation of a mirlight function.

    Execution position is (``block``, ``stmt_index``); ``stmt_index`` equal
    to the number of statements means the terminator is next.  ``dest``
    and ``return_to`` record where the caller wants the return value and
    which block it resumes at; they are ``None`` for the outermost frame.
    """

    function: "repro.mir.ast.Function"  # noqa: F821
    frame_id: int
    env: TempEnv = field(default_factory=TempEnv)
    block: str = ""
    stmt_index: int = 0
    dest: Optional["repro.mir.ast.Place"] = None  # noqa: F821
    return_to: Optional[str] = None

    def __post_init__(self):
        if not self.block:
            self.block = self.function.entry

    def current_block(self):
        return self.function.blocks[self.block]

    def at_terminator(self):
        return self.stmt_index >= len(self.current_block().statements)

    def current_statement(self):
        return self.current_block().statements[self.stmt_index]

    def jump(self, label):
        """Move execution to the start of ``label``."""
        if label not in self.function.blocks:
            raise MirRuntimeError(
                f"{self.function.name}: jump to unknown block {label!r}"
            )
        self.block = label
        self.stmt_index = 0
