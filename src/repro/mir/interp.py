"""Small-step operational semantics for mirlight.

The interpreter follows the CompCert style used by the paper (Sec. 3.1):
a configuration is a stack of activation frames over an object memory and
an abstract state, and :meth:`Interpreter.step` fires exactly one
statement or terminator rule.  :meth:`Interpreter.call` drives steps to
completion under a fuel bound.

Three design points carried over from the paper:

* **Temporaries vs locals** (Sec. 3.2): variables whose address is taken
  live in object memory under a frame-pinned base; everything else lives
  in the frame's temporary environment, so most functions never write
  memory.
* **Trusted functions** (Sec. 4.2): calls to registered trusted names
  dispatch to a specification ``(args, absstate) -> (ret, absstate)``
  instead of MIR code — the bottom layer of the CCAL stack.
* **Pointer kinds** (Sec. 3.4): dereferencing dispatches on the runtime
  pointer value — concrete paths read/write object memory, trusted
  pointers call their getter/setter against the abstract state, RData
  pointers refuse access outside their owner layer.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro import fastpath
from repro.errors import (
    EncapsulationViolation,
    MirAssertError,
    MirRuntimeError,
    MirTypeError,
    OutOfFuel,
)
from repro.mir import ast
from repro.mir.ast import BinOp, CastKind, UnOp
from repro.mir.compile import compiled_blocks
from repro.mir.env import Frame, TempEnv
from repro.mir.memory import ObjectMemory
from repro.mir.path import Path
from repro.mir.value import (
    Aggregate,
    BoolValue,
    FnValue,
    IntValue,
    PathPtr,
    RDataPtr,
    StrValue,
    TrustedPtr,
    UnitValue,
    Value,
    mk_bool,
    mk_int,
    mk_tuple,
    unit,
)

DEFAULT_FUEL = 1_000_000


@dataclass(frozen=True)
class TrustedFunction:
    """A function whose meaning is a specification, not MIR code.

    ``spec(args, absstate) -> (ret_value, new_absstate)`` — the CCAL
    specification shape.  ``layer`` names the layer exporting it.
    """

    name: str
    spec: Callable
    layer: str = "trusted"
    doc: str = ""


@dataclass
class ExecResult:
    """Outcome of a completed call."""

    value: Value
    absstate: object
    steps: int
    memory: ObjectMemory


# -- slots: resolved locations ------------------------------------------------


@dataclass(frozen=True)
class _TempSlot:
    frame: Frame
    var: str
    projections: Tuple[int, ...]


@dataclass(frozen=True)
class _MemSlot:
    path: Path


@dataclass(frozen=True)
class _TrustedSlot:
    ptr: TrustedPtr


class Interpreter:
    """Executes mirlight programs against an object memory and an
    abstract state."""

    def __init__(self, program, absstate=None, fuel=DEFAULT_FUEL):
        self.program = program
        self.memory = ObjectMemory()
        self.absstate = absstate
        self.fuel = fuel
        self.steps = 0
        self._trusted: Dict[str, TrustedFunction] = {}
        self._rdata_resolvers: Dict[str, Callable] = {}
        self._frames = []
        self._next_frame_id = 0
        self._result: Optional[Value] = None
        # Snapshot the fast-path switch once: this interpreter either
        # drives the compiled per-CFG dispatch (repro.mir.compile) or
        # the naive isinstance ladder for its whole lifetime.  Both
        # produce identical results, steps, and errors.
        self._fast = fastpath.enabled()
        for name, value in program.globals_.items():
            self.memory.allocate(Path.global_(name).base, value)

    # -- registration -------------------------------------------------------

    def register_trusted(self, trusted):
        """Register a :class:`TrustedFunction`; calls to its name dispatch
        to the specification."""
        self._trusted[trusted.name] = trusted
        return trusted

    def register_trusted_many(self, trusted_functions):
        for tf in trusted_functions:
            self.register_trusted(tf)

    def register_rdata_resolver(self, owner_layer, resolver):
        """Install ``resolver(RDataPtr) -> Path`` for ``owner_layer``.

        Only code whose function is tagged with that layer may follow the
        handle; everyone else gets :class:`EncapsulationViolation` —
        the Sec. 3.4 encapsulation guarantee, enforced at runtime.
        """
        self._rdata_resolvers[owner_layer] = resolver

    @property
    def trusted_names(self):
        return frozenset(self._trusted)

    # -- public driver --------------------------------------------------------

    def call(self, name, args=(), fuel=None):
        """Run ``name(*args)`` to completion and return an ExecResult.

        Trusted names are dispatched directly to their spec; otherwise a
        frame is pushed and stepped until the outer frame returns.
        """
        if fuel is not None:
            self.fuel = fuel
        if name in self._trusted:
            ret, self.absstate = self._trusted[name].spec(tuple(args), self.absstate)
            return ExecResult(ret if ret is not None else unit(),
                              self.absstate, 0, self.memory)
        self._push_frame(name, tuple(args), dest=None, return_to=None)
        base_depth = len(self._frames) - 1
        if self._fast:
            self._run_compiled(base_depth)
        else:
            while len(self._frames) > base_depth:
                self.step()
        result = self._result if self._result is not None else unit()
        self._result = None
        return ExecResult(result, self.absstate, self.steps, self.memory)

    # -- small-step machine ---------------------------------------------------

    def _run_compiled(self, base_depth):
        """Drive compiled dispatch until the outer frame returns.

        Step accounting is identical to repeated :meth:`step` calls: one
        fuel unit per statement (no-ops included) and per terminator,
        with the fuel check *before* each step — so fuel-bounded runs
        stop at exactly the same step either way.
        """
        frames = self._frames
        while len(frames) > base_depth:
            frame = frames[-1]
            statements, terminator, count = frame.code[frame.block]
            index = frame.stmt_index
            # Statements never touch the step counter or push frames,
            # so both can live in locals across the block body; the
            # ``finally`` keeps frame/interpreter state exact when a
            # statement raises mid-block.
            steps = self.steps
            fuel = self.fuel
            try:
                while index < count:
                    if steps >= fuel:
                        raise OutOfFuel(f"exceeded fuel of {fuel} steps")
                    steps += 1
                    statements[index](self, frame)
                    index += 1
            finally:
                self.steps = steps
                frame.stmt_index = index
            if steps >= fuel:
                raise OutOfFuel(f"exceeded fuel of {fuel} steps")
            self.steps = steps + 1
            terminator(self, frame)

    def step(self):
        """Fire one statement or terminator rule."""
        if self.steps >= self.fuel:
            raise OutOfFuel(f"exceeded fuel of {self.fuel} steps")
        self.steps += 1
        frame = self._frames[-1]
        if frame.at_terminator():
            self._exec_terminator(frame, frame.current_block().terminator)
        else:
            self._exec_statement(frame, frame.current_statement())
            frame.stmt_index += 1

    def _push_frame(self, name, args, dest, return_to):
        try:
            function = self.program.functions[name]
        except KeyError:
            raise MirRuntimeError(f"call to unknown function {name!r}")
        if len(args) != len(function.params):
            raise MirRuntimeError(
                f"{name}: expected {len(function.params)} args, got {len(args)}"
            )
        frame = Frame(function=function, frame_id=self._next_frame_id,
                      dest=dest, return_to=return_to)
        if self._fast:
            frame.code = compiled_blocks(function, self.program)
        self._next_frame_id += 1
        for param, value in zip(function.params, args):
            self._bind_var(frame, param, value)
        self._frames.append(frame)
        return frame

    def _bind_var(self, frame, var, value):
        if frame.function.is_local_var(var):
            base = Path.local(frame.frame_id, var).base
            if self.memory.has_base(base):
                self.memory.write(Path(base), value)
            else:
                self.memory.allocate(base, value)
        else:
            frame.env.write(var, value)

    # -- statements ------------------------------------------------------------

    def _exec_statement(self, frame, stmt):
        if isinstance(stmt, ast.Assign):
            value = self._eval_rvalue(frame, stmt.rvalue)
            self._write_place(frame, stmt.place, value)
        elif isinstance(stmt, ast.SetDiscriminant):
            current = self._read_place(frame, stmt.place)
            agg = current.expect_aggregate("SetDiscriminant")
            self._write_place(frame, stmt.place,
                              agg.with_discriminant(stmt.variant))
        elif isinstance(stmt, (ast.StorageLive, ast.StorageDead, ast.Nop)):
            pass  # Sec. 3.2: allocation is lazy, deallocation is a no-op.
        else:
            raise MirRuntimeError(f"unknown statement {stmt!r}")

    # -- terminators -------------------------------------------------------------

    def _exec_terminator(self, frame, term):
        if isinstance(term, ast.Goto):
            frame.jump(term.target)
        elif isinstance(term, ast.SwitchInt):
            self._exec_switch(frame, term)
        elif isinstance(term, ast.Return):
            self._exec_return(frame)
        elif isinstance(term, ast.Call):
            self._exec_call(frame, term)
        elif isinstance(term, ast.Drop):
            frame.jump(term.target)  # no interesting Drop impls in corpus
        elif isinstance(term, ast.Assert):
            cond = self._eval_operand(frame, term.cond)
            truth = self._as_switch_int(cond) != 0
            if truth != term.expected:
                raise MirAssertError(term.msg, frame.function.name, frame.block)
            frame.jump(term.target)
        else:
            raise MirRuntimeError(f"unknown terminator {term!r}")

    def _exec_switch(self, frame, term):
        scrutinee = self._as_switch_int(self._eval_operand(frame, term.operand))
        for value, label in term.targets:
            if scrutinee == value:
                frame.jump(label)
                return
        frame.jump(term.otherwise)

    @staticmethod
    def _as_switch_int(value):
        if isinstance(value, BoolValue):
            return 1 if value.value else 0
        if isinstance(value, IntValue):
            return value.as_unsigned
        raise MirTypeError(f"switchInt/assert on non-integer {value!r}")

    def _exec_return(self, frame):
        ret_var = frame.function.RETURN_VAR
        if frame.function.is_local_var(ret_var):
            path = Path.local(frame.frame_id, ret_var)
            value = self.memory.read(path) if self.memory.has_base(path.base) else unit()
        elif frame.env.is_bound(ret_var):
            value = frame.env.read(ret_var)
        else:
            value = unit()
        self._frames.pop()
        if frame.dest is None:
            self._result = value
        else:
            caller = self._frames[-1]
            self._write_place(caller, frame.dest, value)
            caller.jump(frame.return_to)

    def _exec_call(self, frame, term):
        fn_value = self._eval_operand(frame, term.func)
        if not isinstance(fn_value, FnValue):
            raise MirTypeError(f"call through non-function value {fn_value!r}")
        args = tuple(self._eval_operand(frame, a) for a in term.args)
        if fn_value.name in self._trusted:
            ret, self.absstate = self._trusted[fn_value.name].spec(args, self.absstate)
            self._write_place(frame, term.dest,
                              ret if ret is not None else unit())
            frame.jump(term.target)
            return
        self._push_frame(fn_value.name, args,
                         dest=term.dest, return_to=term.target)

    # -- place resolution ----------------------------------------------------------

    def _base_slot(self, frame, var):
        if frame.function.is_local_var(var):
            return _MemSlot(Path.local(frame.frame_id, var))
        if var in self.program.globals_ or self.memory.has_base(
                Path.global_(var).base):
            if not frame.env.is_bound(var):
                return _MemSlot(Path.global_(var))
        return _TempSlot(frame, var, ())

    def _resolve_place(self, frame, place):
        slot = self._base_slot(frame, place.var)
        for proj in place.projections:
            slot = self._apply_projection(frame, slot, proj)
        return slot

    def _apply_projection(self, frame, slot, proj):
        if isinstance(proj, ast.Deref):
            pointer = self._read_slot(slot)
            return self._slot_for_pointer(frame, pointer)
        if isinstance(proj, ast.FieldProj):
            return self._project_index(slot, proj.index)
        if isinstance(proj, ast.ConstantIndex):
            return self._project_index(slot, proj.index)
        if isinstance(proj, ast.IndexProj):
            idx_value = self._read_var(frame, proj.var).expect_int("index")
            return self._project_index(slot, idx_value.as_unsigned)
        if isinstance(proj, ast.Downcast):
            live = self._read_slot(slot).expect_aggregate("downcast")
            if live.discriminant != proj.variant:
                raise MirRuntimeError(
                    f"downcast to variant {proj.variant} but live "
                    f"discriminant is {live.discriminant}"
                )
            return slot  # fields of the active variant project directly
        raise MirRuntimeError(f"unknown projection {proj!r}")

    def _project_index(self, slot, index):
        if isinstance(slot, _MemSlot):
            return _MemSlot(slot.path.field(index))
        if isinstance(slot, _TempSlot):
            return _TempSlot(slot.frame, slot.var, slot.projections + (index,))
        raise MirTypeError(
            "cannot project a field out of a trusted-pointer target"
        )

    def _slot_for_pointer(self, frame, pointer):
        if isinstance(pointer, PathPtr):
            return _MemSlot(pointer.path)
        if isinstance(pointer, TrustedPtr):
            return _TrustedSlot(pointer)
        if isinstance(pointer, RDataPtr):
            return self._resolve_rdata(frame, pointer)
        if isinstance(pointer, IntValue):
            raise EncapsulationViolation(
                "pointer forged from integer — only trusted-layer "
                "specifications may do this (Sec. 3.2)"
            )
        raise MirTypeError(f"dereference of non-pointer {pointer!r}")

    def _resolve_rdata(self, frame, pointer):
        current_layer = frame.function.layer
        if current_layer != pointer.owner_layer:
            raise EncapsulationViolation(
                f"layer {current_layer!r} dereferenced RData pointer owned "
                f"by layer {pointer.owner_layer!r}: {pointer}"
            )
        resolver = self._rdata_resolvers.get(pointer.owner_layer)
        if resolver is None:
            raise EncapsulationViolation(
                f"no resolver registered for RData owner layer "
                f"{pointer.owner_layer!r}"
            )
        return _MemSlot(resolver(pointer))

    # -- slot read/write ---------------------------------------------------------------

    def _read_slot(self, slot):
        if isinstance(slot, _MemSlot):
            return self.memory.read(slot.path)
        if isinstance(slot, _TempSlot):
            value = slot.frame.env.read(slot.var)
            for index in slot.projections:
                value = value.expect_aggregate("temp projection").field(index)
            return value
        if isinstance(slot, _TrustedSlot):
            return slot.ptr.getter(self.absstate)
        raise MirRuntimeError(f"unreadable slot {slot!r}")

    def _write_slot(self, slot, value):
        if isinstance(slot, _MemSlot):
            self.memory.write_or_allocate(slot.path, value)
            return
        if isinstance(slot, _TempSlot):
            if not slot.projections:
                slot.frame.env.write(slot.var, value)
                return
            root = slot.frame.env.read(slot.var)
            slot.frame.env.write(
                slot.var, _functional_update(root, slot.projections, value))
            return
        if isinstance(slot, _TrustedSlot):
            self.absstate = slot.ptr.setter(self.absstate, value)
            return
        raise MirRuntimeError(f"unwritable slot {slot!r}")

    def _read_var(self, frame, var):
        return self._read_slot(self._base_slot(frame, var))

    def _read_place(self, frame, place):
        return self._read_slot(self._resolve_place(frame, place))

    def _write_place(self, frame, place, value):
        self._write_slot(self._resolve_place(frame, place), value)

    # -- operand / rvalue evaluation ------------------------------------------------------

    def _eval_operand(self, frame, operand):
        if isinstance(operand, (ast.Copy, ast.Move)):
            return self._read_place(frame, operand.place)
        if isinstance(operand, ast.Constant):
            return operand.value
        raise MirRuntimeError(f"unknown operand {operand!r}")

    def _eval_rvalue(self, frame, rvalue):
        if isinstance(rvalue, ast.Use):
            return self._eval_operand(frame, rvalue.operand)
        if isinstance(rvalue, (ast.Ref, ast.AddressOf)):
            return self._eval_ref(frame, rvalue.place)
        if isinstance(rvalue, ast.BinaryOp):
            return self._eval_binop(
                rvalue.op,
                self._eval_operand(frame, rvalue.left),
                self._eval_operand(frame, rvalue.right),
            )
        if isinstance(rvalue, ast.CheckedBinaryOp):
            return self._eval_checked_binop(
                rvalue.op,
                self._eval_operand(frame, rvalue.left),
                self._eval_operand(frame, rvalue.right),
            )
        if isinstance(rvalue, ast.UnaryOp):
            return self._eval_unop(rvalue.op,
                                   self._eval_operand(frame, rvalue.operand))
        if isinstance(rvalue, ast.Cast):
            return self._eval_cast(rvalue,
                                   self._eval_operand(frame, rvalue.operand))
        if isinstance(rvalue, ast.AggregateRv):
            fields = tuple(self._eval_operand(frame, o)
                           for o in rvalue.operands)
            discriminant = (rvalue.variant
                            if rvalue.kind is ast.AggregateKind.VARIANT else 0)
            return Aggregate(discriminant, fields)
        if isinstance(rvalue, ast.Repeat):
            element = self._eval_operand(frame, rvalue.operand)
            return Aggregate(0, (element,) * rvalue.count)
        if isinstance(rvalue, ast.Len):
            target = self._read_place(frame, rvalue.place)
            return mk_int(len(target.expect_aggregate("Len")))
        if isinstance(rvalue, ast.Discriminant):
            target = self._read_place(frame, rvalue.place)
            return mk_int(target.expect_aggregate("Discriminant").discriminant)
        if isinstance(rvalue, ast.CopyForDeref):
            return self._read_place(frame, rvalue.place)
        if isinstance(rvalue, ast.NullaryOp):
            raise MirRuntimeError(
                "SizeOf/AlignOf have no meaning in the object-view memory; "
                "they must stay inside trusted-layer specifications"
            )
        raise MirRuntimeError(f"unknown rvalue {rvalue!r}")

    def _eval_ref(self, frame, place):
        slot = self._resolve_place(frame, place)
        if isinstance(slot, _MemSlot):
            return PathPtr(slot.path)
        if isinstance(slot, _TrustedSlot):
            return slot.ptr  # re-borrowing a trusted target yields the same handle
        raise MirRuntimeError(
            f"cannot take the address of temporary place {place} — the "
            f"lifting pass should have classified {place.var!r} as local"
        )

    # -- primitive operations ---------------------------------------------------------------

    @staticmethod
    def _eval_binop(op, left, right):
        if op in _COMPARISONS:
            return _eval_comparison(op, left, right)
        lhs = left.expect_int(f"binop {op.value}")
        rhs = right.expect_int(f"binop {op.value}")
        raw = _arith_raw(op, lhs, rhs)
        return mk_int(raw, lhs.ty)

    @staticmethod
    def _eval_checked_binop(op, left, right):
        lhs = left.expect_int(f"checked {op.value}")
        rhs = right.expect_int(f"checked {op.value}")
        raw = _arith_raw(op, lhs, rhs)
        wrapped = mk_int(raw, lhs.ty)
        overflowed = not lhs.ty.contains(raw)
        return mk_tuple(wrapped, mk_bool(overflowed))

    @staticmethod
    def _eval_unop(op, operand):
        if op is UnOp.NOT:
            if isinstance(operand, BoolValue):
                return mk_bool(not operand.value)
            as_int = operand.expect_int("unop !")
            return mk_int(~as_int.as_unsigned, as_int.ty)
        if op is UnOp.NEG:
            as_int = operand.expect_int("unop -")
            return mk_int(-as_int.value, as_int.ty)
        raise MirRuntimeError(f"unknown unary op {op!r}")

    @staticmethod
    def _eval_cast(cast, operand):
        if cast.kind is CastKind.INT_TO_INT:
            return mk_int(operand.expect_int("cast").value, cast.ty)
        if cast.kind is CastKind.BOOL_TO_INT:
            flag = operand.expect_bool("cast")
            return mk_int(1 if flag.value else 0, cast.ty)
        if cast.kind in (CastKind.PTR_TO_INT, CastKind.INT_TO_PTR):
            raise EncapsulationViolation(
                f"{cast.kind.value} casts expose memory layout; they are "
                "confined to trusted-layer specifications (Sec. 3.2)"
            )
        raise MirRuntimeError(f"unknown cast kind {cast.kind!r}")


_COMPARISONS = frozenset(
    {BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE}
)


def _eval_comparison(op, left, right):
    if isinstance(left, BoolValue) and isinstance(right, BoolValue):
        lhs, rhs = left.value, right.value
    else:
        lhs = left.expect_int(f"compare {op.value}").value
        rhs = right.expect_int(f"compare {op.value}").value
    table = {
        BinOp.EQ: lhs == rhs,
        BinOp.NE: lhs != rhs,
        BinOp.LT: lhs < rhs,
        BinOp.LE: lhs <= rhs,
        BinOp.GT: lhs > rhs,
        BinOp.GE: lhs >= rhs,
    }
    return mk_bool(table[op])


def _arith_raw(op, lhs, rhs):
    a, b = lhs.value, rhs.value
    if op is BinOp.ADD:
        return a + b
    if op is BinOp.SUB:
        return a - b
    if op is BinOp.MUL:
        return a * b
    if op is BinOp.DIV:
        if b == 0:
            raise MirAssertError("attempt to divide by zero")
        return int(a / b) if (a < 0) != (b < 0) else a // b
    if op is BinOp.REM:
        if b == 0:
            raise MirAssertError("attempt to calculate remainder with divisor zero")
        return a - b * (int(a / b) if (a < 0) != (b < 0) else a // b)
    if op is BinOp.BITAND:
        return lhs.as_unsigned & rhs.as_unsigned
    if op is BinOp.BITOR:
        return lhs.as_unsigned | rhs.as_unsigned
    if op is BinOp.BITXOR:
        return lhs.as_unsigned ^ rhs.as_unsigned
    if op is BinOp.SHL:
        return lhs.as_unsigned << (rhs.as_unsigned % lhs.ty.width)
    if op is BinOp.SHR:
        return lhs.as_unsigned >> (rhs.as_unsigned % lhs.ty.width)
    raise MirRuntimeError(f"unknown arithmetic op {op!r}")


def _functional_update(value, indices, new_value, depth=0):
    if depth == len(indices):
        return new_value
    agg = value.expect_aggregate("temp update")
    index = indices[depth]
    child = _functional_update(agg.field(index), indices, new_value, depth + 1)
    return agg.with_field(index, child)
