"""Sec. 5.4's quantification over oracles, including the echo oracle.

"Because the theorem is proved for all possible oracles, including the
one which returns the same values that were written by other guests, it
still covers all possible code paths for the guests."
"""

import pytest

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.security import (
    DataOracle, Hypercall, MemLoad, MemStore, LocalCompute, SystemState,
    apply_step,
)
from repro.security.oracle import MemoryEchoOracle
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def make_state(secret, oracle):
    monitor, app, eid = build_enclave_world(secret=secret)
    return SystemState(monitor, oracle=oracle), app, eid


class TestEchoOracle:
    def test_echo_returns_actual_buffer_contents(self):
        state, app, _eid = make_state(0x41, MemoryEchoOracle())
        # Real mbuf contents, written outside the step system:
        state.monitor.primary_os.store(app, 12 * PAGE, 0x1234)
        outcome = apply_step(state, MemLoad(HOST_ID, 12 * PAGE, "rax",
                                            via_app=app.app_id))
        assert outcome.detail == "mbuf load (oracle)"
        assert state.monitor.vcpu.read_reg("rax") == 0x1234

    def test_stream_oracle_ignores_contents(self):
        state, app, _eid = make_state(0x41, DataOracle([0xAB]))
        state.monitor.primary_os.store(app, 12 * PAGE, 0x1234)
        apply_step(state, MemLoad(HOST_ID, 12 * PAGE, "rax",
                                  via_app=app.app_id))
        assert state.monitor.vcpu.read_reg("rax") == 0xAB

    @pytest.mark.parametrize("oracle_factory", [
        MemoryEchoOracle,
        lambda: DataOracle.seeded(3),
        lambda: DataOracle.constant(0xFF),
        DataOracle,
    ], ids=["echo", "seeded", "constant", "zero"])
    def test_theorem_holds_for_every_oracle(self, oracle_factory):
        """The same secret-touching trace, under four different oracles:
        indistinguishability must hold for all of them."""
        state_a, app, eid = make_state(41, oracle_factory())
        state_b, _, _ = make_state(42, oracle_factory())
        worlds = TwoWorlds(state_a, state_b)
        trace = [
            MemLoad(HOST_ID, 12 * PAGE, "rcx", via_app=app.app_id),
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),
            (MemLoad(eid, 12 * PAGE, "rbx"),
             MemLoad(eid, 12 * PAGE, "rbx")),        # mbuf via oracle
            (MemStore(eid, 12 * PAGE, "rax"),
             MemStore(eid, 12 * PAGE, "rax")),       # declassified store
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
            MemLoad(HOST_ID, 12 * PAGE, "rdx", via_app=app.app_id),
        ]
        violations = check_theorem_noninterference(worlds, trace,
                                                   observers=[HOST_ID])
        assert violations == []

    def test_mbuf_store_still_ignored_under_echo(self):
        """Echo changes reads, never stores: the declassified-store rule
        keeps physical memory untouched."""
        state, app, eid = make_state(0x41, MemoryEchoOracle())
        apply_step(state, Hypercall(HOST_ID, "enter", (eid,)))
        apply_step(state, LocalCompute(eid, "rax", value=0x999))
        snapshot = state.monitor.phys.snapshot()
        apply_step(state, MemStore(eid, 12 * PAGE, "rax"))
        assert state.monitor.phys.snapshot() == snapshot
