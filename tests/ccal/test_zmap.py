"""ZMap: total, persistent, value-comparable."""

import pytest
from hypothesis import given, strategies as st

from repro.ccal.zmap import ZMap


class TestBasics:
    def test_default_for_absent_keys(self):
        assert ZMap(default=0).get(12345) == 0
        assert ZMap(default=None).get(0) is None

    def test_set_is_functional(self):
        empty = ZMap(default=0)
        one = empty.set(3, 7)
        assert empty.get(3) == 0
        assert one.get(3) == 7

    def test_unset_restores_default(self):
        m = ZMap(default=0).set(1, 5).unset(1)
        assert m.get(1) == 0
        assert len(m) == 0

    def test_setting_default_normalises(self):
        """Binding a key to the default must not break equality."""
        assert ZMap(default=0).set(1, 0) == ZMap(default=0)
        assert ZMap(default=0, entries={1: 0}) == ZMap(default=0)

    def test_keys_sorted(self):
        m = ZMap(default=0).set(5, 1).set(2, 1).set(9, 1)
        assert m.keys() == [2, 5, 9]

    def test_contains_and_is_default(self):
        m = ZMap(default=0).set(1, 2)
        assert 1 in m and 2 not in m
        assert m.is_default(2) and not m.is_default(1)

    def test_hashable(self):
        assert hash(ZMap(default=0).set(1, 2)) == \
            hash(ZMap(default=0).set(1, 2))

    def test_nested_zmaps(self):
        inner = ZMap(default=0).set(1, 5)
        outer = ZMap(default=None).set(0, inner)
        assert outer.get(0).get(1) == 5


@given(st.dictionaries(st.integers(0, 20), st.integers(-5, 5)),
       st.integers(0, 20), st.integers(-5, 5))
def test_set_then_get(mapping, key, value):
    m = ZMap(default=0, entries=mapping)
    assert m.set(key, value).get(key) == value


@given(st.dictionaries(st.integers(0, 20), st.integers(1, 5)),
       st.integers(0, 20), st.integers(1, 5), st.integers(0, 20))
def test_set_preserves_other_keys(mapping, key, value, probe):
    m = ZMap(default=0, entries=mapping)
    updated = m.set(key, value)
    if probe != key:
        assert updated.get(probe) == m.get(probe)


@given(st.dictionaries(st.integers(0, 10), st.integers(1, 5)))
def test_equality_is_extensional(mapping):
    a = ZMap(default=0, entries=mapping)
    b = ZMap(default=0)
    for key, value in sorted(mapping.items(), reverse=True):
        b = b.set(key, value)
    assert a == b and hash(a) == hash(b)
