"""The deterministic sharded executor.

Campaign work units are independent pure functions of their seeds, so
they can run in any process in any order — as long as the merge puts
the results back in unit order, the combined report is byte-identical
to the sequential run.  :class:`ShardedExecutor` does exactly that:

* units are partitioned across workers by a **stable shard key**
  (blake2b of a caller-supplied key string, defaulting to the unit's
  position) — the partition is a pure function of the unit list, never
  of scheduling luck;
* each shard ships to its **pinned worker process** — one
  single-process ``ProcessPoolExecutor`` per shard slot, so a given
  key always lands in the same OS process across every ``map`` call
  of the executor's lifetime (worker functions are named by
  ``module:attr`` path, because the campaign closures themselves do
  not pickle).  Affinity is what makes worker-local caches — world
  prototypes, the check memo, the snapshot tree of
  :mod:`repro.concurrency.snapshot` — serve repeat keys instead of
  missing on whichever process happened to be free;
* the merge reassembles results by original unit index, so neither the
  shard layout nor completion order can leak into the output;
* worker-side :class:`~repro.engine.memo.CheckMemo` hit/miss counters
  are returned per shard and aggregated on ``executor.stats``.

The pool uses the ``fork`` start method where available: workers
inherit the parent's imports (cheap spawn) *and* its siphash seed,
which keeps the toy ``measurement`` accumulator — the one piece of
state built on Python's salted ``hash`` — consistent between the
sequential baseline and every worker.

Worker count resolution: explicit argument, else the
``REPRO_CHECK_WORKERS`` environment variable, else ``os.cpu_count()``.
``workers=1`` (or a single-unit map) runs in-process with identical
semantics — the degenerate fabric is the sequential engine.
"""

import hashlib
import importlib
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.errors import ConfigError

WORKERS_ENV = "REPRO_CHECK_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit count, else ``REPRO_CHECK_WORKERS``, else cpu count.

    A ``REPRO_CHECK_WORKERS`` value that is not a positive integer
    raises :class:`~repro.errors.ConfigError` naming the variable —
    a silent clamp would hide the typo, and the raw ``ValueError``
    ``int()`` used to throw named neither the knob nor the fix.  An
    unset or empty variable falls back to the cpu count.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            count = int(env)
        except ValueError:
            raise ConfigError(
                WORKERS_ENV, env,
                "not an integer (expected a positive worker count, "
                "or unset for the cpu count)") from None
        if count < 1:
            raise ConfigError(
                WORKERS_ENV, env,
                "worker count must be >= 1 (or unset for the cpu "
                "count)")
        return count
    return max(1, os.cpu_count() or 1)


def resolve_callable(path: str):
    """Import ``module:attr`` (worker functions travel as paths)."""
    module_name, sep, attr = path.partition(":")
    if not sep or not attr:
        raise ValueError(f"worker path {path!r} is not 'module:attr'")
    target = importlib.import_module(module_name)
    for part in attr.split("."):
        target = getattr(target, part)
    return target


def stable_shard(key: str, shards: int) -> int:
    """The shard a key lands in — deterministic across processes."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def _run_shard(fn_path: str, pairs):
    """Worker task: run one shard's ``(index, unit)`` pairs in order.

    Returns ``(results, memo_stats, metrics_delta, unit_traces,
    memo_journal)``:

    * ``metrics_delta`` — the worker registry's counter delta over the
      shard (how solver work done in workers reaches the parent; with
      the old memo-only return, a parent reading the global solver
      counters around a parallel campaign undercounted by exactly the
      work the pool did);
    * ``unit_traces`` — when tracing was enabled at fork time, one
      ``(index, records)`` export per unit, each recorded by a *fresh*
      per-unit tracer (the inherited tracer is detached first: its
      JSONL sink descriptor is shared with the parent across the fork,
      and per-unit recording is what makes the assembled trace a pure
      function of the unit list rather than of shard layout);
    * ``memo_journal`` — the ``(table, key, value)`` entries this
      shard's misses added to the worker memo, when journalling was
      enabled at fork time (the durable orchestrator persists them;
      empty otherwise).
    """
    from repro.engine import workers as worker_module
    from repro.obs import trace as trace_mod
    from repro.obs.metrics import REGISTRY
    fn = resolve_callable(fn_path)
    baseline = worker_module.MEMO.stats()
    metrics_before = REGISTRY.snapshot()
    tracing = trace_mod.enabled()
    inherited = trace_mod.install(None)
    results, traces = [], []
    try:
        for index, unit in pairs:
            if tracing:
                tracer = trace_mod.Tracer()
                with trace_mod.installed(tracer):
                    with trace_mod.span("executor.unit", index=index,
                                        fn=fn_path):
                        value = fn(unit)
                traces.append((index, tracer.export()))
            else:
                value = fn(unit)
            results.append((index, value))
    finally:
        trace_mod.install(inherited)
    return (results, worker_module.MEMO.stats_since(baseline),
            REGISTRY.delta(metrics_before), traces,
            worker_module.MEMO.drain_journal())


def _adopt_unit_traces(traces):
    """Re-emit shipped worker spans into the parent tracer, sorted by
    unit index — completion order and shard layout cannot leak into
    the assembled trace."""
    from repro.obs import trace as trace_mod
    tracer = trace_mod.active_tracer()
    if tracer is None:
        return
    for _index, records in sorted(traces, key=lambda item: item[0]):
        tracer.adopt(records)


class ShardedExecutor:
    """A reusable deterministic fan-out over a process pool."""

    def __init__(self, workers: Optional[int] = None):
        self.workers = resolve_workers(workers)
        self.stats = {}           # aggregated worker CheckMemo counters
        self.memo_journal = []    # (table, key, value) from worker misses
        self._pools = None        # one single-process pool per shard slot

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    def close(self):
        """Shut down every slot pool, draining queued work first."""
        pools, self._pools = self._pools, None
        for pool in pools or ():
            pool.shutdown()

    def terminate(self):
        """Kill worker processes *now* (the Ctrl-C / abort path).

        ``ProcessPoolExecutor.shutdown`` waits for queued work; on a
        ``KeyboardInterrupt`` that would leave orphaned children
        grinding on after the user asked to stop.  This kills the pool
        processes directly (they hold no state worth draining — every
        unit is a pure function of its seeds) and discards the pools,
        so the executor can be reused afterwards.
        """
        pools, self._pools = self._pools, None
        for pool in pools or ():
            # The pool's process table is private API, but it is the
            # only handle on the children; killing via it beats
            # leaking them.
            for process in list(getattr(pool, "_processes",
                                        {}).values()):
                try:
                    process.kill()
                except (OSError, ValueError, AttributeError):
                    pass
            pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_pools(self) -> List[ProcessPoolExecutor]:
        """One single-process pool per shard slot (created together, so
        every slot forks from the same parent state).

        Shard *slot*, not shard count: a key's slot is stable across
        ``map`` calls of any size, and a slot's pool is one long-lived
        OS process, so worker-local warm state keyed by shard key
        survives the whole executor lifetime.
        """
        if self._pools is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:       # platform without fork
                context = None
            self._pools = [ProcessPoolExecutor(max_workers=1,
                                               mp_context=context)
                           for _ in range(self.workers)]
        return self._pools

    def _submit_shard(self, number: int, fn_path: str, shard):
        """Ship one shard to the process pinned to its slot."""
        return self._ensure_pools()[number].submit(_run_shard, fn_path,
                                                   shard)

    def map(self, fn_path: str, units: Sequence,
            *, keys: Optional[Sequence[str]] = None) -> List:
        """Run ``fn_path(unit)`` for every unit; results in unit order.

        ``keys`` (one string per unit) drive the stable sharding;
        they default to the unit's position in the list.
        """
        from repro.engine.memo import merge_stats
        from repro.obs import trace as trace_mod
        from repro.obs.metrics import REGISTRY

        units = list(units)
        if not units:
            return []
        if keys is None:
            keys = [str(index) for index in range(len(units))]
        if len(keys) != len(units):
            raise ValueError("one shard key per unit required")
        # Shard by *slot* over the full worker count — never by the
        # wave size — so a key maps to the same pinned process in every
        # map call; a small wave just leaves some slots idle.
        shards = [[] for _ in range(self.workers)]
        for index, (unit, key) in enumerate(zip(units, keys)):
            shards[stable_shard(f"{fn_path}\x1f{key}",
                                self.workers)].append((index, unit))
        occupied = sum(1 for shard in shards if shard)
        with trace_mod.span("executor.map", fn=fn_path,
                            units=len(units), shards=occupied):
            if self.workers <= 1:
                # In-process: unit code already wrote to this process's
                # registry, so the returned metrics delta is discarded
                # (merging it would double-count).
                results, stats, _metrics, traces, journal = _run_shard(
                    fn_path, list(enumerate(units)))
                merge_stats(self.stats, stats)
                self.memo_journal.extend(journal)
                _adopt_unit_traces(traces)
                return [value for _index, value in results]
            futures = [self._submit_shard(number, fn_path, shard)
                       for number, shard in enumerate(shards) if shard]
            merged = [None] * len(units)
            unit_traces = []
            try:
                for future in futures:
                    results, stats, metrics, traces, journal = \
                        future.result()
                    merge_stats(self.stats, stats)
                    REGISTRY.merge(metrics)
                    self.memo_journal.extend(journal)
                    unit_traces.extend(traces)
                    for index, value in results:
                        merged[index] = value
            except KeyboardInterrupt:
                # Kill the children instead of leaking them behind a
                # half-written campaign; the caller (orchestrator/CLI)
                # flushes its checkpoint and exits with its distinct
                # interrupted code.
                self.terminate()
                raise
            _adopt_unit_traces(unit_traces)
            return merged

    def drain_memo_journal(self):
        """Take and clear the journalled worker memo entries."""
        drained, self.memo_journal = self.memo_journal, []
        return drained
