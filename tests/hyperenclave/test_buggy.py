"""Each buggy monitor variant must actually exhibit its planted bug."""

import pytest

from repro.hyperenclave import buggy, pte
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.epcm import PageState
from repro.hyperenclave.monitor import HOST_ID

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestShallowCopyMonitor:
    def test_enclave_gpt_points_into_guest_memory(self):
        monitor = buggy.ShallowCopyMonitor(TINY)
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        primary_os.app_map_data(app, 16 * PAGE)
        mbuf_pa = TINY.frame_base(primary_os.reserve_data_frame())
        eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE,
                                         4 * PAGE, mbuf_pa, PAGE)
        enclave = monitor.enclaves[eid]
        guest_frames = [f for f in enclave.gpt.table_frames()
                        if monitor.layout.is_untrusted(f)]
        assert guest_frames, \
            "shallow copy must leave guest-controlled table frames"


class TestAliasingMonitor:
    def test_identical_content_shares_epc_frame(self):
        monitor = buggy.AliasingMonitor(TINY)
        primary_os = monitor.primary_os
        src = TINY.frame_base(primary_os.reserve_data_frame())
        primary_os.gpa_write_word(src, 0x1234)
        mbuf_a = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf_b = TINY.frame_base(primary_os.reserve_data_frame())
        eid_a = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_a, PAGE)
        eid_b = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_b, PAGE)
        frame_a = monitor.hc_add_page(eid_a, 16 * PAGE, src)
        frame_b = monitor.hc_add_page(eid_b, 32 * PAGE, src)
        assert frame_a == frame_b  # the alias

    def test_different_content_not_shared(self):
        monitor = buggy.AliasingMonitor(TINY)
        primary_os = monitor.primary_os
        src_a = TINY.frame_base(primary_os.reserve_data_frame())
        src_b = TINY.frame_base(primary_os.reserve_data_frame())
        primary_os.gpa_write_word(src_a, 1)
        primary_os.gpa_write_word(src_b, 2)
        mbuf_a = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf_b = TINY.frame_base(primary_os.reserve_data_frame())
        eid_a = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_a, PAGE)
        eid_b = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_b, PAGE)
        assert monitor.hc_add_page(eid_a, 16 * PAGE, src_a) != \
            monitor.hc_add_page(eid_b, 32 * PAGE, src_b)


class TestOutsideElrangeMonitor:
    def test_outside_va_lands_in_epc(self):
        monitor = buggy.OutsideElrangeMonitor(TINY)
        primary_os = monitor.primary_os
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
        frame = monitor.hc_add_page(eid, 40 * PAGE, 0)  # outside!
        assert monitor.layout.is_epc(frame)
        hpa = monitor.enclave_translate(eid, 40 * PAGE)
        assert monitor.layout.is_epc(TINY.frame_of(hpa))


class TestNoEpcmRecordMonitor:
    def test_mapping_without_record(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.NoEpcmRecordMonitor)
        hpa = monitor.enclave_translate(eid, 16 * PAGE)
        entry = monitor.epcm.entry_for_frame(TINY.frame_of(hpa))
        assert entry.is_free()  # covert mapping


class TestHugePageMonitor:
    def test_enclave_ept_has_huge_mapping(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.HugePageMonitor)
        sizes = {size for _va, _pa, size, _f
                 in monitor.enclaves[eid].ept.mappings()}
        assert any(size > PAGE for size in sizes)


class TestMbufOverlapMonitor:
    def test_overlapping_mbuf_accepted(self):
        monitor = buggy.MbufOverlapMonitor(TINY)
        mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
        eid = monitor.hc_create(16 * PAGE, 2 * PAGE, 17 * PAGE, mbuf, PAGE)
        enclave = monitor.enclaves[eid]
        assert enclave.overlaps_elrange(enclave.mbuf.va_base,
                                        enclave.mbuf.size)


class TestSecureMbufMonitor:
    def test_epc_backed_mbuf_accepted(self):
        monitor = buggy.SecureMbufMonitor(TINY)
        epc_pa = TINY.frame_base(monitor.layout.epc_base + 3)
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, epc_pa, PAGE)
        hpa = monitor.enclave_translate(eid, 4 * PAGE)
        assert monitor.layout.is_epc(TINY.frame_of(hpa))


class TestLeakyExitMonitor:
    def test_registers_survive_exit(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.LeakyExitMonitor)
        monitor.hc_enter(eid)
        monitor.vcpu.write_reg("rax", 0x5EC2E7)
        monitor.hc_exit(eid)
        assert monitor.active == HOST_ID
        assert monitor.vcpu.read_reg("rax") == 0x5EC2E7  # leaked


class TestNoScrubMonitor:
    def test_epc_content_survives_destroy(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.NoScrubMonitor, secret=0x51C2E7)
        frames = [f for f, e in monitor.epcm.owned_by(eid)
                  if e.state is PageState.REG]
        monitor.hc_destroy(eid)
        leaked = [monitor.phys.frame_words(f)[0] for f in frames]
        assert 0x51C2E7 in leaked


class TestNoTlbFlushMonitor:
    def test_tlb_survives_exit(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.NoTlbFlushMonitor)
        monitor.hc_enter(eid)
        monitor.tlb.insert(0, (16 * PAGE, False), 0x6800)
        monitor.hc_exit(eid)
        assert monitor.tlb.lookup(0, (16 * PAGE, False)) == 0x6800


class TestRegistry:
    def test_all_variants_registered(self):
        assert len(buggy.ALL_BUGGY_MONITORS) == 13
        assert all(hasattr(cls, "BUG") for cls in buggy.ALL_BUGGY_MONITORS)

    def test_bug_tags_unique(self):
        tags = [cls.BUG for cls in buggy.ALL_BUGGY_MONITORS]
        assert len(tags) == len(set(tags))
