"""Prefix-sharing execution cache: the snapshot tree.

Bounded-preemption BFS schedules share prefixes almost entirely — a
child schedule is its parent plus one forced preemption, so everything
before the preemption re-executes identically (execution is a pure
function of the :class:`~repro.concurrency.scheduler.Schedule`).  This
module caches that shared work: a **snapshot tree** whose nodes hold
frozen :class:`~repro.security.state.SystemState` forks captured at
scheduling decision points, keyed by ``(world key, trace prefix)``.
Running a child schedule restores its deepest cached ancestor through
the structured clone layer and executes only the suffix.

Correctness rests on three properties:

* **Snapshot-safe decision points.**  A node is taken only when every
  live vCPU's continuation is reconstructible from its script position
  alone.  That is always true at a ``step`` or ``task.start`` park (no
  lock held or waited on, no transaction in flight): the ``step`` yield
  sits at the very top of ``apply_step``, before any mutation, so the
  parked task's continuation is "run the rest of my script".  With the
  extended gate (``REPRO_SNAPSHOT_GATE``, on by default) two more park
  kinds qualify — a ``hc.return`` park (the hypercall fully committed
  and its locks released; the continuation engine hoists this yield to
  an empty stack, and a restored task simply starts the *next* step)
  and a ``lock.acquire`` park on the task's *first* lock (nothing
  journalled, nothing snapshotted, the transaction scope still empty —
  re-entering the step replays its pure prologue exactly).  Parks at
  ``phys.write``/``shootdown.ipi`` stay ineligible by design: they sit
  inside an open transaction whose journal and structure snapshots
  cannot be re-seeded soundly (and under a buggy lock-free monitor the
  prologue before them is not replay-pure).  Restored tasks re-enter
  the step they were parked in; ``resume_swallow`` consumes the
  re-executed park-point yields (already recorded, already
  crash-checked) instead of double-recording them — one yield for a
  ``step`` park, two (step + acquire) for a ``lock.acquire`` park,
  whose re-entered ``step_count`` bump :meth:`SnapshotNode.apply_to`
  compensates.
* **Deterministic prefix prediction.**  A child's trace prefix equals
  its parent's trace up to the forced decision plus the forced vid, so
  a side index of recorded traces keyed by ``(world key, preemptions)``
  predicts the child's prefix without running anything.
* **Copy-on-write structure sharing.**  The version-counted structures
  (``phys``, ``frames``, ``epcm``) carry monotone mutation counters;
  consecutive captures in one run share the previous node's cloned
  structure by reference when the counter did not move.  Safe because
  node states are frozen — only ever used as clone sources.

Memory is bounded by an LRU byte budget (``REPRO_SNAPSHOT_BUDGET_MB``,
default 256).  The tree is **process-local by design**: pool workers
fork with an empty tree and warm it across waves; a durable campaign
resumed after ``kill -9`` starts new workers whose trees are rebuilt
from live execution, so pre-crash snapshots are structurally impossible
to reuse.  The cache is opt-in per unit (``REPRO_PREFIX_CACHE``; on by
default for parallel/durable/service campaigns, off for sequential
campaigns and single-schedule ``replay``), and the cache-off path is
the untouched legacy code path.
"""

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.obs.metrics import REGISTRY

#: Yield kinds at which a vCPU's continuation is just "finish the
#: current script step, then the rest of the script".
SAFE_PARK_KINDS = frozenset({"task.start", "step"})

#: Additional park kinds accepted by the extended capture gate (see
#: module docstring for why these are sound and others are not).
EXTENDED_PARK_KINDS = frozenset({"hc.return", "lock.acquire"})

ENV_FLAG = "REPRO_PREFIX_CACHE"
ENV_BUDGET = "REPRO_SNAPSHOT_BUDGET_MB"
ENV_GATE = "REPRO_SNAPSHOT_GATE"
DEFAULT_BUDGET_MB = 256.0

#: Recorded parent traces kept for prefix prediction (tiny tuples; a
#: FIFO cap keeps unbounded campaigns bounded).
TRACE_CAP = 100_000


def prefix_cache_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the cache flag: explicit value, else ``REPRO_PREFIX_CACHE``
    (default on — unset or empty means enabled)."""
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(ENV_FLAG)
    if env is None or not env.strip():
        return True
    return env.strip().lower() not in ("0", "false", "no", "off")


def extended_gate_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the capture-gate flag: explicit value, else
    ``REPRO_SNAPSHOT_GATE`` (default extended; ``legacy``/``0``/``off``
    restricts captures to :data:`SAFE_PARK_KINDS` parks only)."""
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(ENV_GATE)
    if env is None or not env.strip():
        return True
    return env.strip().lower() not in ("0", "false", "no", "off", "legacy")


def snapshot_budget_bytes() -> int:
    """The LRU byte budget from ``REPRO_SNAPSHOT_BUDGET_MB``."""
    env = os.environ.get(ENV_BUDGET)
    if env is None or not env.strip():
        mb = DEFAULT_BUDGET_MB
    else:
        try:
            mb = float(env)
        except ValueError:
            raise ValueError(
                f"{ENV_BUDGET}={env!r} is not a number of megabytes")
    return max(0, int(mb * 1024 * 1024))


def locality_key(schedule) -> str:
    """Shard key that co-locates one preemption subtree on one worker.

    Every descendant of a first preemption ``(index, vid)`` keeps that
    head, so sharding by (seed, crash, head) sends each subtree — the
    schedules that actually share prefixes — to the same worker, where
    the process-local tree can serve them.  Distinct heads spread over
    the pool, so parallelism is preserved.  Merge order stays by unit
    index, so campaign results are byte-identical to any other keying.
    """
    head = schedule.preemptions[0] if schedule.preemptions else None
    return f"seed={schedule.seed} crash={schedule.crash} head={head}"


@dataclass(frozen=True)
class TaskMeta:
    """One vCPU's restart coordinates inside a snapshot node.

    ``position`` is the script step the restored task re-enters (for an
    ``hc.return`` park that is the *next* step — the parked one fully
    committed); ``swallow`` is how many already-recorded yields the
    re-entered step replays before live recording resumes (0 for
    ``task.start``/``hc.return``, 1 for ``step``, 2 for
    ``lock.acquire``); ``waiting_lock`` re-seeds the runnability test
    so a restored blocked task cannot be picked into a contended
    acquire.
    """

    vid: int
    position: int                      # script step the task re-enters
    pending_kind: str
    pending_detail: Optional[str]
    yield_index: int
    done: bool
    parked: bool
    crashed: bool
    exc: Optional[BaseException]
    waiting_lock: Optional[str] = None
    swallow: int = 0


class SnapshotNode:
    """A frozen mid-execution world plus everything needed to resume.

    ``state`` is only ever used as a clone source; the cached prefix
    records (decisions, yields, stale findings, lock telemetry) are
    seeded into the resuming scheduler so its :class:`RunResult` is
    byte-identical to a from-scratch run.
    """

    __slots__ = ("state", "versions", "metas", "decisions", "yields",
                 "stale", "lock_violations", "acquisitions",
                 "contentions", "last", "depth", "nbytes")

    def __init__(self, state, versions, metas, decisions, yields, stale,
                 lock_violations, acquisitions, contentions, last,
                 nbytes):
        self.state = state
        self.versions = versions
        self.metas = metas
        self.decisions = decisions
        self.yields = yields
        self.stale = stale
        self.lock_violations = lock_violations
        self.acquisitions = acquisitions
        self.contentions = contentions
        self.last = last
        self.depth = len(decisions)
        self.nbytes = nbytes

    def positions(self):
        return [meta.position for meta in self.metas]

    def apply_to(self, sched):
        """Seed a fresh scheduler with this node's cached prefix."""
        sched.decisions = list(self.decisions)
        sched.yields = list(self.yields)
        sched.stale = list(self.stale)
        sched.locks.violations = list(self.lock_violations)
        sched.locks.acquisitions = self.acquisitions
        sched.locks.contentions = self.contentions
        sched._last = self.last
        for task, meta in zip(sched.tasks, self.metas):
            task.pending_kind = meta.pending_kind
            task.pending_detail = meta.pending_detail
            task.yield_index = meta.yield_index
            task.done = meta.done
            task.parked = meta.parked
            task.crashed = meta.crashed
            task.exc = meta.exc
            task.waiting_lock = meta.waiting_lock
            # A live task parked inside a script step re-executes the
            # step's prologue; ``swallow`` counts the yields of that
            # prologue the prefix already recorded.
            task.resume_swallow = 0 if meta.done else meta.swallow
            # An hc.return meta carries the *post-advance* position
            # (the next step); flag it so a capture taken before this
            # task re-runs doesn't advance the position a second time.
            task.restored_return = (not meta.done
                                    and meta.pending_kind == "hc.return")
            if (not meta.done and meta.swallow >= 2
                    and sched.script_workloads is not None):
                # A lock.acquire park sits *after* apply_step's
                # step-count bump: the frozen state already counted the
                # step this task re-enters, and re-entering bumps it
                # again.  Undo one so the step counts exactly once.
                sched.script_workloads.state.step_count -= 1


class SnapshotTree:
    """LRU byte-budgeted store of :class:`SnapshotNode` plus the
    parent-trace side index used for prefix prediction.

    ``max_nodes`` is a test knob forcing tiny capacities (the
    equivalence suite runs at capacity 0 and 1)."""

    def __init__(self, budget_bytes: Optional[int] = None,
                 max_nodes: Optional[int] = None):
        self.budget = (snapshot_budget_bytes()
                       if budget_bytes is None else int(budget_bytes))
        self.max_nodes = max_nodes
        self.nodes: "OrderedDict[tuple, SnapshotNode]" = OrderedDict()
        self.traces: "OrderedDict[tuple, Tuple[int, ...]]" = OrderedDict()
        self.bytes_resident = 0
        self.stats = REGISTRY.counter_group(
            "snapshot_cache",
            ("hits", "misses", "evictions", "captures", "steps_saved",
             "cow_shared"))

    @property
    def capacity_disabled(self) -> bool:
        return self.budget <= 0 or self.max_nodes == 0

    # -- lookup ---------------------------------------------------------------

    def _predicted_prefix(self, world_key, schedule):
        if not schedule.preemptions:
            return None
        index, vid = schedule.preemptions[-1]
        parent = self.traces.get((world_key, schedule.preemptions[:-1]))
        if parent is None or len(parent) < index:
            return None
        return parent[:index] + (vid,)

    def lookup(self, world_key, schedule) -> Optional[SnapshotNode]:
        """The deepest cached ancestor consistent with ``schedule``'s
        predicted trace prefix, or None (counted as hit/miss)."""
        predicted = self._predicted_prefix(world_key, schedule)
        if predicted:
            for depth in range(len(predicted), 0, -1):
                key = (world_key, predicted[:depth])
                node = self.nodes.get(key)
                if node is not None:
                    self.nodes.move_to_end(key)
                    self.stats["hits"] += 1
                    self.stats["steps_saved"] += node.depth
                    return node
        self.stats["misses"] += 1
        return None

    def record_trace(self, world_key, schedule, trace):
        """Remember an executed schedule's vid-trace (the side index
        that lets :meth:`lookup` predict a child schedule's prefix)."""
        key = (world_key, schedule.preemptions)
        self.traces[key] = trace
        self.traces.move_to_end(key)
        while len(self.traces) > TRACE_CAP:
            self.traces.popitem(last=False)

    # -- insertion / eviction -------------------------------------------------

    def insert(self, key, node):
        """Add a captured node, evicting least-recently-used nodes
        until the byte budget (and ``max_nodes``, if set) is met."""
        if self.capacity_disabled:
            return
        self.nodes[key] = node
        self.bytes_resident += node.nbytes
        self.stats["captures"] += 1
        while self.nodes and (
                self.bytes_resident > self.budget
                or (self.max_nodes is not None
                    and len(self.nodes) > self.max_nodes)):
            _, evicted = self.nodes.popitem(last=False)
            self.bytes_resident -= evicted.nbytes
            self.stats["evictions"] += 1
        REGISTRY.set_gauge("snapshot_cache.bytes_resident",
                           float(self.bytes_resident))


class SnapshotPlan:
    """The capture policy for one scheduled run.

    Installed as ``DeterministicScheduler.snapshots``; offered the
    frozen world right before every scheduling decision (both the
    token-passing and the inline-handoff paths).  Captures only at
    decisions a child schedule could branch from — at least two live
    vCPUs, every live vCPU at a snapshot-safe park — and dedups by
    node key *before* cloning, so re-executed shared prefixes cost a
    dict probe, not a clone.
    """

    __slots__ = ("tree", "world_key", "state", "workloads", "_prev",
                 "extended")

    def __init__(self, tree, world_key, state, workloads, schedule,
                 resumed_from: Optional[SnapshotNode] = None,
                 extended: Optional[bool] = None):
        self.tree = tree
        self.world_key = world_key
        self.state = state
        self.workloads = workloads
        self._prev = resumed_from
        self.extended = extended_gate_enabled(extended)

    def offer(self, sched):
        """Capture the scheduler's state at the current decision point
        if it is snapshot-safe (called by the scheduler before every
        pick); unsafe or duplicate points are skipped for free."""
        tree = self.tree
        if tree.capacity_disabled:
            return
        index = len(sched.decisions)
        if index == 0:
            # the initial state is the world prototype; caching it
            # would save nothing over cloning the prototype
            return
        live = 0
        for task in sched.tasks:
            if task.done:
                continue
            live += 1
            if not self._capturable(sched, task):
                return
        if live < 2 or sched.locks.any_held():
            # a single live vCPU can never branch; held locks mean a
            # hypercall is mid-flight somewhere (for lock-disciplined
            # monitors), so a parked waiter could be restored into a
            # contended acquire
            return
        prefix = tuple(d.chosen for d in sched.decisions)
        key = (self.world_key, prefix)
        existing = tree.nodes.get(key)
        if existing is not None:
            # an earlier run of this prefix captured the identical
            # state (deterministic execution); adopt it as the COW
            # donor so this run's later captures share with it
            tree.nodes.move_to_end(key)
            self._prev = existing
            return
        tree.insert(key, self._capture(sched))

    def _capturable(self, sched, task) -> bool:
        """Is this live task's continuation reconstructible from its
        script position (plus a swallow count) alone?"""
        kind = task.pending_kind
        if (kind in SAFE_PARK_KINDS and task.waiting_lock is None
                and task.txn_scope is None):
            return True
        if not self.extended:
            return False
        if kind == "hc.return":
            # locks released, transaction scope closed, step committed:
            # the continuation is "start the next step"
            return task.txn_scope is None
        if kind == "lock.acquire" and not sched.locks.held_by(task.vid):
            # parked at the *first* acquire of a strict-2PL plan: the
            # open scope has journalled nothing and snapshotted
            # nothing, so re-entering the step replays its pure
            # prologue exactly
            scope = task.txn_scope
            return scope is None or (not scope.journal
                                     and not scope.structures)
        return False

    def _capture(self, sched) -> SnapshotNode:
        from repro.engine.fingerprint import structure_versions

        monitor = self.state.monitor
        versions = structure_versions(monitor)
        reuse = {}
        prev = self._prev
        if prev is not None:
            donor = prev.state.monitor
            for name, attr in (("phys", "phys"),
                               ("frames", "pt_allocator"),
                               ("epcm", "epcm")):
                if prev.versions.get(name) == versions[name]:
                    reuse[attr] = getattr(donor, attr)
        with conc.suspended():
            frozen = self.state.clone(reuse=reuse or None)
        if reuse:
            self.tree.stats["cow_shared"] += len(reuse)
        metas = tuple(self._task_meta(task) for task in sched.tasks)
        node = SnapshotNode(
            state=frozen, versions=versions, metas=metas,
            decisions=tuple(sched.decisions),
            yields=tuple(sched.yields),
            stale=tuple(sched.stale),
            lock_violations=tuple(sched.locks.violations),
            acquisitions=sched.locks.acquisitions,
            contentions=sched.locks.contentions,
            last=sched._last,
            nbytes=_estimate_bytes(frozen, sched, reuse))
        self._prev = node
        return node

    def _task_meta(self, task) -> TaskMeta:
        position = self.workloads.positions[task.vid]
        kind = task.pending_kind
        if task.done:
            swallow = 0
        elif kind == "hc.return":
            # the parked step fully committed; the restored task starts
            # the next one with nothing to replay.  A task that is
            # itself an untouched restore of an hc.return park already
            # holds the post-advance position — don't advance it twice.
            if not task.restored_return:
                position += 1
            swallow = 0
        elif kind == "step":
            swallow = 1                # the top-of-step yield
        elif kind == "lock.acquire":
            swallow = 2                # the step yield + the acquire yield
        else:
            swallow = 0                # task.start: nothing executed yet
        return TaskMeta(
            vid=task.vid, position=position,
            pending_kind=task.pending_kind,
            pending_detail=task.pending_detail,
            yield_index=task.yield_index,
            done=task.done, parked=task.parked,
            crashed=task.crashed, exc=task.exc,
            waiting_lock=task.waiting_lock, swallow=swallow)


def _estimate_bytes(state, sched, reuse) -> int:
    """Deterministic byte estimate of one node (shared structures are
    charged to the node that owns them)."""
    monitor = state.monitor
    total = 8192
    if "phys" not in reuse:
        total += 96 * len(monitor.phys._words)
    if "pt_allocator" not in reuse:
        total += monitor.pt_allocator.size
    if "epcm" not in reuse:
        total += 120 * len(monitor.epcm._entries)
    total += 256 * len(monitor.enclaves)
    total += 512 * len(monitor.cpus)
    total += 48 * (len(sched.decisions) + len(sched.yields))
    return total


# ---------------------------------------------------------------------------
# The per-process tree (worker-local by construction)
# ---------------------------------------------------------------------------

_PROCESS_TREE: Optional[SnapshotTree] = None


def process_tree() -> SnapshotTree:
    """This process's snapshot tree (created on first use).

    Pool workers fork before their first unit, so each starts with
    whatever the parent had — normally nothing — and warms its own tree
    across the waves it serves.  A process restarted after a crash
    necessarily starts empty: the durable-resume rebuild rule is
    structural, not a protocol.
    """
    global _PROCESS_TREE
    if _PROCESS_TREE is None:
        _PROCESS_TREE = SnapshotTree()
    return _PROCESS_TREE


def reset_process_tree(tree: Optional[SnapshotTree] = None):
    """Replace (or clear) the process tree — test and bench hook."""
    global _PROCESS_TREE
    _PROCESS_TREE = tree


__all__ = [
    "SAFE_PARK_KINDS", "EXTENDED_PARK_KINDS", "ENV_FLAG", "ENV_BUDGET",
    "ENV_GATE", "TaskMeta", "SnapshotNode", "SnapshotTree",
    "SnapshotPlan", "extended_gate_enabled", "prefix_cache_enabled",
    "snapshot_budget_bytes", "locality_key", "process_tree",
    "reset_process_tree",
]
