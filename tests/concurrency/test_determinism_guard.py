"""Determinism guard (satellite): the concurrency plane must be
invisible at one vCPU.

The whole fault-injection crash-step campaign re-runs with every armed
hypercall wrapped in a single-task deterministic schedule.  A one-vCPU
schedule has exactly one enabled choice at every decision, so the
sequential and scheduled campaigns must be *identical* — same
injectable steps, same :class:`FiredFault` traces, same verdicts —
even though the scheduled runs roll back through the per-task journal
instead of the whole-monitor snapshot.
"""

import pytest

from repro.faults import (
    crash_step_campaign,
    default_workload,
    default_world_factory,
    scheduled_runner,
)


def record_key(run):
    return (run.hypercall, run.site, run.step, run.kind, run.outcome,
            run.fired, run.rolled_back, run.invariants_ok,
            run.fired_faults)


@pytest.fixture(scope="module")
def campaigns():
    factory = default_world_factory()
    calls = default_workload()
    sequential = crash_step_campaign(factory, calls, seed=0)
    scheduled = crash_step_campaign(factory, calls, seed=0,
                                    runner=scheduled_runner)
    return sequential, scheduled


def test_both_campaigns_are_green(campaigns):
    sequential, scheduled = campaigns
    assert sequential.ok
    assert scheduled.ok, [str(r.detail) for r in scheduled.failures()[:3]]


def test_verdicts_are_identical(campaigns):
    sequential, scheduled = campaigns
    assert len(sequential.runs) == len(scheduled.runs)
    for seq, sch in zip(sequential.runs, scheduled.runs):
        assert record_key(seq) == record_key(sch)


def test_fired_fault_traces_are_identical(campaigns):
    sequential, scheduled = campaigns
    assert [run.fired_faults for run in sequential.runs] == \
        [run.fired_faults for run in scheduled.runs]
    # and not vacuously: the campaign injected real faults
    assert any(run.fired_faults for run in sequential.runs)


def test_aggregate_counters_match(campaigns):
    sequential, scheduled = campaigns
    assert sequential.faults_injected == scheduled.faults_injected
    assert sequential.rollbacks_verified == scheduled.rollbacks_verified
    assert sequential.invariant_sweeps_passed == \
        scheduled.invariant_sweeps_passed
