"""Wall-clock and step budgets for the checking engines.

The checkers are only useful if they terminate: a symbolic execution
chasing a path explosion, or a co-simulation over a hostile sample
generator, must not hang the harness.  A :class:`Budget` is threaded
through the engines; each unit of work (a symbolic step, a solved model
cell, a co-simulated sample) calls :meth:`Budget.spend`, and crossing
either limit raises the typed
:class:`~repro.errors.CheckBudgetExceeded` — which the hardened harness
(:mod:`repro.verification.harness`) catches to degrade to a cheaper
engine rather than fail the whole run.

The clock is injectable so timeout behaviour is deterministic under
test: pass a fake ``clock`` and advance it by hand.
"""

import time

from repro.errors import CheckBudgetExceeded


class Budget:
    """A spend-until-exhausted allowance of steps and/or seconds.

    ``None`` for either limit means unlimited on that axis; a budget
    with both limits ``None`` never trips, so engines can thread one
    unconditionally.  One Budget may be shared across several engines —
    the harness does exactly that, so a degraded run pays for what the
    abandoned engine already burned.
    """

    def __init__(self, max_steps=None, max_seconds=None,
                 clock=time.monotonic):
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be non-negative")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self._clock = clock
        self._steps = 0
        self._started = clock()

    @property
    def steps(self):
        """Steps spent so far."""
        return self._steps

    @property
    def seconds(self):
        """Seconds elapsed since the budget was created."""
        return self._clock() - self._started

    @property
    def exceeded(self):
        """Is either limit crossed? (Does not raise.)"""
        if self.max_steps is not None and self._steps > self.max_steps:
            return True
        if self.max_seconds is not None and self.seconds > self.max_seconds:
            return True
        return False

    def spend(self, steps=1, what="work"):
        """Consume ``steps`` units and enforce both limits.

        Raises :class:`~repro.errors.CheckBudgetExceeded` naming the
        crossed axis; the exception carries :meth:`spent` so reports
        can show where the budget went.
        """
        self._steps += steps
        if self.max_steps is not None and self._steps > self.max_steps:
            raise CheckBudgetExceeded(
                f"step budget exhausted after {self._steps} steps "
                f"(limit {self.max_steps}) while doing {what}",
                spent=self.spent())
        self.check_time(what)

    def check_time(self, what="work"):
        """Enforce only the wall-clock limit (cheap; call in hot loops)."""
        if self.max_seconds is not None and \
                self.seconds > self.max_seconds:
            raise CheckBudgetExceeded(
                f"time budget exhausted after {self.seconds:.3f}s "
                f"(limit {self.max_seconds}s) while doing {what}",
                spent=self.spent())

    def spent(self):
        """``{"steps": ..., "seconds": ...}`` — the record for reports."""
        return {"steps": self._steps, "seconds": round(self.seconds, 6)}

    def __repr__(self):
        return (f"Budget(steps={self._steps}/{self.max_steps}, "
                f"seconds={self.seconds:.3f}/{self.max_seconds})")
