"""Figure 3 — the MIRVerif pipeline, with live per-stage artifact counts.

The benchmark times the front half of the pipeline (the mirlightgen
substitute: print the corpus, re-parse it, re-split it, re-derive the
layer order) — the part the paper automates with rustc + ad-hoc scripts.
"""

from repro.analysis import corpus_mirlight_loc, infer_layer_indices, split_blob
from repro.mir.parser import parse_program
from repro.mir.printer import print_program
from repro.mir.retrofit import check_retrofitted
from repro.reporting import fig3_pipeline


def test_bench_fig3(benchmark, model, emit):
    def pipeline_front():
        source = print_program(model.program)
        reparsed = parse_program(source)
        files = split_blob(reparsed)
        depths = infer_layer_indices(
            reparsed, [s.name for s in model.trusted])
        return files, depths

    files, depths = benchmark(pipeline_front)
    findings = check_retrofitted(model.program)
    text = fig3_pipeline(model, findings, files,
                         corpus_mirlight_loc(model))
    emit("fig3_pipeline", text)

    assert len(files) == 49
    assert not findings
    assert max(depths.values()) >= 5  # deep compositions exist
    assert "15 layers" in text
