"""The checking-as-a-service daemon: a stdlib HTTP/JSON front.

A long-lived process that accepts campaign submissions over HTTP,
schedules them across one shared worker pool via
:class:`~repro.service.scheduler.CampaignScheduler`, and serves
verdicts and replayable provenance bundles back.  No dependencies
beyond ``http.server`` — the service is the same code a test can
exercise in-process on an ephemeral port.

API (all bodies JSON)::

    POST /campaigns                submit a CampaignSpec
                                   202 {"id", "status"} on admission,
                                   429 backpressure verdict when the
                                   admission queue is full,
                                   503 when draining
    GET  /campaigns                every known campaign's status
    GET  /campaigns/<id>           one campaign's status (404 unknown)
    GET  /campaigns/<id>/artifacts the campaign's cut provenance
                                   bundles, inline and replayable
    POST /campaigns/<id>/cancel    stop scheduling it (checkpoint kept)
    GET  /healthz                  scheduler liveness: ok | stalled |
                                   draining, heartbeat age, queue depths
    GET  /metrics                  the process metrics registry snapshot

The submission body carries the
:class:`~repro.service.orchestrator.CampaignSpec` payload fields plus
optional ``id``, ``wall_budget`` and ``wave_budget``.  A resubmitted
``id`` is idempotent — the client's retry loop may safely repeat a
``POST`` whose response was lost.

Lifecycle: ``SIGTERM`` drains gracefully (stop admitting, finish the
in-flight round — every chunk commit is a flushed checkpoint — then
exit 0 with a per-campaign resume report); ``SIGINT`` does the same
but exits 130, matching the campaign CLI convention.  A ``kill -9``
loses at most one in-flight wave chunk per campaign; the next daemon
started on the same ``--root`` auto-resumes every incomplete store
(:meth:`~repro.service.scheduler.CampaignScheduler.recover`).
"""

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.errors import AdmissionRefused, CampaignNotFound
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY
from repro.service.orchestrator import CampaignSpec
from repro.service.scheduler import (CampaignScheduler, _safe_id,
                                     _validate_budgets)

#: Request body cap: a CampaignSpec is a few hundred bytes; anything
#: megabyte-sized is not a spec.
MAX_BODY = 1 << 20


def spec_from_payload(payload: Dict) -> Tuple[CampaignSpec, Dict]:
    """Split a submission body into (spec, admission options).

    Unknown fields are rejected — a typo'd ``max_schedule`` silently
    running the default bound would be a debugging trap.
    """
    if not isinstance(payload, dict):
        raise ValueError("submission body must be a JSON object")
    spec_fields = set(CampaignSpec.__dataclass_fields__)
    option_fields = {"id", "wall_budget", "wave_budget"}
    unknown = set(payload) - spec_fields - option_fields
    if unknown:
        raise ValueError(f"unknown submission fields {sorted(unknown)} "
                         f"(spec fields: {sorted(spec_fields)}; "
                         f"options: {sorted(option_fields)})")
    spec = CampaignSpec.from_payload(
        {key: value for key, value in payload.items()
         if key in spec_fields})
    campaign_id = payload.get("id")
    if campaign_id is not None and (not isinstance(campaign_id, str)
                                    or not _safe_id(campaign_id)):
        raise ValueError(
            f"id must be a non-empty [A-Za-z0-9._-] string "
            f"(not all dots), got {campaign_id!r}")
    _validate_budgets(payload.get("wall_budget"),
                      payload.get("wave_budget"))
    options = {"campaign_id": campaign_id,
               "wall_budget": payload.get("wall_budget"),
               "wave_budget": payload.get("wave_budget")}
    return spec, options


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the daemon's scheduler; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-checkd/1"

    # -- plumbing -----------------------------------------------------------

    @property
    def daemon(self) -> "CheckingDaemon":
        return self.server.checking_daemon

    def log_message(self, format, *args):   # noqa: A002 - stdlib name
        # Access logging goes to the tracer, not stderr.
        _trace.event("service.http-log", line=format % args)

    def _reply(self, status: int, payload: Dict):
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise ValueError(f"request body of {length} bytes exceeds "
                             f"the {MAX_BODY} byte cap")
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _route(self, method: str):
        REGISTRY.inc("service.http_requests")
        REGISTRY.inc(f"service.http_{method.lower()}")
        path = self.path.rstrip("/") or "/"
        with _trace.span("service.http", method=method, path=path):
            try:
                status, payload = self.daemon.handle(method, path,
                                                     self._read_json
                                                     if method == "POST"
                                                     else None)
            except (ValueError, json.JSONDecodeError) as exc:
                status, payload = 400, {"error": "bad-request",
                                        "detail": str(exc)}
            except AdmissionRefused as exc:
                status = 503 if exc.retry_after is None else 429
                payload = {"error": "backpressure",
                           "reason": exc.reason,
                           "retry_after": exc.retry_after}
                if exc.retry_after is not None:
                    REGISTRY.inc("service.http_429")
            except CampaignNotFound as exc:
                status, payload = 404, {"error": "not-found",
                                        "campaign": exc.campaign_id}
            except Exception as exc:
                # Anything untyped (an OSError reading a bundle, a
                # TypeError from a malformed body) must still produce
                # an HTTP response, not a dropped connection.
                status, payload = 500, {
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}"}
                _trace.event("service.http-internal-error",
                             path=path, cause=str(exc))
            if status >= 500:
                REGISTRY.inc("service.http_5xx")
            self._reply(status, payload)

    def do_GET(self):           # noqa: N802 - stdlib casing
        self._route("GET")

    def do_POST(self):          # noqa: N802 - stdlib casing
        self._route("POST")


class CheckingDaemon:
    """The HTTP server + scheduler pair behind ``python -m repro serve``.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` holds
    the bound ``(host, port)`` after construction.
    """

    def __init__(self, root: str, *, host: str = "127.0.0.1",
                 port: int = 8731,
                 scheduler: Optional[CampaignScheduler] = None,
                 **scheduler_options):
        self.scheduler = scheduler if scheduler is not None \
            else CampaignScheduler(root, **scheduler_options)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.checking_daemon = self
        self.httpd.daemon_threads = True
        self.address = self.httpd.server_address[:2]
        self._http_thread: Optional[threading.Thread] = None
        self._drained = threading.Event()

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- request dispatch ---------------------------------------------------

    def handle(self, method: str, path: str, read_json) \
            -> Tuple[int, Dict]:
        """One request → (status, JSON payload); typed errors raise."""
        scheduler = self.scheduler
        if method == "GET" and path == "/healthz":
            return 200, scheduler.health()
        if method == "GET" and path == "/metrics":
            return 200, REGISTRY.snapshot()
        if method == "GET" and path == "/campaigns":
            return 200, {"campaigns": scheduler.list_campaigns()}
        if method == "POST" and path == "/campaigns":
            spec, options = spec_from_payload(read_json())
            known = options["campaign_id"] in {
                status["id"] for status in scheduler.list_campaigns()}
            campaign_id = scheduler.submit(spec, **options)
            if known:
                return 200, scheduler.status(campaign_id)
            return 202, {"id": campaign_id, "status": "queued",
                         "store": f"{scheduler.root}/{campaign_id}"}
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign_id = parts[1]
            if method == "GET" and len(parts) == 2:
                return 200, scheduler.status(campaign_id)
            if method == "GET" and parts[2:] == ["artifacts"]:
                return 200, {"id": campaign_id,
                             "artifacts":
                                 scheduler.artifacts(campaign_id)}
            if method == "POST" and parts[2:] == ["cancel"]:
                return 200, scheduler.cancel(campaign_id)
        return 404, {"error": "not-found", "path": path}

    # -- lifecycle ----------------------------------------------------------

    def start(self, *, recover: bool = True):
        """Recover incomplete stores, start scheduling, start serving."""
        if recover:
            self.scheduler.recover()
        self.scheduler.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-http",
            daemon=True)
        self._http_thread.start()
        _trace.event("service.listen", url=self.url)

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Dict]:
        """Graceful shutdown; returns the per-campaign resume report."""
        report = self.scheduler.drain(timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None
        self._drained.set()
        return report

    def __enter__(self) -> "CheckingDaemon":
        self.start()
        return self

    def __exit__(self, *_exc):
        if not self._drained.is_set():
            self.drain()
        return False


def serve_forever(daemon: CheckingDaemon, *, out=None) -> int:
    """Block until SIGTERM/SIGINT, then drain; the ``serve`` verb body.

    Returns the process exit code: 0 for a SIGTERM drain, 130 for
    SIGINT — both after the same flush.  Installs handlers only for
    the calling (main) thread, as ``signal`` requires.
    """
    import faulthandler
    import os
    import sys
    out = out if out is not None else sys.stdout
    stop = threading.Event()
    received = {}

    def _on_signal(signum, _frame):
        received["signum"] = signum
        stop.set()

    previous = {signum: signal.signal(signum, _on_signal)
                for signum in (signal.SIGTERM, signal.SIGINT)}
    # Liveness forensics: SIGUSR1 appends an all-thread stack dump to
    # <root>/stacks.txt, so an operator can see exactly where a
    # seemingly-stalled daemon is without killing it.
    stacks = open(os.path.join(daemon.scheduler.root, "stacks.txt"),
                  "a")
    faulthandler.register(signal.SIGUSR1, file=stacks, all_threads=True)
    try:
        daemon.start()
        print(f"repro checking service listening on {daemon.url} "
              f"(store root {daemon.scheduler.root})", file=out,
              flush=True)
        # Poll instead of blocking indefinitely: the kernel may hand a
        # process-directed SIGTERM to whichever thread is running
        # (under load, usually the busy scheduler thread), but Python
        # signal handlers only ever run on the main thread — and a
        # main thread parked in an untimed lock wait never returns to
        # bytecode to run the pending handler, so the drain would
        # silently never start.  A timed wait re-enters the
        # interpreter every half second, which is when pending
        # handlers fire.
        while not stop.wait(0.5):
            pass
        signum = received.get("signum", signal.SIGTERM)
        name = signal.Signals(signum).name
        print(f"{name} received — draining (no new admissions, "
              f"in-flight waves finishing)", file=out, flush=True)
        report = daemon.drain()
        for campaign_id, status in report.items():
            print(f"  {campaign_id}: {status['status']}"
                  f" (waves {status['waves']}, schedules "
                  f"{status['schedules_run']}, resumable "
                  f"{str(status['resumable']).lower()})",
                  file=out, flush=True)
        print(f"drained {len(report)} campaign(s); checkpoints "
              f"flushed to {daemon.scheduler.root}", file=out,
              flush=True)
        return 130 if signum == signal.SIGINT else 0
    finally:
        faulthandler.unregister(signal.SIGUSR1)
        stacks.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
