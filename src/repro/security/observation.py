"""The observation function V(p, σ) of Sec. 5.3.

"The observation for a principal p includes: (1) the CPU's registers if
p is the active principal; (2) p's saved register context, (3) mappings
in the page table owned by principal p, and (4) contents of the memory
pages that are not shared with other principals. Even though the mapping
of marshalling buffer is shared among principals, it is considered
observable ... because the mapping is immutable once an enclave has been
initialized. The contents of pages in the marshalling buffer are handled
differently [data oracles]."

:func:`observe` computes V as an immutable, comparable
:class:`Observation`; two states are *indistinguishable* to ``p`` iff
their observations are equal.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hyperenclave.epcm import PageState
from repro.hyperenclave.monitor import HOST_ID


@dataclass(frozen=True)
class Observation:
    """V(p, σ): everything principal ``p`` may see.  Frozen and
    structurally comparable."""

    principal: int
    is_active: bool
    cpu_regs: Optional[Tuple[Tuple[str, int], ...]]   # only if active
    saved_context: Optional[Tuple[Tuple[str, int], ...]]
    page_mappings: Tuple          # (table-name, va, pa, size, flags)
    memory_pages: Tuple           # (page-id, words) for non-shared pages
    metadata: Tuple               # principal-visible bookkeeping

    def diff(self, other) -> Tuple[str, ...]:
        """Human-readable list of differing components (for witnesses)."""
        differing = []
        for name in ("is_active", "cpu_regs", "saved_context",
                     "page_mappings", "memory_pages", "metadata"):
            if getattr(self, name) != getattr(other, name):
                differing.append(name)
        return tuple(differing)


def observe(state, principal) -> Observation:
    """V(p, sigma): compute principal ``p``'s observation."""
    if principal == HOST_ID:
        return _observe_host(state)
    return _observe_enclave(state, principal)


# ---------------------------------------------------------------------------
# Host view
# ---------------------------------------------------------------------------


def _observe_host(state) -> Observation:
    monitor = state.monitor
    config = monitor.config
    is_active = state.active == HOST_ID
    # (3) the normal VM's EPT mappings (installed on the host's behalf).
    mappings = tuple(("os-ept", va, pa, size, flags)
                     for va, pa, size, flags
                     in sorted(monitor.os_ept.mappings()))
    # (4) untrusted memory contents, minus marshalling-buffer backings
    # (shared; their contents are declassified via oracles).
    shared_frames = set()
    for enclave in monitor.enclaves.values():
        if enclave.mbuf is None:
            continue
        for _va, pa in enclave.mbuf.pages(config):
            shared_frames.add(config.frame_of(pa))
    pages = []
    for frame in monitor.layout.untrusted_frames:
        if frame in shared_frames:
            continue
        words = monitor.phys.frame_words(frame)
        if any(words):
            pages.append((("untrusted", frame), words))
    # Host-visible metadata: the lifecycle bookkeeping it drives itself.
    metadata = tuple(sorted(
        (eid, enclave.state.value, enclave.elrange_base,
         enclave.elrange_size,
         (enclave.mbuf.va_base, enclave.mbuf.pa_base, enclave.mbuf.size)
         if enclave.mbuf else None)
        for eid, enclave in monitor.enclaves.items()))
    return Observation(
        principal=HOST_ID,
        is_active=is_active,
        cpu_regs=monitor.vcpu.context() if is_active else None,
        saved_context=monitor.saved_host_context,
        page_mappings=mappings,
        memory_pages=tuple(pages),
        metadata=metadata,
    )


# ---------------------------------------------------------------------------
# Enclave view
# ---------------------------------------------------------------------------


def _observe_enclave(state, eid) -> Observation:
    monitor = state.monitor
    enclave = monitor.enclaves.get(eid)
    if enclave is None:
        return Observation(principal=eid, is_active=False, cpu_regs=None,
                           saved_context=None, page_mappings=(),
                           memory_pages=(), metadata=("destroyed",))
    is_active = state.active == eid
    # (3) the enclave's own GPT and EPT mappings (both monitor-owned on
    # its behalf); the mbuf mapping is included — it is immutable.
    mappings = []
    for name, table in (("gpt", enclave.gpt), ("ept", enclave.ept)):
        for va, pa, size, flags in sorted(table.mappings()):
            mappings.append((name, va, pa, size, flags))
    # (4) contents of its own (EPCM-recorded) EPC pages — never shared.
    pages = []
    for frame, entry in monitor.epcm.owned_by(eid):
        if entry.state is PageState.REG:
            pages.append((("epc", entry.va), monitor.phys.frame_words(frame)))
    pages.sort(key=lambda item: item[0])
    metadata = (enclave.state.value, enclave.elrange_base,
                enclave.elrange_size, enclave.measurement,
                (enclave.mbuf.va_base, enclave.mbuf.size)
                if enclave.mbuf else None)
    return Observation(
        principal=eid,
        is_active=is_active,
        cpu_regs=monitor.vcpu.context() if is_active else None,
        saved_context=enclave.saved_context,
        page_mappings=tuple(mappings),
        memory_pages=tuple(pages),
        metadata=metadata,
    )
