"""The durable store primitives: atomic writes, the log, the memo."""

import os
import pickle

import pytest

from repro.engine.memo import CheckMemo
from repro.errors import CorruptArtifact
from repro.service.store import (
    LOG_MAGIC,
    AppendLog,
    MemoStore,
    atomic_write,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        atomic_write(path, b"one")
        atomic_write(path, b"two")
        with open(path, "rb") as fh:
            assert fh.read() == b"two"

    def test_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        atomic_write(path, b"payload")
        assert os.listdir(tmp_path) == ["snap.bin"]

    def test_text_variant(self, tmp_path):
        path = str(tmp_path / "snap.txt")
        atomic_write_text(path, "héllo")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == "héllo"

    def test_failure_keeps_previous_content(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        atomic_write(path, b"original")
        with pytest.raises(TypeError):
            atomic_write(path, "not bytes")
        with open(path, "rb") as fh:
            assert fh.read() == b"original"
        assert os.listdir(tmp_path) == ["snap.bin"]


class TestAppendLog:
    def test_roundtrip_in_order(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with AppendLog(path) as log:
            for payload in (b"a", b"bb", b"ccc"):
                log.append(payload)
        assert AppendLog(path).replay() == [b"a", b"bb", b"ccc"]

    def test_empty_and_missing(self, tmp_path):
        path = str(tmp_path / "log.bin")
        assert AppendLog(path).replay() == []
        open(path, "wb").close()
        assert AppendLog(path).replay() == []

    def test_torn_tail_is_truncated_and_recovered(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with AppendLog(path) as log:
            log.append(b"first")
            log.append(b"second")
            log.append(b"third-will-tear")
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 4)          # tear the final record
        log = AppendLog(path)
        assert log.replay() == [b"first", b"second"]
        # The torn bytes are gone: appending continues cleanly.
        log.append(b"fourth")
        log.close()
        assert AppendLog(path).replay() == [b"first", b"second",
                                            b"fourth"]

    def test_torn_header_recovers_too(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with AppendLog(path) as log:
            log.append(b"whole")
        with open(path, "ab") as fh:
            fh.write(b"\x03")              # 1 byte of a future header
        assert AppendLog(path).replay() == [b"whole"]

    def test_mid_log_corruption_raises(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with AppendLog(path) as log:
            log.append(b"first")
            log.append(b"second")
        with open(path, "r+b") as fh:
            fh.seek(len(LOG_MAGIC) + 8)    # first record's payload
            fh.write(b"X")
        with pytest.raises(CorruptArtifact) as excinfo:
            AppendLog(path).replay()
        assert "mid-log corruption" in str(excinfo.value)
        assert excinfo.value.path == path

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with open(path, "wb") as fh:
            fh.write(b"NOTALOG!" + b"x" * 32)
        with pytest.raises(CorruptArtifact) as excinfo:
            AppendLog(path).replay()
        assert "magic" in str(excinfo.value)


class TestMemoStore:
    def test_extend_and_load(self, tmp_path):
        store = MemoStore(str(tmp_path / "memo.log"))
        entries = [("vcpu", (1, 2, 3), ("finding",)),
                   ("observation", (4, 5, 0, 7), ())]
        assert store.extend(entries) == 2
        store.close()
        again = MemoStore(str(tmp_path / "memo.log"))
        assert again.load() == entries
        assert len(again) == 2
        assert again.stats() == {"vcpu": 1, "observation": 1}

    def test_duplicates_are_not_rewritten(self, tmp_path):
        store = MemoStore(str(tmp_path / "memo.log"))
        entry = ("vcpu", (1, 2, 3), ())
        assert store.extend([entry]) == 1
        assert store.extend([entry, entry]) == 0
        store.close()
        assert len(MemoStore(str(tmp_path / "memo.log"))) == 1

    def test_unpicklable_record_is_corrupt(self, tmp_path):
        path = str(tmp_path / "memo.log")
        with AppendLog(path) as log:
            log.append(b"not a pickle")
        with pytest.raises(CorruptArtifact):
            MemoStore(path).load()

    def test_preload_memo_roundtrip(self, tmp_path):
        store = MemoStore(str(tmp_path / "memo.log"))
        key = (11, 22, 33)
        store.extend([("vcpu", key, ("stale vcpu",)),
                      ("invariants:epcm", (1, 2, 3), ["bad frame"]),
                      ("unknown-table", (9,), "skipped")])
        memo = CheckMemo()
        assert store.preload_memo(memo) == 2
        assert memo._vcpu[key] == ("stale vcpu",)
        assert memo._families["epcm"][(1, 2, 3)] == ["bad frame"]

    def test_journal_entries_survive_pickling(self, tmp_path):
        # The entries the executor ships are exactly what lands in the
        # store: pickle-roundtrip them the way a shard result would.
        memo = CheckMemo()
        memo.enable_journal()
        memo.journal.append(("observation", (1, 2, 0, 7), ("diff",)))
        drained = pickle.loads(pickle.dumps(memo.drain_journal()))
        store = MemoStore(str(tmp_path / "memo.log"))
        assert store.extend(drained) == 1
        assert memo.drain_journal() == []
