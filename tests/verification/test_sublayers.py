"""Sec. 4.3 — sublayers and transitivity of refinement.

"A benefit of CCAL is that it allows us to create 'sublayers' ... As
refinement is transitive, we can insert a 'low spec' between the
specification (now called the 'high spec') and the code."

The composition checked here, end to end on real executions:

    MIR code  ──(co-simulation: equal final abstract states)──▶  flat spec
    flat spec ──(R / α)──▶  tree spec

so the *code's* final state abstracts to exactly the tree the high spec
computes — code refines the high spec through the intermediate one.
"""

import pytest

from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model.state import absstate_to_flat
from repro.mir.value import mk_u64
from repro.spec import (
    abstract_table, relation_r, tree_empty, tree_map_page, tree_unmap,
)

PAGE = TINY.page_size
LEAF = pte.leaf_flags()


def run_mir_scenario(model, operations):
    """Execute map/unmap operations through the *MIR code* and return
    (root, final flat view, frames created per op)."""
    interp = model.make_interpreter()
    root = interp.call("alloc_frame").value
    created_per_op = []
    for op, page_no in operations:
        before = interp.absstate.get("pt_bitmap")
        if op == "map":
            interp.call("map_page", [root, mk_u64(page_no * PAGE),
                                     mk_u64((page_no % 8) * PAGE),
                                     mk_u64(LEAF)])
        else:
            interp.call("unmap_page", [root, mk_u64(page_no * PAGE)])
        after = interp.absstate.get("pt_bitmap")
        created_per_op.append(
            [TINY.frame_base(model.pool_base + i)
             for i, (a, b) in enumerate(zip(before, after))
             if b and not a])
    flat = absstate_to_flat(interp.absstate, model.config,
                            model.pool_base, model.pool_size)
    return root.value, flat, created_per_op


def run_tree_scenario(operations, created_per_op):
    tree = tree_empty(TINY)
    for (op, page_no), created in zip(operations, created_per_op):
        if op == "map":
            tree = tree_map_page(tree, page_no * PAGE,
                                 (page_no % 8) * PAGE, LEAF, TINY,
                                 new_table_addrs=created)
        else:
            tree = tree_unmap(tree, page_no * PAGE, TINY)
    return tree


SCENARIOS = [
    [("map", 0)],
    [("map", 0), ("map", 1), ("map", 17)],
    [("map", 0), ("unmap", 0)],
    [("map", 0), ("map", 63), ("unmap", 0), ("map", 0)],
    [("map", 5), ("map", 21), ("map", 37), ("unmap", 21), ("map", 22)],
]


class TestTransitivity:
    @pytest.mark.parametrize("operations", SCENARIOS,
                             ids=[str(s) for s in SCENARIOS])
    def test_code_refines_high_spec_through_low_spec(self, model,
                                                     operations):
        root, flat, created = run_mir_scenario(model, operations)
        tree = run_tree_scenario(operations, created)
        # transitive composition: the code's final memory abstracts to
        # exactly the tree the high spec computes.
        assert relation_r(tree, flat, root)
        assert abstract_table(flat, root) == tree

    def test_divergent_high_spec_rejected(self, model):
        operations = [("map", 0), ("map", 1)]
        root, flat, created = run_mir_scenario(model, operations)
        wrong = run_tree_scenario([("map", 0), ("map", 2)], created)
        assert not relation_r(wrong, flat, root)

    def test_addrspace_methods_compose_too(self, model):
        """The object-oriented layer (self pointers) sits on the same
        refinement chain: driving as_map yields a state whose flat view
        abstracts to the tree spec."""
        interp = model.make_interpreter()
        handle = interp.call("as_new").value
        before = interp.absstate.get("pt_bitmap")
        interp.call("as_map", [handle, mk_u64(3 * PAGE),
                               mk_u64(5 * PAGE), mk_u64(LEAF)])
        after = interp.absstate.get("pt_bitmap")
        created = [TINY.frame_base(model.pool_base + i)
                   for i, (a, b) in enumerate(zip(before, after))
                   if b and not a]
        root = interp.memory.read(handle.path).field(0).value
        flat = absstate_to_flat(interp.absstate, model.config,
                                model.pool_base, model.pool_size)
        tree = tree_map_page(tree_empty(TINY), 3 * PAGE, 5 * PAGE, LEAF,
                             TINY, new_table_addrs=created)
        assert relation_r(tree, flat, root)
