"""Adversarial primary-OS strategies (threat model, Sec. 2.2).

"We assume the primary OS to be untrusted and possibly controlled by an
adversary, with the following capabilities: (1) arbitrary memory access
or malicious DMA to peek into or overwrite enclave memory; and (2)
initiating hypercall sequences to try to tamper with the metadata within
RustMonitor and subsequently trigger a hidden bug in memory management."

Each attack uses only the adversary's legitimate verbs (guest-physical
accesses through the EPT, GPT rewrites in its own memory, hypercalls)
and reports whether the monitor contained it.  The noninterference and
invariant benches run these against the correct monitor (all contained)
and the buggy variants (specific attacks break through).
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import (
    EpcmError,
    HypercallError,
    HypervisorError,
    TranslationFault,
)
from repro.hyperenclave import pte
from repro.security.invariants import check_all_invariants


@dataclass
class AttackOutcome:
    """Result of one attack campaign."""

    name: str
    attempts: int = 0
    blocked: int = 0
    leaked: List[str] = field(default_factory=list)

    @property
    def contained(self):
        return not self.leaked

    def __str__(self):
        status = "CONTAINED" if self.contained else "BREACHED"
        return (f"[{status}] {self.name}: {self.blocked}/{self.attempts} "
                f"attempts blocked"
                + (f"; leaks: {self.leaked}" if self.leaked else ""))


# ---------------------------------------------------------------------------
# Capability 1: arbitrary memory access / DMA
# ---------------------------------------------------------------------------


def epc_probe_sweep(monitor) -> AttackOutcome:
    """Read every secure-memory page through the OS EPT."""
    outcome = AttackOutcome("epc-probe-sweep")
    config = monitor.config
    for frame in monitor.layout.secure_frames:
        outcome.attempts += 1
        try:
            value = monitor.primary_os.gpa_read_word(
                config.frame_base(frame))
            outcome.leaked.append(
                f"read {value:#x} from secure frame {frame}")
        except TranslationFault:
            outcome.blocked += 1
    return outcome


def dma_attack(monitor, pattern=0x4141414141414141) -> AttackOutcome:
    """Malicious DMA writes into secure memory."""
    outcome = AttackOutcome("dma-overwrite")
    config = monitor.config
    for frame in monitor.layout.secure_frames:
        outcome.attempts += 1
        try:
            monitor.primary_os.dma_write(config.frame_base(frame), pattern)
            outcome.leaked.append(f"DMA overwrote secure frame {frame}")
        except TranslationFault:
            outcome.blocked += 1
    return outcome


def mapping_attack(monitor, app, victim_eid) -> AttackOutcome:
    """Point the app's GPT at the victim's EPC pages and load through it.

    The classic "mapping attack" (Sec. 2.1): the OS controls the app's
    GPT, so it can *install* any GPA it likes — but the EPT composition
    must still fault when that GPA is secure memory.
    """
    outcome = AttackOutcome("gpt-mapping-attack")
    config = monitor.config
    victim = monitor.enclaves[victim_eid]
    probe_va = 0
    for frame, entry in monitor.epcm.owned_by(victim_eid):
        outcome.attempts += 1
        epc_gpa = config.frame_base(frame)  # guess GPA == HPA
        monitor.primary_os.gpt_map(app.gpt_root_gpa, probe_va, epc_gpa)
        stolen = monitor.primary_os.probe(app, probe_va)
        if stolen is not None:
            value = monitor.phys.read_word(stolen)
            outcome.leaked.append(
                f"mapped EPC frame {frame} at va {probe_va:#x}, "
                f"read {value:#x}")
        else:
            outcome.blocked += 1
        probe_va += config.page_size
    del victim
    return outcome


def gpt_remap_attack(monitor, app, victim_eid) -> AttackOutcome:
    """Remap the app-side marshalling-buffer VA mid-lifecycle.

    The OS may legally repoint *its own* view; the attack is contained
    iff the enclave-side mbuf mapping stays fixed (Sec. 2.1: "the
    mappings of the marshalling buffer are fixed during the entire
    enclave life cycle").
    """
    outcome = AttackOutcome("mbuf-remap-attack")
    victim = monitor.enclaves[victim_eid]
    if victim.mbuf is None:
        return outcome
    before = [(va, victim.gpt.query(va))
              for va in range(victim.mbuf.va_base, victim.mbuf.va_end,
                              monitor.config.page_size)]
    outcome.attempts += 1
    # Repoint the app's mbuf VA at a fresh frame (legal for its own view).
    decoy_gpa = monitor.config.frame_base(
        monitor.primary_os.reserve_data_frame())
    monitor.primary_os.gpt_map(app.gpt_root_gpa,
                               victim.mbuf.va_base + 0, decoy_gpa)
    after = [(va, victim.gpt.query(va))
             for va in range(victim.mbuf.va_base, victim.mbuf.va_end,
                             monitor.config.page_size)]
    if before == after:
        outcome.blocked += 1
    else:
        outcome.leaked.append("enclave-side mbuf mapping changed")
    return outcome


# ---------------------------------------------------------------------------
# Capability 2: hypercall sequences
# ---------------------------------------------------------------------------


def hypercall_fuzz(monitor, seed=0, rounds=200) -> AttackOutcome:
    """Random hypercall sequences with hostile arguments.

    Contained iff every invariant family still holds afterwards; the
    monitor is free to accept well-formed calls (that is its job), so
    acceptance alone is not a breach.
    """
    outcome = AttackOutcome(f"hypercall-fuzz(seed={seed})")
    rng = random.Random(seed)
    config = monitor.config
    page = config.page_size
    live_eids = list(monitor.enclaves)
    for _ in range(rounds):
        outcome.attempts += 1
        choice = rng.randrange(6)
        try:
            if choice == 0:
                eid = monitor.hc_create(
                    elrange_base=rng.randrange(0, config.va_space, page),
                    elrange_size=rng.choice([page, 2 * page, 4 * page]),
                    mbuf_va=rng.randrange(0, config.va_space, page),
                    mbuf_pa=rng.randrange(0, config.phys_bytes, page),
                    mbuf_size=page)
                live_eids.append(eid)
            elif choice == 1 and live_eids:
                monitor.hc_add_page(
                    rng.choice(live_eids),
                    va=rng.randrange(0, config.va_space, page),
                    src_gpa=rng.randrange(0, config.phys_bytes, page))
            elif choice == 2 and live_eids:
                monitor.hc_init(rng.choice(live_eids))
            elif choice == 3 and live_eids:
                eid = rng.choice(live_eids)
                monitor.hc_enter(eid)
                monitor.hc_exit(eid)
            elif choice == 4 and live_eids:
                eid = rng.choice(live_eids)
                monitor.hc_destroy(eid)
                live_eids.remove(eid)
            else:
                monitor.hc_add_page(
                    9999, va=0, src_gpa=0)  # dangling enclave id
        except (HypercallError, HypervisorError, EpcmError,
                TranslationFault):
            outcome.blocked += 1
    report = check_all_invariants(monitor)
    if not report.ok:
        outcome.leaked.extend(
            f"invariant broken after fuzzing: {line}"
            for line in str(report).splitlines())
    return outcome


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def run_standard_attack_suite(monitor, app, victim_eid,
                              seed=0) -> Dict[str, AttackOutcome]:
    """All attacks against one victim; key by attack name."""
    outcomes = {}
    for outcome in (
            epc_probe_sweep(monitor),
            dma_attack(monitor),
            mapping_attack(monitor, app, victim_eid),
            gpt_remap_attack(monitor, app, victim_eid),
            hypercall_fuzz(monitor, seed=seed)):
        outcomes[outcome.name] = outcome
    return outcomes
