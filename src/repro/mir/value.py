"""The mirlight value domain.

The paper's object-view domain (Sec. 3.2)::

    value := int                  Integer values
             ...                  Other atomic values
             (int, list value)    Structs and Enums

plus the three pointer kinds of Sec. 3.4:

* :class:`PathPtr` — a concrete pointer into object memory (case 1:
  pointers passed down to lower layers),
* :class:`TrustedPtr` — a pointer whose payload is a getter/setter pair
  over the abstract state (case 2: pointers produced by the bottom,
  trusted layer, e.g. into physical page-table memory),
* :class:`RDataPtr` — an opaque handle consisting of an identifier and a
  list of numerical indices (case 3: pointers returned by a middle layer;
  the semantics provide no way to read or write through them).

Values are immutable.  Updating a field of an aggregate produces a new
aggregate (see :meth:`Aggregate.with_field`); the memory module composes
these functional updates along a path so that "assignment ... only
changes at the assigned location" (the paper's axiomatisation).
"""

from dataclasses import dataclass, field
from typing import Callable, Tuple

from repro.errors import MirTypeError
from repro.mir.types import IntTy, U64, USIZE


class Value:
    """Base class of all runtime values."""

    def expect_int(self, context="value"):
        """This value as an IntValue, or a type error."""
        if not isinstance(self, IntValue):
            raise MirTypeError(f"{context}: expected integer, got {self!r}")
        return self

    def expect_bool(self, context="value"):
        """This value as a BoolValue, or a type error."""
        if not isinstance(self, BoolValue):
            raise MirTypeError(f"{context}: expected bool, got {self!r}")
        return self

    def expect_aggregate(self, context="value"):
        """This value as an Aggregate, or a type error."""
        if not isinstance(self, Aggregate):
            raise MirTypeError(f"{context}: expected aggregate, got {self!r}")
        return self


@dataclass(frozen=True)
class IntValue(Value):
    """A machine integer carrying its type for wrap-around arithmetic."""

    value: int
    ty: IntTy = U64

    def __post_init__(self):
        if not self.ty.contains(self.value):
            raise MirTypeError(
                f"integer {self.value} out of range for {self.ty}"
            )

    @property
    def as_unsigned(self):
        """The two's-complement bit pattern as a nonnegative int."""
        return self.value % self.ty.modulus

    def __str__(self):
        return f"{self.value}{self.ty}"


@dataclass(frozen=True)
class BoolValue(Value):
    """A boolean runtime value."""
    value: bool

    def __str__(self):
        return "true" if self.value else "false"


@dataclass(frozen=True)
class UnitValue(Value):
    """The unit runtime value."""
    def __str__(self):
        return "()"


@dataclass(frozen=True)
class CharValue(Value):
    """A character runtime value."""
    value: str

    def __str__(self):
        return repr(self.value)


@dataclass(frozen=True)
class StrValue(Value):
    """String constants; in the corpus these only feed panic messages."""

    value: str

    def __str__(self):
        return repr(self.value)


@dataclass(frozen=True)
class FnValue(Value):
    """A function item (MIR models fn items as zero-sized constants)."""

    name: str

    def __str__(self):
        return f"fn {self.name}"


@dataclass(frozen=True)
class Aggregate(Value):
    """A struct, enum, tuple, or array: ``(discriminant, fields)``.

    Structs/tuples/arrays use discriminant 0; enum variants use their
    variant index.  This uniform shape is what lets the evaluation rules
    project fields directly "rather than resorting to complicated field
    offset logic" (Sec. 3.2).
    """

    discriminant: int
    fields: Tuple[Value, ...]

    def field(self, index):
        """Project out field ``index``."""
        if not 0 <= index < len(self.fields):
            raise MirTypeError(
                f"field index {index} out of range for aggregate with "
                f"{len(self.fields)} fields"
            )
        return self.fields[index]

    def with_field(self, index, new_value):
        """Functional field update: a new aggregate differing at ``index``."""
        if not 0 <= index < len(self.fields):
            raise MirTypeError(
                f"field index {index} out of range for aggregate with "
                f"{len(self.fields)} fields"
            )
        fields = self.fields[:index] + (new_value,) + self.fields[index + 1:]
        return Aggregate(self.discriminant, fields)

    def with_discriminant(self, discriminant):
        return Aggregate(discriminant, self.fields)

    def __len__(self):
        return len(self.fields)

    def __str__(self):
        inner = ", ".join(str(f) for f in self.fields)
        return f"#{self.discriminant}({inner})"


# ---------------------------------------------------------------------------
# Pointer values (Sec. 3.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathPtr(Value):
    """Case 1: a concrete pointer — a path into object memory.

    Used when a caller allocates an object and passes its address down to
    a lower layer; the caller owns the object so proofs about it may see
    the concrete representation.
    """

    path: "repro.mir.path.Path"  # noqa: F821 — documented forward ref

    def __str__(self):
        return f"&{self.path}"


@dataclass(frozen=True)
class TrustedPtr(Value):
    """Case 2: a trusted pointer from the bottom layer.

    "Instead of containing a memory path, trusted pointer values contain
    getter/setter functions that can access the abstract state, and the
    semantics of a pointer write is to call the setter function and update
    the state accordingly." (Sec. 3.4)

    ``getter(absstate) -> Value`` and ``setter(absstate, Value) ->
    absstate``.  ``origin`` names the trusted primitive that forged the
    pointer, for diagnostics and the pointer-classification bench.
    """

    origin: str
    getter: Callable = field(compare=False)
    setter: Callable = field(compare=False)

    def __str__(self):
        return f"<trusted:{self.origin}>"


@dataclass(frozen=True)
class RDataPtr(Value):
    """Case 3: an opaque handle to data owned by a (non-bottom) lower layer.

    "the payload inside the pointer value is just an identifier and a list
    of numerical indices. Our MIR semantics do not provide any way to
    read/write through an RData pointer." (Sec. 3.4)

    The interpreter raises :class:`~repro.errors.EncapsulationViolation`
    on any dereference unless the executing function belongs to
    ``owner_layer`` — which is precisely the refinement boundary: inside
    the owner layer, code is verified against the concrete memory model;
    outside, the handle is inert.
    """

    owner_layer: str
    ident: str
    indices: Tuple[int, ...] = ()

    def __str__(self):
        idx = "".join(f"[{i}]" for i in self.indices)
        return f"<rdata:{self.owner_layer}:{self.ident}{idx}>"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

_UNIT = UnitValue()
_TRUE = BoolValue(True)
_FALSE = BoolValue(False)


def unit():
    return _UNIT


def mk_int(value, ty=U64):
    """Make an integer value, wrapping into the type's range."""
    return IntValue(ty.wrap(value), ty)


def mk_usize(value):
    return mk_int(value, USIZE)


def mk_u64(value):
    return mk_int(value, U64)


def mk_bool(value):
    return _TRUE if value else _FALSE


def mk_tuple(*values):
    return Aggregate(0, tuple(values))


def mk_struct(*fields):
    return Aggregate(0, tuple(fields))


def mk_variant(discriminant, *fields):
    return Aggregate(discriminant, tuple(fields))


def mk_array(values):
    return Aggregate(0, tuple(values))


# Rust's Option/Result encoded the way rustc lays them out in MIR:
# discriminant 0 = None/Ok's position per std (None=0, Some=1; Ok=0, Err=1).
OPTION_NONE = 0
OPTION_SOME = 1
RESULT_OK = 0
RESULT_ERR = 1


def mk_none():
    return Aggregate(OPTION_NONE, ())


def mk_some(value):
    return Aggregate(OPTION_SOME, (value,))


def mk_ok(value=None):
    return Aggregate(RESULT_OK, (value if value is not None else _UNIT,))


def mk_err(value=None):
    return Aggregate(RESULT_ERR, (value if value is not None else _UNIT,))


def is_none(value):
    return isinstance(value, Aggregate) and value.discriminant == OPTION_NONE


def is_some(value):
    return isinstance(value, Aggregate) and value.discriminant == OPTION_SOME
