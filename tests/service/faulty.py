"""Worker functions that fail on purpose (importable by forked workers).

The supervisor tests ship these to pool workers by ``module:attr``
path, exactly as real campaign units travel.  Failure is coordinated
through marker files because the functions run in other processes:
a unit carries the marker path, and the file's content counts how many
times the victim has died so far.
"""

import os


def _bump(marker: str) -> int:
    """Increment the on-disk death counter; returns the prior count."""
    count = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            count = int(fh.read() or 0)
    with open(marker, "w") as fh:
        fh.write(str(count + 1))
        fh.flush()
        os.fsync(fh.fileno())
    return count


def flaky_unit(unit):
    """SIGKILLs its own worker until ``deaths`` kills have happened."""
    if unit.get("victim") and _bump(unit["marker"]) < unit["deaths"]:
        os.kill(os.getpid(), 9)
    return unit["value"] * 2


def raising_unit(unit):
    """Raises a task-level error (the pool survives) for the victim."""
    if unit.get("victim"):
        raise RuntimeError("task boom")
    return unit["value"] * 2


def slow_unit(unit):
    """Sleeps forever for the victim (the shard-timeout test)."""
    if unit.get("victim") and _bump(unit["marker"]) < unit["deaths"]:
        import time
        time.sleep(3600)
    return unit["value"] * 2
