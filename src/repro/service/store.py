"""Durable state: atomic snapshots and a CRC-framed append-only log.

Two persistence primitives cover everything the orchestrator needs,
mirroring the two shapes of its state:

* :func:`atomic_write` — whole-file snapshots (campaign checkpoints,
  provenance bundles, finished traces).  The bytes land in a temp file
  in the same directory, are fsynced, and are renamed over the target;
  POSIX rename atomicity means a reader can only ever observe the old
  complete file or the new complete file, never a torn one.
* :class:`AppendLog` — incrementally grown state (the cross-run memo
  tables).  Records are length-prefixed and CRC32-framed; a crash can
  only tear the *final* record, and :meth:`AppendLog.replay` detects
  that torn tail and recovers the intact prefix — whereas corruption
  *inside* the prefix (bit rot, a concurrent writer) is not a crash
  signature and raises :class:`~repro.errors.CorruptArtifact`.

:class:`MemoStore` builds the cross-run fingerprint/verdict memo on
top of the log: entries are ``(table, key, value)`` pickles keyed by
the engine's existing blake2b fingerprints, appended as campaigns
discover them and replayed to warm-start the next run.
"""

import os
import pickle
import struct
import tempfile
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CorruptArtifact

#: Log file magic + format version; bumping the version invalidates
#: old logs loudly instead of misparsing them.
LOG_MAGIC = b"RSLG0001"

_FRAME = struct.Struct("<II")      # payload length, CRC32(payload)


def atomic_write(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` via temp-file + fsync + rename.

    The temp file lives in the target's directory (rename must not
    cross filesystems to stay atomic) and is cleaned up on any
    failure, so a crash mid-write leaves the previous ``path`` content
    untouched and at worst a stray ``.tmp`` file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(dir=directory,
                                     prefix=os.path.basename(path) + ".",
                                     suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str, text: str) -> str:
    """:func:`atomic_write` for str payloads (UTF-8)."""
    return atomic_write(path, text.encode("utf-8"))


class AppendLog:
    """An append-only record log that survives ``kill -9`` mid-append.

    Every record is framed ``<length><crc32><payload>``; appends are
    flushed and fsynced before :meth:`append` returns, so an
    acknowledged record is durable.  :meth:`replay` yields payloads in
    append order, truncating a torn tail (the only damage a crash can
    inflict on an append-only file) after verifying everything before
    it — any *non*-tail damage raises
    :class:`~repro.errors.CorruptArtifact`.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing ------------------------------------------------------------

    def _ensure_open(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(LOG_MAGIC)
                self._fh.flush()
                os.fsync(self._fh.fileno())
        return self._fh

    def append(self, payload: bytes):
        """Durably append one record (flushed + fsynced)."""
        fh = self._ensure_open()
        fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    # -- reading ------------------------------------------------------------

    def replay(self) -> List[bytes]:
        """All intact payloads, oldest first; recovers from a torn tail.

        A short or checksum-failing *final* record is the signature of
        a crash mid-append: the file is truncated back to the last
        intact record (so the next append continues cleanly) and the
        prefix is returned.  A bad record with valid data *after* it
        cannot be crash damage and raises
        :class:`~repro.errors.CorruptArtifact`.
        """
        if not os.path.exists(self.path):
            return []
        self.close()
        payloads: List[bytes] = []
        with open(self.path, "rb") as fh:
            blob = fh.read()
        if not blob:
            return []
        if not blob.startswith(LOG_MAGIC):
            raise CorruptArtifact(
                self.path,
                f"bad magic {blob[:8]!r} (expected {LOG_MAGIC!r}) — "
                f"not an append log, or written by a different version")
        offset = len(LOG_MAGIC)
        good_end = offset
        torn = None                  # (reason, damaged-record end)
        while offset < len(blob):
            header = blob[offset:offset + _FRAME.size]
            if len(header) < _FRAME.size:
                torn = ("truncated record header", len(blob))
                break
            length, crc = _FRAME.unpack(header)
            record_end = offset + _FRAME.size + length
            payload = blob[offset + _FRAME.size:record_end]
            if len(payload) < length:
                torn = (f"truncated payload ({len(payload)} of "
                        f"{length} bytes)", record_end)
                break
            if zlib.crc32(payload) != crc:
                torn = ("payload CRC mismatch", record_end)
                break
            payloads.append(payload)
            offset = good_end = record_end
        if torn is not None:
            reason, record_end = torn
            if record_end < len(blob):
                # Bytes *after* the damaged record: an interrupted
                # append can only tear the final record, so damage
                # followed by more data is not a crash signature —
                # refuse rather than silently drop the unreachable
                # records behind it.
                raise CorruptArtifact(
                    self.path,
                    f"{reason} at offset {offset} with "
                    f"{len(blob) - record_end} byte(s) of log beyond "
                    f"it — mid-log corruption, not a torn tail")
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
        return payloads

    def records(self) -> Iterable[bytes]:
        """Alias of :meth:`replay` (iteration-friendly name)."""
        return self.replay()


# ---------------------------------------------------------------------------
# The cross-run memo store
# ---------------------------------------------------------------------------


class MemoStore:
    """Persistent fingerprint/verdict memo tables over an append log.

    Entries are ``(table, key, value)`` triples — ``table`` names the
    memo ("invariants:<family>", "vcpu", "observation", "verdict"),
    ``key`` is the engine's existing fingerprint tuple, ``value`` the
    memoised result.  Campaigns append new entries as workers discover
    them; the next campaign replays the log and preloads its in-process
    :class:`~repro.engine.memo.CheckMemo` before forking workers, so a
    warm store turns repeat campaigns into mostly cache hits.
    """

    def __init__(self, path: str):
        self.log = AppendLog(path)
        self._seen: set = set()
        self._entries: List[Tuple[str, object, object]] = []
        self._loaded = False

    @property
    def path(self) -> str:
        return self.log.path

    def load(self) -> List[Tuple[str, object, object]]:
        """Replay the log into memory (idempotent); returns entries."""
        if not self._loaded:
            for payload in self.log.replay():
                try:
                    table, key, value = pickle.loads(payload)
                except Exception as exc:
                    raise CorruptArtifact(
                        self.path,
                        f"memo record does not unpickle: {exc}") from None
                if (table, repr(key)) not in self._seen:
                    self._seen.add((table, repr(key)))
                    self._entries.append((table, key, value))
            self._loaded = True
        return list(self._entries)

    def __len__(self) -> int:
        self.load()
        return len(self._entries)

    def extend(self, entries: Iterable[Tuple[str, object, object]]) -> int:
        """Durably append entries not already in the store; returns the
        number actually written (duplicates are skipped, so repeated
        campaigns do not grow the log without learning anything)."""
        self.load()
        written = 0
        for table, key, value in entries:
            mark = (table, repr(key))
            if mark in self._seen:
                continue
            self._seen.add(mark)
            self._entries.append((table, key, value))
            self.log.append(pickle.dumps((table, key, value),
                                         protocol=pickle.HIGHEST_PROTOCOL))
            written += 1
        return written

    def close(self):
        self.log.close()

    # -- CheckMemo bridging -------------------------------------------------

    def preload_memo(self, memo) -> int:
        """Warm a :class:`~repro.engine.memo.CheckMemo` from the store;
        returns the number of entries installed."""
        return memo.preload(self.load())

    def stats(self) -> Dict[str, int]:
        """Entry counts per table (for reports and the CLI)."""
        self.load()
        counts: Dict[str, int] = {}
        for table, _key, _value in self._entries:
            counts[table] = counts.get(table, 0) + 1
        return counts
