"""FunctionBuilder / ProgramBuilder tests, especially the lifting pass."""

import pytest

from repro.errors import MirError
from repro.mir.ast import BinOp, Deref, place
from repro.mir.builder import FunctionBuilder, ProgramBuilder
from repro.mir.types import U64, UNIT
from repro.mir.value import mk_u64


class TestBlockDiscipline:
    def test_statement_after_terminator_rejected(self):
        fb = FunctionBuilder("f")
        fb.ret()
        with pytest.raises(MirError, match="outside any block"):
            fb.assign("x", 1)

    def test_label_before_terminating_rejected(self):
        fb = FunctionBuilder("f")
        with pytest.raises(MirError, match="not terminated"):
            fb.label("bb9")

    def test_duplicate_label_rejected(self):
        fb = FunctionBuilder("f")
        fb.goto("bb0")  # seals bb0... jumping to itself
        with pytest.raises(MirError, match="duplicate block"):
            fb.label("bb0")
            fb.ret()

    def test_finish_with_open_block_rejected(self):
        fb = FunctionBuilder("f")
        fb.assign("x", 1)
        with pytest.raises(MirError, match="open block"):
            fb.finish()

    def test_finish_twice_rejected(self):
        fb = FunctionBuilder("f")
        fb.ret()
        fb.finish()
        with pytest.raises(MirError, match="twice"):
            fb.finish()

    def test_missing_entry_rejected(self):
        fb = FunctionBuilder("f")
        fb._current_label = "bb7"  # start on a non-entry label
        fb.ret()
        with pytest.raises(MirError, match="bb0"):
            fb.finish()

    def test_call_opens_continuation_block(self):
        pb = ProgramBuilder()
        fb = pb.function("g", [], U64)
        fb.ret(1)
        fb.finish()
        fb = pb.function("f", [], U64)
        fb.call("_1", "g", [])
        fb.binop("_0", BinOp.ADD, "_1", 1)  # lands in continuation block
        fb.ret()
        function = fb.finish()
        assert len(function.blocks) == 2


class TestLiftingPass:
    def test_plain_vars_are_temporaries(self):
        fb = FunctionBuilder("f", ["a"])
        fb.binop("x", BinOp.ADD, "a", 1)
        fb.ret("x")
        function = fb.finish()
        assert function.locals_ == frozenset()

    def test_ref_target_is_local(self):
        fb = FunctionBuilder("f")
        fb.assign("x", 1)
        fb.ref("p", "x")
        fb.ret()
        function = fb.finish()
        assert function.locals_ == frozenset({"x"})

    def test_address_of_target_is_local(self):
        fb = FunctionBuilder("f")
        fb.assign("x", 1)
        fb.address_of("p", "x")
        fb.ret()
        assert fb.finish().locals_ == frozenset({"x"})

    def test_ref_through_deref_does_not_force_local(self):
        """&(*p).0 re-borrows through p: p itself stays a temporary."""
        fb = FunctionBuilder("f", ["p"])
        fb.ref("q", place("p").deref().field(0))
        fb.ret()
        assert fb.finish().locals_ == frozenset()

    def test_ref_to_field_forces_whole_base_local(self):
        fb = FunctionBuilder("f")
        fb.tuple_("t", 1, 2)
        fb.ref("p", place("t").field(0))
        fb.ret()
        assert fb.finish().locals_ == frozenset({"t"})


class TestOperandCoercion:
    def test_int_uses_default_ty(self):
        from repro.mir.types import U8
        fb = FunctionBuilder("f", default_int_ty=U8)
        operand = fb.operand(5)
        assert operand.value.ty == U8

    def test_bool_and_value_and_place(self):
        fb = FunctionBuilder("f")
        assert fb.operand(True).value.value is True
        assert fb.operand(mk_u64(3)).value.value == 3
        assert fb.operand(place("x")).place == place("x")
        assert fb.operand("x").place == place("x")

    def test_uncoercible_rejected(self):
        fb = FunctionBuilder("f")
        with pytest.raises(MirError):
            fb.operand(object())


class TestProgramBuilder:
    def test_function_registration(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], UNIT)
        fb.ret()
        fb.finish()
        assert "f" in pb.build().functions

    def test_globals(self):
        pb = ProgramBuilder()
        pb.global_("G", mk_u64(1))
        assert pb.build().globals_["G"].value == 1

    def test_layer_and_attrs_preserved(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], UNIT, layer="PtMap",
                         attrs=("unsafe_fn",))
        fb.ret()
        function = fb.finish()
        assert function.layer == "PtMap"
        assert function.attrs == ("unsafe_fn",)
