"""Multi-vCPU concurrency plane: deterministic scheduling, systematic
interleaving exploration, lock discipline, and TLB shootdown checking.

The sequential model checks "every hypercall preserves the invariants";
this package checks the quantifier the production monitor actually
lives under: *every interleaving of hypercalls across vCPUs*.  The
pieces:

* :mod:`~repro.concurrency.scheduler` — cooperative token-passing
  scheduler; every execution is a pure function of a small replayable
  :class:`~repro.concurrency.scheduler.Schedule`.
* :mod:`~repro.concurrency.locks` — the per-structure lock model and
  the three-rule discipline checker.
* :mod:`~repro.concurrency.shootdown` — the TLB shootdown protocol and
  the stale-translation detector.
* :mod:`~repro.concurrency.explorer` — bounded-preemption BFS with a
  persistent-set-style reduction over the schedule space.

Campaign drivers that tie these to the invariant families, the
noninterference check, and PR 1's fault plane live in
:mod:`repro.faults.campaign`.
"""

from repro.concurrency.explorer import (
    ExplorationResult,
    Violation,
    explore,
    explore_batched,
    replay,
    result_violations,
)
from repro.concurrency.locks import (
    LOCK_ENCLAVES,
    LOCK_EPCM,
    LOCK_FRAMES,
    LockManager,
    enclave_lock,
    lock_rank,
    order_locks,
)
from repro.concurrency.arena import (
    FiberArena,
    process_arena,
    reset_process_arena,
)
from repro.concurrency.scheduler import (
    BRANCH_KINDS,
    ENV_ENGINE,
    SCHED_STATS,
    VCPU_CRASH_SITE,
    Decision,
    DeterministicScheduler,
    RunResult,
    Schedule,
    Task,
    YieldPoint,
    acquire_locks,
    active_scheduler,
    current_task,
    current_vid,
    guard_mutation,
    installed,
    record_phys_write,
    release_locks,
    resolve_engine,
    suspended,
    yield_point,
)
from repro.concurrency.shootdown import detect_stale_translations, tlb_shootdown
from repro.concurrency.snapshot import (
    SnapshotPlan,
    SnapshotTree,
    extended_gate_enabled,
    locality_key,
    prefix_cache_enabled,
    process_tree,
    reset_process_tree,
)

__all__ = [
    "BRANCH_KINDS",
    "ENV_ENGINE",
    "SCHED_STATS",
    "VCPU_CRASH_SITE",
    "Decision",
    "DeterministicScheduler",
    "ExplorationResult",
    "FiberArena",
    "LOCK_ENCLAVES",
    "LOCK_EPCM",
    "LOCK_FRAMES",
    "LockManager",
    "RunResult",
    "Schedule",
    "SnapshotPlan",
    "SnapshotTree",
    "Task",
    "Violation",
    "YieldPoint",
    "acquire_locks",
    "active_scheduler",
    "current_task",
    "current_vid",
    "detect_stale_translations",
    "enclave_lock",
    "explore",
    "explore_batched",
    "extended_gate_enabled",
    "guard_mutation",
    "installed",
    "lock_rank",
    "locality_key",
    "order_locks",
    "prefix_cache_enabled",
    "process_arena",
    "process_tree",
    "record_phys_write",
    "reset_process_arena",
    "reset_process_tree",
    "release_locks",
    "replay",
    "resolve_engine",
    "result_violations",
    "suspended",
    "tlb_shootdown",
    "yield_point",
]
