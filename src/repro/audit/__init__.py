"""Evaluation tooling: line counting and the unsafe-block audit (Sec. 6).

* :mod:`repro.audit.loc` — a ``coqwc``-style counter (code / comment /
  blank / docstring split) over Python sources and mirlight dumps,
  feeding the Table 1 reproduction,
* :mod:`repro.audit.unsafe_scan` — the Sec. 6.1 audit: find every
  ``unsafe`` block in a Rust source tree and classify it (indirect call
  / raw-pointer dereference / inline assembly / slice construction ...),
* :mod:`repro.audit.rust_corpus` — a synthesized Rust source mirror of
  HyperEnclave's unsafe-block distribution (105 blocks: 74 indirect
  calls, 13 raw-pointer dereferences, 18 others; none touching page
  tables) for the scanner to audit, since the original tree is not
  redistributable here.
"""

from repro.audit.loc import LocCount, count_source, count_package, count_text
from repro.audit.unsafe_scan import (
    UnsafeBlock,
    UnsafeCategory,
    scan_source,
    scan_tree,
    classify_summary,
    blocks_touching_page_tables,
)
from repro.audit.rust_corpus import generate_rust_corpus, CORPUS_DISTRIBUTION

__all__ = [
    "LocCount", "count_source", "count_package", "count_text",
    "UnsafeBlock", "UnsafeCategory", "scan_source", "scan_tree",
    "classify_summary", "blocks_touching_page_tables",
    "generate_rust_corpus", "CORPUS_DISTRIBUTION",
]
