"""Layer 0: the trusted layer (Sec. 4.2) and its abstract state.

"At the very bottom of our layers is the Trusted Layer. It contains the
specifications of functions that will not be verified ... it also
includes the primitives for interacting with the HyperEnclave global
state, such as primitives that update page table entries."

Abstract-state fields:

* ``pt_words``  — ZMap word-index → u64: the flat array representing the
  physical memory of the frame area,
* ``pt_bitmap`` — tuple of bools: the frame-allocation bitmap,
* ``epcm``      — ZMap epc-index → (state, owner, va) int triples.

Trusted primitives exposed to the MIR code:

* ``phys_read_word(addr)`` / ``phys_write_word(addr, value)`` — the
  paper's "few unsafe Rust functions that cast raw integers into
  pointers [ascribed] specifications" (Sec. 3.4 case 2),
* ``alloc_frame_raw()`` — first-fit bitmap claim (zeroing is *verified
  code*, not trusted: see ``zero_frame`` in the stateful module),
* ``epcm_get(index)`` / ``epcm_set(index, state, owner, va)``,
* ``pt_pool_base()`` / ``pt_pool_size()`` — layout constants.
"""

from repro.ccal.absstate import AbsState
from repro.ccal.spec import Spec, state_spec, pure_spec
from repro.ccal.zmap import ZMap
from repro.errors import SpecError, SpecPreconditionError
from repro.hyperenclave.constants import WORD_BYTES
from repro.mir.value import mk_bool, mk_int, mk_tuple, mk_u64, unit
from repro.mir.types import U64

# EPCM page-state encoding used at the MIR level (retrofit rule 3 turned
# the Rust enum into plain integer constants).
EPCM_FREE = 0
EPCM_SECS = 1
EPCM_REG = 2
EPCM_PT = 3


def make_initial_absstate(config, pool_base, pool_size, epc_size=0):
    """The boot abstract state: empty pool, empty EPCM."""
    state = AbsState()
    state = state.with_field("pt_words", ZMap(default=0), owner="TrustedLayer")
    state = state.with_field("pt_bitmap", (False,) * pool_size,
                             owner="TrustedLayer")
    state = state.with_field("epcm", ZMap(default=(EPCM_FREE, 0, 0)),
                             owner="TrustedLayer")
    return state


# ---------------------------------------------------------------------------
# AbsState <-> FlatPtState bridging (used by the code-proof harness)
# ---------------------------------------------------------------------------


def absstate_to_flat(state, config, pool_base, pool_size):
    """Project the MIR-side abstract state into a FlatPtState."""
    from repro.spec.flat import FlatPtState
    return FlatPtState(config=config, pool_base=pool_base,
                       pool_size=pool_size, words=state.get("pt_words"),
                       bitmap=state.get("pt_bitmap"))


def flat_to_absstate(flat_state, template):
    """Write a FlatPtState's fields back into an abstract state."""
    state = template.set("pt_words", flat_state.words)
    return state.set("pt_bitmap", flat_state.bitmap)


# ---------------------------------------------------------------------------
# Trusted primitives
# ---------------------------------------------------------------------------


def trusted_primitives(config, pool_base, pool_size, epc_size):
    """The layer-0 Spec list for a given geometry."""

    pool_lo = config.frame_base(pool_base)
    pool_hi = config.frame_base(pool_base + pool_size)

    def _addr_in_pool(addr):
        return pool_lo <= addr < pool_hi and addr % WORD_BYTES == 0

    def phys_read_word(args, state):
        (addr,) = args
        raw = addr.expect_int("phys_read_word").as_unsigned
        if not _addr_in_pool(raw):
            raise SpecPreconditionError(
                f"phys_read_word({raw:#x}) outside the frame area")
        return mk_u64(state.get("pt_words").get(raw // WORD_BYTES)), state

    def phys_write_word(args, state):
        addr, value = args
        raw = addr.expect_int("phys_write_word").as_unsigned
        if not _addr_in_pool(raw):
            raise SpecPreconditionError(
                f"phys_write_word({raw:#x}) outside the frame area")
        words = state.get("pt_words").set(
            raw // WORD_BYTES, value.expect_int("value").as_unsigned)
        return unit(), state.set("pt_words", words)

    def alloc_frame_raw(args, state):
        bitmap = state.get("pt_bitmap")
        for offset, used in enumerate(bitmap):
            if not used:
                new_bitmap = bitmap[:offset] + (True,) + bitmap[offset + 1:]
                return (mk_u64(pool_base + offset),
                        state.set("pt_bitmap", new_bitmap))
        raise SpecPreconditionError("alloc_frame_raw: pool exhausted")

    def dealloc_frame_raw(args, state):
        (frame,) = args
        raw = frame.expect_int("frame").as_unsigned
        offset = raw - pool_base
        bitmap = state.get("pt_bitmap")
        if not 0 <= offset < pool_size or not bitmap[offset]:
            raise SpecPreconditionError(
                f"dealloc_frame_raw({raw}): not allocated")
        new_bitmap = bitmap[:offset] + (False,) + bitmap[offset + 1:]
        return unit(), state.set("pt_bitmap", new_bitmap)

    def epcm_get(args, state):
        (index,) = args
        raw = index.expect_int("epcm index").as_unsigned
        if raw >= epc_size:
            raise SpecPreconditionError(f"epcm_get({raw}) out of range")
        page_state, owner, va = state.get("epcm").get(raw)
        return mk_tuple(mk_u64(page_state), mk_u64(owner), mk_u64(va)), state

    def epcm_set(args, state):
        index, page_state, owner, va = args
        raw = index.expect_int("epcm index").as_unsigned
        if raw >= epc_size:
            raise SpecPreconditionError(f"epcm_set({raw}) out of range")
        triple = (page_state.expect_int("state").as_unsigned,
                  owner.expect_int("owner").as_unsigned,
                  va.expect_int("va").as_unsigned)
        return unit(), state.set("epcm", state.get("epcm").set(raw, triple))

    def epcm_size(args, state):
        return mk_u64(epc_size), state

    return [
        Spec("phys_read_word", phys_read_word, layer="TrustedLayer",
             doc="load through a trusted pointer into the frame area",
             ptr_kind="trusted"),
        Spec("phys_write_word", phys_write_word, layer="TrustedLayer",
             doc="store through a trusted pointer into the frame area",
             ptr_kind="trusted"),
        Spec("alloc_frame_raw", alloc_frame_raw, layer="TrustedLayer",
             doc="first-fit bitmap frame claim"),
        Spec("dealloc_frame_raw", dealloc_frame_raw, layer="TrustedLayer"),
        Spec("epcm_get", epcm_get, layer="TrustedLayer"),
        Spec("epcm_set", epcm_set, layer="TrustedLayer"),
        Spec("epcm_size", epcm_size, layer="TrustedLayer"),
        pure_spec("pt_pool_base", lambda args: mk_u64(pool_base),
                  layer="TrustedLayer"),
        pure_spec("pt_pool_size", lambda args: mk_u64(pool_size),
                  layer="TrustedLayer"),
    ]
