"""Crash-consistent hypercalls: snapshot-rollback transactions.

The paper's Sec. 5.2 claim quantifies over *every* hypercall — including
the ones that die halfway through.  ``hc_add_page`` is five mutations
long (EPCM allocate, frame copy, GPT map, EPT map, measure); if the
frame pool runs dry between the GPT map and the EPT map, the naive
monitor leaves a mapping with no backing translation and an EPCM entry
nothing points at.  The :func:`transactional` decorator makes every
hypercall atomic: capture a checkpoint on entry, and on *any* failure —
validation, resource exhaustion, or an injected fault — restore the
checkpoint before re-raising, so the observable state machine only ever
moves in whole hypercalls.

Two rollback strategies, same contract:

* **Sequential** (no scheduler installed): a full value snapshot of
  everything a hypercall can touch — physical memory (which
  transitively holds every page table), the allocator bitmap, the EPCM
  array, the per-enclave metadata, every vCPU, and the monitor's
  scalars.  Cheap on the simulated machine.
* **Concurrent** (running as a scheduled vCPU task): a whole-monitor
  snapshot would capture — and on rollback clobber — *other vCPUs'*
  in-flight writes.  Instead each task keeps a :class:`TxnScope`: a
  first-write-wins undo journal of physical words (fed by the
  ``phys.write`` hooks), lazy snapshots of each lock-guarded structure
  taken at acquire time (2PL guarantees nobody else touches it until
  release), and a capture of the task's own CPU-local state.  Rolling
  back undoes exactly the aborted vCPU's footprint.  Remote TLB flushes
  already sent by a shootdown are deliberately not undone — flushing a
  cache is always safe, and real IPIs cannot be recalled.

Restoration runs with the fault plane and the scheduler hooks
suspended: rolling back must not itself trip a ``phys.write`` injection
or hand the CPU away mid-undo.
"""

import functools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.errors import (
    FaultInjected,
    HypercallAborted,
    HypercallError,
    HypervisorError,
)
from repro.faults import plane as faults


@dataclass
class MonitorCheckpoint:
    """A full value snapshot of the mutable monitor state."""

    phys: Dict[int, int]
    allocator: Tuple[bool, ...]
    epcm: Tuple
    enclaves: Dict[int, object]                  # eid -> Enclave (by ref)
    enclave_meta: Dict[int, Tuple]               # eid -> mutable fields
    next_eid: int
    cpus: Tuple                                  # CpuLocal.snapshot() each


def capture(monitor) -> MonitorCheckpoint:
    """Checkpoint everything a hypercall may mutate."""
    return MonitorCheckpoint(
        phys=monitor.phys.checkpoint(),
        allocator=monitor.pt_allocator.snapshot(),
        epcm=monitor.epcm.snapshot(),
        enclaves=dict(monitor.enclaves),
        enclave_meta={
            eid: (enclave.state, enclave.saved_context,
                  enclave.measurement)
            for eid, enclave in monitor.enclaves.items()},
        next_eid=monitor._next_eid,
        cpus=tuple(cpu.snapshot() for cpu in monitor.cpus),
    )


def restore(monitor, checkpoint: MonitorCheckpoint):
    """Rewind the monitor to ``checkpoint`` (undoes partial hypercalls)."""
    monitor.phys.restore_checkpoint(checkpoint.phys)
    monitor.pt_allocator.load_snapshot(checkpoint.allocator)
    monitor.epcm.load_snapshot(checkpoint.epcm)
    monitor.enclaves.clear()
    monitor.enclaves.update(checkpoint.enclaves)
    for eid, (state, saved_context, measurement) in \
            checkpoint.enclave_meta.items():
        enclave = monitor.enclaves[eid]
        enclave.state = state
        enclave.saved_context = saved_context
        enclave.measurement = measurement
    monitor._next_eid = checkpoint.next_eid
    for cpu, snapshot in zip(monitor.cpus, checkpoint.cpus):
        cpu.load_snapshot(snapshot)


def monitor_digest(monitor) -> Tuple:
    """A comparable value of the security-relevant monitor state.

    Two monitors with equal digests are indistinguishable to every
    invariant checker and to every observation function: physical
    memory (hence all page tables), allocator bitmap, EPCM, enclave
    metadata, scheduling scalars, and every vCPU with its live TLB
    entries.  The TLB *flush counts* are deliberately excluded — they
    are telemetry, not state.
    """
    return (
        monitor.phys.snapshot(),
        monitor.pt_allocator.snapshot(),
        monitor.epcm.snapshot(),
        tuple(sorted(
            (eid, enclave.state.value, enclave.measurement,
             enclave.saved_context, enclave.gpt.root_frame,
             enclave.ept.root_frame)
            for eid, enclave in monitor.enclaves.items())),
        monitor._next_eid,
        tuple((cpu.active, cpu.saved_host_context, cpu.vcpu.context(),
               cpu.vcpu.gpt_root, cpu.vcpu.ept_root,
               cpu.tlb.snapshot()[0])
              for cpu in monitor.cpus),
    )


# ---------------------------------------------------------------------------
# Concurrent rollback: the per-task undo scope
# ---------------------------------------------------------------------------

_MISSING = object()  # enclave lock taken for an eid that did not exist


@dataclass
class TxnScope:
    """The undo footprint of one in-flight concurrent hypercall.

    * ``journal`` — physical words overwritten by *this* task, first
      write wins (fed by :func:`repro.concurrency.scheduler
      .record_phys_write`).  Covers every page-table entry, frame copy,
      and scrub, because all tables live in physical memory.
    * ``structures`` — value snapshots of each lock-guarded structure,
      taken lazily when the lock is acquired.  Under strict 2PL no
      other task can have mutated a structure between acquire and
      abort, so restoring the acquire-time snapshot is exact.
    * ``cpu`` — the task's own CPU-local capture from hypercall entry.
    """

    vid: int
    cpu: Tuple
    journal: Dict[int, int] = field(default_factory=dict)
    structures: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def begin(cls, monitor, vid) -> "TxnScope":
        return cls(vid=vid, cpu=monitor.cpus[vid].snapshot())

    def record_word(self, index, old_value):
        self.journal.setdefault(index, old_value)

    def snapshot_structure(self, monitor, lock_name):
        """Capture the acquire-time value of one lock-guarded structure
        (idempotent — the first capture per lock wins)."""
        if lock_name in self.structures:
            return
        if lock_name == "frames":
            value = monitor.pt_allocator.snapshot()
        elif lock_name == "epcm":
            value = monitor.epcm.snapshot()
        elif lock_name == "enclaves":
            value = (dict(monitor.enclaves), monitor._next_eid)
        elif lock_name.startswith("enclave:"):
            eid = int(lock_name.split(":", 1)[1])
            enclave = monitor.enclaves.get(eid)
            if enclave is None:
                value = _MISSING
            else:
                value = (enclave, enclave.state, enclave.saved_context,
                         enclave.measurement)
        else:
            raise HypervisorError(f"no snapshot rule for lock {lock_name!r}")
        self.structures[lock_name] = value

    def rollback(self, monitor):
        """Undo this task's footprint; leaves other vCPUs' work alone."""
        with conc.suspended(), faults.suspended():
            monitor.phys.apply_undo(self.journal)
            for lock_name, value in self.structures.items():
                if value is _MISSING:
                    continue
                if lock_name == "frames":
                    monitor.pt_allocator.load_snapshot(value)
                elif lock_name == "epcm":
                    monitor.epcm.load_snapshot(value)
                elif lock_name == "enclaves":
                    enclaves, next_eid = value
                    monitor.enclaves.clear()
                    monitor.enclaves.update(enclaves)
                    monitor._next_eid = next_eid
                else:
                    enclave, state, saved_context, measurement = value
                    enclave.state = state
                    enclave.saved_context = saved_context
                    enclave.measurement = measurement
            monitor.cpus[self.vid].load_snapshot(self.cpu)


def _run_concurrent(fn, monitor, args, kwargs, task):
    """The scheduled-vCPU flavour of a transactional hypercall."""
    scope = TxnScope.begin(monitor, task.vid)
    task.txn_scope = scope
    try:
        return fn(monitor, *args, **kwargs)
    except HypercallError:
        scope.rollback(monitor)
        raise
    except (FaultInjected, HypervisorError) as exc:
        scope.rollback(monitor)
        raise HypercallAborted(fn.__name__, exc) from exc
    finally:
        task.txn_scope = None
        # Strict 2PL exit: drop every lock, yield the hc.return point,
        # and self-check rule 2.  This runs on the abort path too —
        # including a vCPU crash, whose park is delivered *at* that
        # yield, after the locks are gone: a crashed vCPU can strand
        # work, never locks.
        conc.release_locks(fn.__name__)


def transactional(fn):
    """Make one hypercall atomic: any failure rolls back, then re-raises.

    * Validation rejections (:class:`HypercallError`) re-raise as-is —
      the rollback is a no-op for them, but running it anyway means the
      guarantee does not depend on validations preceding mutations.
    * Mid-sequence failures (injected faults, exhausted allocators, any
      other hypervisor error) re-raise as the typed
      :class:`HypercallAborted`, chaining the cause.

    On a scheduled vCPU task the journal-based :class:`TxnScope` path
    is used instead of the whole-monitor snapshot; see the module
    docstring for why.

    The undecorated body stays reachable as ``__wrapped__`` — the
    deliberately broken ``NonTransactionalMonitor`` uses it, and the
    fault campaign demonstrates that variant violating rollback.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        task = conc.current_task()
        if task is not None:
            return _run_concurrent(fn, self, args, kwargs, task)
        checkpoint = capture(self)
        try:
            return fn(self, *args, **kwargs)
        except HypercallError:
            with faults.suspended():
                restore(self, checkpoint)
            raise
        except (FaultInjected, HypervisorError) as exc:
            with faults.suspended():
                restore(self, checkpoint)
            raise HypercallAborted(fn.__name__, exc) from exc

    return wrapper
