"""Transactional hypercalls: every faulted step rolls back completely.

The ISSUE-1 satellite: for each hypercall, inject a fault at every
injectable step index and assert the monitor state equals the
pre-hypercall state — explicitly (EPCM array, allocator bitmap, GPT/EPT
queries, physical memory), not just via the aggregate digest.
"""

import pytest

from repro.errors import (
    EpcExhausted,
    FaultInjected,
    HypercallAborted,
    HypercallError,
    OutOfMemoryError,
    ResourceExhausted,
)
from repro.faults import (
    EXHAUST,
    FaultPlane,
    default_workload,
    default_world_factory,
    enumerate_injectable_steps,
    hypercall_site,
    installed,
)
from repro.faults.campaign import DEFAULT_SITES, _KIND_FOR_SITE, RAISE
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.hyperenclave.txn import capture, monitor_digest, restore

FACTORY = default_world_factory()
CALLS = default_workload()
STEP_TABLE = enumerate_injectable_steps(FACTORY, CALLS)


def world_at(index):
    monitor, ctx = FACTORY()
    for _name, invoke in CALLS[:index]:
        invoke(monitor, ctx)
    return monitor, ctx


def explicit_state(monitor, ctx):
    """The satellite's explicit projection: EPCM, bitmap, translations."""
    queries = {}
    for eid, enclave in monitor.enclaves.items():
        page = ctx["page"]
        for offset in range(0, enclave.elrange_size, page):
            va = enclave.elrange_base + offset
            queries[(eid, "gpt", va)] = enclave.gpt.query(va)
            queries[(eid, "ept", enclave.elrange_gpa(va))] = \
                enclave.ept.query(enclave.elrange_gpa(va))
    return {
        "epcm": monitor.epcm.snapshot(),
        "bitmap": monitor.pt_allocator.snapshot(),
        "phys": monitor.phys.snapshot(),
        "queries": queries,
        "states": {eid: enclave.state
                   for eid, enclave in monitor.enclaves.items()},
    }


def all_faultable_triples():
    triples = []
    for index, (name, _invoke) in enumerate(CALLS):
        for site, hits in sorted(STEP_TABLE[index].items()):
            for step in range(hits):
                triples.append((index, name, site, step))
    return triples


class TestRollbackEveryStep:
    @pytest.mark.parametrize(
        "index,name,site,step",
        [pytest.param(i, n, s, k, id=f"{i}-{n}:{s}@{k}")
         for i, n, s, k in all_faultable_triples()])
    def test_faulted_hypercall_restores_pre_state(self, index, name,
                                                  site, step):
        monitor, ctx = world_at(index)
        before = explicit_state(monitor, ctx)
        digest_before = monitor_digest(monitor)
        plane = FaultPlane(seed=0).arm(
            site, index=step, kind=_KIND_FOR_SITE.get(site, RAISE))
        with installed(plane):
            with pytest.raises(HypercallAborted) as excinfo:
                CALLS[index][1](monitor, ctx)
        assert plane.fired, "the armed fault must actually fire"
        assert excinfo.value.hypercall == f"hc_{name}"
        after = explicit_state(monitor, ctx)
        assert after["epcm"] == before["epcm"]
        assert after["bitmap"] == before["bitmap"]
        assert after["phys"] == before["phys"]
        assert after["queries"] == before["queries"]
        assert after["states"] == before["states"]
        assert monitor_digest(monitor) == digest_before

    def test_every_hypercall_has_at_least_one_injectable_step(self):
        for index, (name, _invoke) in enumerate(CALLS):
            assert STEP_TABLE[index].get(hypercall_site(name)), \
                f"{name} declares no crash points"


class TestAbortSemantics:
    def test_abort_carries_typed_cause(self):
        monitor, ctx = world_at(1)  # before add_page
        plane = FaultPlane().arm("frames.alloc", index=0, kind=EXHAUST)
        with installed(plane):
            with pytest.raises(HypercallAborted) as excinfo:
                CALLS[1][1](monitor, ctx)
        assert isinstance(excinfo.value.cause, OutOfMemoryError)
        assert isinstance(excinfo.value.cause, ResourceExhausted)

    def test_epc_exhaustion_is_typed_and_rolled_back(self):
        monitor, ctx = world_at(1)
        digest = monitor_digest(monitor)
        plane = FaultPlane().arm("epcm.allocate", index=0, kind=EXHAUST)
        with installed(plane):
            with pytest.raises(HypercallAborted) as excinfo:
                CALLS[1][1](monitor, ctx)
        assert isinstance(excinfo.value.cause, EpcExhausted)
        assert monitor_digest(monitor) == digest

    def test_organic_exhaustion_also_rolls_back(self):
        # Drain the EPC for real (no injection): the failing add_page
        # must still roll back its partial work.
        monitor, ctx = world_at(1)
        while True:
            try:
                monitor.epcm.allocate(999, __import__(
                    "repro.hyperenclave.epcm",
                    fromlist=["PageState"]).PageState.REG)
            except EpcExhausted:
                break
        digest = monitor_digest(monitor)
        with pytest.raises(HypercallAborted) as excinfo:
            CALLS[1][1](monitor, ctx)
        assert isinstance(excinfo.value.cause, EpcExhausted)
        assert monitor_digest(monitor) == digest

    def test_validation_rejection_still_raises_plain_hypercall_error(self):
        monitor, ctx = world_at(0)
        with pytest.raises(HypercallError) as excinfo:
            monitor.hc_add_page(999, 0, 0)
        assert not isinstance(excinfo.value, HypercallAborted)

    def test_fault_outside_transaction_escapes_raw(self):
        monitor, _ctx = world_at(0)
        plane = FaultPlane().arm("frames.alloc", index=0)
        with installed(plane):
            with pytest.raises(FaultInjected):
                monitor.pt_allocator.alloc()


class TestCheckpointRestore:
    def test_capture_restore_roundtrip(self):
        monitor, ctx = world_at(4)  # mid-lifecycle, enclave exists
        checkpoint = capture(monitor)
        digest = monitor_digest(monitor)
        CALLS[4][1](monitor, ctx)  # init mutates state
        assert monitor_digest(monitor) != digest
        restore(monitor, checkpoint)
        assert monitor_digest(monitor) == digest

    def test_digest_ignores_tlb_flush_count(self):
        monitor, _ctx = world_at(2)
        digest = monitor_digest(monitor)
        monitor.tlb.flush_all()
        assert monitor_digest(monitor) == digest

    def test_digest_sees_epc_content(self):
        monitor, ctx = world_at(2)
        digest = monitor_digest(monitor)
        enclave = monitor.enclaves[ctx["eid"]]
        hpa = monitor.enclave_translate(ctx["eid"], ctx["elrange_base"],
                                        write=False)
        monitor.phys.write_word(hpa, 0x1234)
        assert monitor_digest(monitor) != digest
