"""Prefix-sharing execution cache: equivalence, eviction, metrics.

The snapshot tree's one hard guarantee mirrors the fabric's: a
campaign run through restored snapshots is **byte-identical**
(``repr``-equal) to the untouched legacy from-scratch path — at any
cache capacity, including a budget of zero and a single-node LRU that
evicts on every insert.  Hypothesis drives random (seed, preemption
bound, fault plan) configurations through both paths; the directed
tests pin the cache actually *working* (hits, suffix steps saved) and
its counters surfacing through the metrics registry.

Everything here runs in-process (``workers=1``) so the tests control
the process-local tree directly via
:func:`~repro.concurrency.snapshot.reset_process_tree`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concurrency.snapshot import (
    SnapshotTree,
    locality_key,
    prefix_cache_enabled,
    process_tree,
    reset_process_tree,
)
from repro.engine.campaigns import parallel_interleaving_campaign
from repro.obs.metrics import REGISTRY
from repro.reporting.tables import render_metrics

GRID = dict(max_schedules=12, check_ni=False, workers=1)


@pytest.fixture
def tree():
    """Install a fresh default-budget process tree; always uninstall."""
    fresh = SnapshotTree()
    reset_process_tree(fresh)
    yield fresh
    reset_process_tree(None)


def _both(tree_kwargs=None, **grid):
    """One campaign through a fresh tree and one through the legacy
    path; returns (cached_repr, legacy_repr, tree, counter_delta)."""
    reset_process_tree(SnapshotTree(**(tree_kwargs or {})))
    try:
        before = REGISTRY.snapshot()
        cached = parallel_interleaving_campaign(prefix_cache=True,
                                                **grid)
        delta = REGISTRY.delta(before)["counters"]
        installed = process_tree()
        legacy = parallel_interleaving_campaign(prefix_cache=False,
                                                **grid)
        return repr(cached), repr(legacy), installed, delta
    finally:
        reset_process_tree(None)


@given(data=st.data())
@settings(max_examples=6, deadline=None)
def test_random_configs_restore_byte_identically(data):
    """Random (seed, bound, fault plan): snapshot-restored campaigns
    repr-match the from-scratch legacy path."""
    seed = data.draw(st.integers(0, 4), label="seed")
    bound = data.draw(st.integers(1, 2), label="preemption_bound")
    crash = data.draw(
        st.one_of(st.none(),
                  st.tuples(st.integers(0, 1), st.integers(1, 6))),
        label="crash")
    cached, legacy, _tree, _delta = _both(
        seed=seed, preemption_bound=bound, crash=crash, **GRID)
    assert cached == legacy


@given(data=st.data())
@settings(max_examples=4, deadline=None)
def test_forced_eviction_preserves_equivalence(data):
    """Capacity 0 (nothing ever cached) and a 1-node LRU (evicts on
    nearly every insert) both stay byte-identical — eviction can cost
    speed, never correctness."""
    seed = data.draw(st.integers(0, 3), label="seed")
    kwargs = data.draw(st.sampled_from(
        [{"budget_bytes": 0}, {"max_nodes": 1}]), label="capacity")
    cached, legacy, tree, delta = _both(
        tree_kwargs=kwargs, seed=seed, preemption_bound=1, **GRID)
    assert cached == legacy
    if kwargs.get("budget_bytes") == 0:
        assert delta["snapshot_cache.hits"] == 0
        assert delta["snapshot_cache.captures"] == 0
    else:
        assert len(tree.nodes) <= 1
        assert delta["snapshot_cache.evictions"] > 0


def test_cache_hits_and_saves_suffix_steps():
    """Under the default budget the tree actually serves: most lookups
    hit and whole prefixes of scheduler decisions are skipped."""
    cached, legacy, tree, delta = _both(seed=0, preemption_bound=1,
                                        **GRID)
    assert cached == legacy
    hits = delta["snapshot_cache.hits"]
    misses = delta["snapshot_cache.misses"]
    assert hits > 0 and hits / (hits + misses) > 0.5
    assert delta["snapshot_cache.steps_saved"] > 0
    assert delta["snapshot_cache.cow_shared"] > 0
    assert tree.bytes_resident > 0


def test_ni_worlds_restore_byte_identically(tree):
    """The noninterference re-run (secret-42 world) gets its own
    subtree via the world key; full NI campaigns restore identically."""
    grid = dict(seed=1, preemption_bound=1, max_schedules=10,
                check_ni=True, workers=1)
    cached = parallel_interleaving_campaign(prefix_cache=True, **grid)
    legacy = parallel_interleaving_campaign(prefix_cache=False, **grid)
    assert repr(cached) == repr(legacy)


def test_counters_surface_in_render_metrics(tree):
    """The snapshot-cache counter group flows through the registry into
    the rendered metrics table (and hence the daemon's ``/metrics``)."""
    parallel_interleaving_campaign(prefix_cache=True, seed=0,
                                   preemption_bound=1, **GRID)
    table = render_metrics(REGISTRY.snapshot())
    for name in ("snapshot_cache.hits", "snapshot_cache.misses",
                 "snapshot_cache.steps_saved",
                 "snapshot_cache.bytes_resident"):
        assert name in table


def test_flag_resolution(monkeypatch):
    """Explicit beats env; unset/empty env means on; the usual
    falsey spellings disable."""
    monkeypatch.delenv("REPRO_PREFIX_CACHE", raising=False)
    assert prefix_cache_enabled(None) is True
    assert prefix_cache_enabled(False) is False
    for value in ("0", "false", "NO", " off "):
        monkeypatch.setenv("REPRO_PREFIX_CACHE", value)
        assert prefix_cache_enabled(None) is False
        assert prefix_cache_enabled(True) is True
    monkeypatch.setenv("REPRO_PREFIX_CACHE", "1")
    assert prefix_cache_enabled(None) is True
    monkeypatch.setenv("REPRO_PREFIX_CACHE", "")
    assert prefix_cache_enabled(None) is True


def test_locality_key_groups_subtrees():
    """Schedules sharing a first preemption (one subtree) share a shard
    key; different heads, seeds, or crash plans split."""
    from repro.concurrency import Schedule

    root = Schedule(seed=3)
    child = Schedule(seed=3, preemptions=((4, 1),))
    grandchild = Schedule(seed=3, preemptions=((4, 1), (9, 0)))
    assert locality_key(child) == locality_key(grandchild)
    assert locality_key(root) != locality_key(child)
    assert locality_key(child) != locality_key(
        Schedule(seed=3, preemptions=((5, 1),)))
    assert locality_key(child) != locality_key(
        Schedule(seed=4, preemptions=((4, 1),)))
    assert locality_key(child) != locality_key(
        Schedule(seed=3, preemptions=((4, 1),), crash=(0, 2)))
