"""The refinement relation R and the abstraction function α (Sec. 4.1).

Property: flat and tree specifications co-evolve in lockstep — after any
sequence of map/unmap operations applied to both views, R relates them,
and α(flat) equals the tree.  Plus the negative direction: structures
whose entries escape the frame area (the shallow-copy bug) have no
abstraction and fail R.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PagingError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import MemoryLayout, TINY
from repro.spec import (
    AbstractionFailure, abstract_table, flat_alloc_frame,
    flat_initial_state, flat_map_page, flat_unmap, flat_write_entry,
    r_pte, relation_r, tree_empty, tree_map_page, tree_unmap,
)
from repro.spec.relation import flat_state_of_page_table

PAGE = TINY.page_size
LAYOUT = MemoryLayout.default_for(TINY)
POOL_BASE = LAYOUT.pt_pool_base
POOL_SIZE = LAYOUT.epc_base - LAYOUT.pt_pool_base
LEAF = pte.leaf_flags()


def co_evolve(operations):
    """Apply (op, page_no) operations to both views; return both."""
    state = flat_initial_state(TINY, POOL_BASE, POOL_SIZE)
    root, state = flat_alloc_frame(state)
    tree = tree_empty(TINY)
    for op, page_no in operations:
        va = page_no * PAGE
        pa = (page_no % 16) * PAGE
        if op == "map":
            before = state.bitmap
            try:
                state = flat_map_page(state, root, va, pa, LEAF)
            except PagingError:
                continue
            created = [TINY.frame_base(POOL_BASE + i)
                       for i, (a, b) in enumerate(zip(before, state.bitmap))
                       if b and not a]
            tree = tree_map_page(tree, va, pa, LEAF, TINY,
                                 new_table_addrs=created)
        else:
            try:
                state = flat_unmap(state, root, va)
            except PagingError:
                continue
            tree = tree_unmap(tree, va, TINY)
    return tree, state, root


OPERATIONS = st.lists(
    st.tuples(st.sampled_from(["map", "unmap"]), st.integers(0, 63)),
    max_size=24)


class TestCoEvolution:
    @settings(max_examples=60, deadline=None)
    @given(OPERATIONS)
    def test_r_holds_after_any_op_sequence(self, operations):
        tree, state, root = co_evolve(operations)
        assert relation_r(tree, state, root)

    @settings(max_examples=40, deadline=None)
    @given(OPERATIONS)
    def test_alpha_computes_the_tree(self, operations):
        tree, state, root = co_evolve(operations)
        assert abstract_table(state, root) == tree

    def test_empty_tables_related(self):
        tree, state, root = co_evolve([])
        assert relation_r(tree, state, root)
        assert abstract_table(state, root) == tree_empty(TINY)


class TestNegativeDirection:
    def test_escaping_entry_fails_abstraction(self):
        """A root entry pointing into guest memory (the Sec. 4.1 shallow
        copy) has no tree view."""
        _tree, state, root = co_evolve([])
        guest_table = pte.pte_new(TINY.frame_base(2), pte.table_flags(),
                                  TINY)
        state = flat_write_entry(state, root, 0, guest_table)
        with pytest.raises(AbstractionFailure, match="escapes"):
            abstract_table(state, root)
        assert not relation_r(tree_empty(TINY), state, root)

    def test_aliased_tables_fail_abstraction(self):
        """Two entries pointing at the same intermediate table — exactly
        the aliasing the flat view cannot rule out — are rejected."""
        _tree, state, root = co_evolve([("map", 0)])
        # Read the entry for span 0 and duplicate it into slot 1.
        from repro.spec.flat import flat_read_entry
        entry = flat_read_entry(state, root, 0)
        state = flat_write_entry(state, root, 1, entry)
        with pytest.raises(AbstractionFailure, match="twice"):
            abstract_table(state, root)

    def test_residual_bits_fail_abstraction(self):
        """A non-present entry with leftover bits violates unused_inv."""
        _tree, state, root = co_evolve([])
        state = flat_write_entry(state, root, 0, 0xF0)  # flags, no PRESENT
        with pytest.raises(AbstractionFailure, match="unused_inv"):
            abstract_table(state, root)

    def test_wrong_tree_fails_r(self):
        tree, state, root = co_evolve([("map", 5)])
        wrong = tree_map_page(tree_empty(TINY), 5 * PAGE, 13 * PAGE, LEAF,
                              TINY)
        assert not relation_r(wrong, state, root)

    def test_r_pte_terminal_agreement(self):
        from repro.spec.pte_record import PTERecord
        _tree, state, root = co_evolve([])
        record = PTERecord(addr=3 * PAGE, flags=LEAF)
        entry = pte.pte_new(3 * PAGE, LEAF, TINY)
        assert r_pte(record, entry, state, 1)
        assert not r_pte(record, pte.pte_new(4 * PAGE, LEAF, TINY),
                         state, 1)
        assert r_pte(None, 0, state, 1)
        assert not r_pte(None, entry, state, 1)


class TestImplementationBridge:
    def test_live_page_table_abstracts(self, enclave_world):
        """α applies to the real implementation's backing memory, and the
        resulting tree agrees with the implementation's own mappings."""
        monitor, _app, eid = enclave_world
        enclave = monitor.enclaves[eid]
        flat = flat_state_of_page_table(enclave.gpt, POOL_BASE, POOL_SIZE)
        tree = abstract_table(flat, enclave.gpt.root_frame)
        assert relation_r(tree, flat, enclave.gpt.root_frame)
        from repro.spec import tree_mappings
        assert sorted(tree_mappings(tree, TINY)) == \
            sorted(enclave.gpt.mappings())

    def test_shallow_copy_monitor_unprovable(self):
        """The paper's in-the-wild bug: no tree abstraction exists."""
        from repro.hyperenclave.buggy import ShallowCopyMonitor
        monitor = ShallowCopyMonitor(TINY)
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        primary_os.app_map_data(app, 16 * PAGE)
        mbuf_pa = TINY.frame_base(primary_os.reserve_data_frame())
        eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE,
                                         4 * PAGE, mbuf_pa, PAGE)
        enclave = monitor.enclaves[eid]
        flat = flat_state_of_page_table(enclave.gpt, POOL_BASE, POOL_SIZE)
        with pytest.raises(AbstractionFailure):
            abstract_table(flat, enclave.gpt.root_frame)


class TestSpecWalk:
    def test_spec_translate_agrees_with_impl(self, enclave_world):
        """Sec. 5.1's reuse: the security model's walk is the verified
        spec walk, and it agrees with the hardware model."""
        from repro.spec import spec_translate
        monitor, _app, eid = enclave_world
        enclave = monitor.enclaves[eid]
        flat = flat_state_of_page_table(enclave.gpt, POOL_BASE, POOL_SIZE)
        tree = abstract_table(flat, enclave.gpt.root_frame)
        for va, _gpa, _size, _flags in enclave.gpt.mappings():
            assert spec_translate(tree, va + 8, TINY) == \
                enclave.gpt.translate(va + 8)

    def test_spec_translate_none_on_fault(self):
        from repro.spec import spec_translate
        assert spec_translate(tree_empty(TINY), 0, TINY) is None

    def test_spec_translate_permissions(self):
        from repro.spec import spec_translate
        tree = tree_map_page(tree_empty(TINY), 0, PAGE,
                             pte.leaf_flags(writable=False), TINY)
        assert spec_translate(tree, 0, TINY, write=False) == PAGE
        assert spec_translate(tree, 0, TINY, write=True) is None
