"""Counterexample provenance: self-contained, replayable failure bundles.

A violation that cannot be re-run is an anecdote.  Every checking
engine in this reproduction is deterministic given a small set of
inputs — a seed, a schedule, a fault plan, a budget — so a refuted
invariant can carry *everything needed to reproduce itself* in one
JSON-serialisable bundle.  :class:`ProvenanceBundle` is that record,
and :func:`replay_bundle` is the other half of the contract: load the
bundle, rebuild the world from its named factories, re-run the failing
check, and report whether the recorded violation reappeared.

Bundle ``kind``s and what replays them:

===============  ========================================================
``interleaving``  one explored schedule re-run with the full battery
                  (invariants, vCPU consistency, optional two-world NI)
``crash-step``    one ``(hypercall, site, step)`` fault injection via
                  :func:`repro.engine.workers.run_crash_step_unit`
``crash-point``   one vCPU crash at one critical-section yield point
``pure-check``    one hardened pure-corpus check under a step budget
===============  ========================================================

Classes and callables travel as ``module:qualname`` paths (the sharded
executor's convention), so a bundle written by one process replays in
another — or in a fresh ``python -m repro replay bundle.json`` months
later.  Wall-clock budgets are deliberately *not* replayed (a seconds
budget is not reproducible across machines); replay runs with the
recorded step budget and a frozen clock.

When a tracer is installed at bundle-creation time, the bundle also
captures the **minimal trace slice** — the tail of the trace ring at
the moment of failure — so the evidence of *how* the checker got there
ships with the counterexample.
"""

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CorruptArtifact
from repro.obs import trace as trace_mod

SCHEMA_VERSION = 1

#: Records kept from the trace ring when a bundle is created.
TRACE_SLICE_LIMIT = 64


@dataclass
class ProvenanceBundle:
    """Everything needed to replay one failing check."""

    kind: str                      # interleaving | crash-step | ...
    seed: int = 0
    monitor: Optional[str] = None  # module:qualname, None = RustMonitor
    schedule: Optional[Dict] = None
    fault_plan: Optional[Dict] = None
    check: Dict = field(default_factory=dict)     # engine parameters
    violation: Dict = field(default_factory=dict)  # what was observed
    budget_spent: Dict = field(default_factory=dict)
    trace_slice: List[Dict] = field(default_factory=list)
    version: int = SCHEMA_VERSION

    # -- JSON round-trip ----------------------------------------------------

    def to_json(self) -> str:
        """The bundle as pretty-printed, key-sorted JSON."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProvenanceBundle":
        """Parse a :meth:`to_json` payload back into a bundle."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ValueError("not a provenance bundle: missing 'kind'")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"not a provenance bundle: unknown fields {sorted(unknown)}")
        return cls(**payload)

    def save(self, path: str) -> str:
        """Write the bundle to ``path`` as JSON; returns the path.

        The write is atomic (temp + fsync + rename): a crash mid-save
        cannot leave a truncated bundle where a replayable one stood.
        """
        from repro.service.store import atomic_write_text
        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ProvenanceBundle":
        """Load a bundle; a truncated or non-JSON file raises
        :class:`~repro.errors.CorruptArtifact` naming the damage (a
        schema-valid JSON object with wrong fields stays a plain
        ``ValueError`` — that is a foreign document, not a torn one)."""
        with open(path) as fh:
            text = fh.read()
        try:
            return cls.from_json(text)
        except json.JSONDecodeError as exc:
            raise CorruptArtifact(
                path, f"bundle is not valid JSON "
                      f"(truncated write?): {exc}") from None


@dataclass
class ReplayOutcome:
    """What a :func:`replay_bundle` run observed vs. what was recorded."""

    kind: str
    matched: bool
    expected: Dict
    found: List
    detail: str = ""

    def summary(self) -> str:
        """One human line: REPRODUCED/DIVERGED plus what was compared."""
        verdict = "REPRODUCED" if self.matched else "DIVERGED"
        return (f"[{verdict}] {self.kind} replay: expected "
                f"{self.expected}, found {len(self.found)} finding(s)"
                + (f" — {self.detail}" if self.detail else ""))


# ---------------------------------------------------------------------------
# Bundle builders
# ---------------------------------------------------------------------------


def _trace_slice(limit=TRACE_SLICE_LIMIT) -> List[Dict]:
    """The tail of the installed tracer's ring (empty when tracing is
    off) — the evidence of how the checker reached the failure."""
    tracer = trace_mod.active_tracer()
    if tracer is None:
        return []
    return tracer.export()[-limit:]

def _schedule_dict(schedule) -> Dict:
    return {"seed": schedule.seed,
            "preemptions": [list(p) for p in schedule.preemptions],
            "crash": list(schedule.crash)
            if schedule.crash is not None else None}


def _schedule_from_dict(payload):
    from repro.concurrency import Schedule
    return Schedule(
        seed=payload.get("seed", 0),
        preemptions=tuple(tuple(p)
                          for p in payload.get("preemptions", ())),
        crash=tuple(payload["crash"])
        if payload.get("crash") is not None else None)


def interleaving_bundle(violation, *, monitor_cls=None, check_ni=True,
                        observers=None, result=None) -> ProvenanceBundle:
    """A bundle for one :class:`~repro.concurrency.explorer.Violation`
    out of an interleaving campaign (default TINY geometry)."""
    from repro.engine.campaigns import callable_path

    check = {"check_ni": bool(check_ni)}
    if observers is not None:
        check["observers"] = list(observers)
    bundle = ProvenanceBundle(
        kind="interleaving",
        seed=violation.schedule.seed,
        monitor=callable_path(monitor_cls),
        schedule=_schedule_dict(violation.schedule),
        check=check,
        violation={"kind": violation.kind, "detail": violation.detail},
        trace_slice=_trace_slice())
    if result is not None and not bundle.trace_slice:
        bundle.trace_slice = [{"type": "event", "id": 0, "span": None,
                               "name": "schedule.trace", "t": 0.0,
                               "attrs": {"trace": list(result.trace)}}]
    return bundle


def bundles_from_exploration(result, *, monitor_cls=None, check_ni=True,
                             observers=None) -> List[ProvenanceBundle]:
    """One bundle per violation of an
    :class:`~repro.concurrency.explorer.ExplorationResult`."""
    return [interleaving_bundle(violation, monitor_cls=monitor_cls,
                                check_ni=check_ni, observers=observers)
            for violation in result.violations]


def crash_step_bundle(index, site, kind, step, *, seed=0,
                      factory=None, factory_args=(), workload=None,
                      record=None) -> ProvenanceBundle:
    """A bundle for one ``(hypercall, site, step)`` crash-step run.

    ``factory``/``workload`` are the campaign's dotted maker/workload
    paths (defaults: the standard lifecycle campaign).
    """
    from repro.engine.campaigns import DEFAULT_WORKLOAD, DEFAULT_WORLD_FACTORY

    violation = {}
    if record is not None:
        violation = {"hypercall": record.hypercall,
                     "outcome": record.outcome,
                     "rolled_back": record.rolled_back,
                     "invariants_ok": record.invariants_ok,
                     "detail": record.detail}
    return ProvenanceBundle(
        kind="crash-step", seed=seed,
        fault_plan={"index": index, "site": site, "kind": kind,
                    "step": step,
                    "factory": factory or DEFAULT_WORLD_FACTORY,
                    "factory_args": list(factory_args),
                    "workload": workload or DEFAULT_WORKLOAD},
        violation=violation,
        trace_slice=_trace_slice())


def crash_point_bundle(point, record=None, *, monitor_cls=None,
                       seed=0) -> ProvenanceBundle:
    """A bundle for one crash-in-critical-section record."""
    from repro.engine.campaigns import callable_path

    violation = {}
    if record is not None:
        violation = {"violations": list(record.violations),
                     "parked": record.parked}
    return ProvenanceBundle(
        kind="crash-point", seed=seed,
        monitor=callable_path(monitor_cls),
        fault_plan={"vid": point.vid, "yield_index": point.yield_index,
                    "kind": point.kind, "detail": point.detail,
                    "locks_held": list(point.locks_held)},
        violation=violation,
        trace_slice=_trace_slice())


def pure_check_bundle(report, *, max_steps=None, seed=0,
                      sample_count=128, max_exhaustive=4096,
                      fastpath_enabled=None) -> ProvenanceBundle:
    """A bundle for one hardened pure-corpus
    :class:`~repro.ccal.refinement.CheckReport` (step budgets only —
    wall-clock budgets are not reproducible)."""
    from repro import fastpath

    return ProvenanceBundle(
        kind="pure-check", seed=seed,
        check={"name": report.name, "max_steps": max_steps,
               "sample_count": sample_count,
               "max_exhaustive": max_exhaustive,
               "fastpath": fastpath.enabled()
               if fastpath_enabled is None else bool(fastpath_enabled)},
        violation={"engine": report.engine,
                   "failures": [str(f) for f in report.failures],
                   "degradations": list(report.degradations),
                   "completed": report.completed},
        budget_spent=dict(report.budget_spent),
        trace_slice=_trace_slice())


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay_bundle(bundle: ProvenanceBundle) -> ReplayOutcome:
    """Re-run the check a bundle describes; compare what comes back."""
    handler = _REPLAYERS.get(bundle.kind)
    if handler is None:
        raise ValueError(
            f"unknown bundle kind {bundle.kind!r} "
            f"(known: {sorted(_REPLAYERS)})")
    return handler(bundle)


def _replay_interleaving(bundle) -> ReplayOutcome:
    from repro.concurrency.explorer import result_violations
    from repro.engine.executor import resolve_callable
    from repro.faults.campaign import make_interleaved_run
    from repro.hyperenclave.monitor import HOST_ID
    from repro.security.invariants import (
        check_all_invariants,
        check_vcpu_consistency,
    )
    from repro.security.noninterference import check_schedule_noninterference

    schedule = _schedule_from_dict(bundle.schedule or {})
    monitor_cls = resolve_callable(bundle.monitor) if bundle.monitor \
        else None
    run_world = make_interleaved_run(monitor_cls, None)
    state, result = run_world(41, schedule)
    findings = [(v.kind, v.detail)
                for v in result_violations(schedule, result)]
    report = check_all_invariants(state.monitor)
    for family in report.violated_families():
        for item in report.violations[family]:
            findings.append(("invariant", f"[{family}] {item}"))
    for item in check_vcpu_consistency(state.monitor):
        findings.append(("vcpu-consistency", item))
    if bundle.check.get("check_ni", True):
        observers = list(bundle.check.get("observers", [HOST_ID]))
        for violation in check_schedule_noninterference(
                run_world, schedule, observers):
            findings.append(("noninterference", str(violation)))
    expected = (bundle.violation.get("kind"),
                bundle.violation.get("detail"))
    return ReplayOutcome(
        kind=bundle.kind, matched=expected in findings,
        expected=bundle.violation, found=findings,
        detail=f"schedule {schedule.describe()}")


def _replay_crash_step(bundle) -> ReplayOutcome:
    from repro.engine.workers import run_crash_step_unit

    plan = bundle.fault_plan or {}
    record = run_crash_step_unit({
        "factory": plan["factory"],
        "factory_args": tuple(plan.get("factory_args", ())),
        "workload": plan["workload"], "index": plan["index"],
        "site": plan["site"], "kind": plan["kind"],
        "step": plan["step"], "seed": bundle.seed})
    found = {"hypercall": record.hypercall, "outcome": record.outcome,
             "rolled_back": record.rolled_back,
             "invariants_ok": record.invariants_ok,
             "detail": record.detail}
    expected = bundle.violation
    matched = all(found.get(key) == value
                  for key, value in expected.items()) if expected \
        else record.fired
    return ReplayOutcome(
        kind=bundle.kind, matched=matched, expected=expected,
        found=[found],
        detail=f"{plan['site']} step {plan['step']} of call "
               f"#{plan['index']}")


def _replay_crash_point(bundle) -> ReplayOutcome:
    from repro.concurrency.scheduler import YieldPoint
    from repro.engine.executor import resolve_callable
    from repro.faults.campaign import crash_point_record, make_interleaved_run

    plan = bundle.fault_plan or {}
    monitor_cls = resolve_callable(bundle.monitor) if bundle.monitor \
        else None
    run_world = make_interleaved_run(monitor_cls, None)
    point = YieldPoint(vid=plan["vid"],
                       yield_index=plan["yield_index"],
                       kind=plan.get("kind", "step"),
                       detail=plan.get("detail"),
                       locks_held=tuple(plan.get("locks_held", ())))
    record = crash_point_record(run_world, point, seed=bundle.seed)
    found = {"violations": list(record.violations),
             "parked": record.parked}
    expected = bundle.violation
    matched = all(found.get(key) == value
                  for key, value in expected.items()) if expected \
        else True
    return ReplayOutcome(kind=bundle.kind, matched=matched,
                         expected=expected, found=[found],
                         detail=f"crash vcpu{plan['vid']}"
                                f"@yield{plan['yield_index']}")


def _replay_pure_check(bundle) -> ReplayOutcome:
    from repro import fastpath
    from repro.engine.workers import run_pure_check_unit

    check = dict(bundle.check)
    switch = fastpath.forced if check.get("fastpath", True) \
        else fastpath.disabled
    with switch():
        report = run_pure_check_unit({
            "name": check["name"], "max_steps": check.get("max_steps"),
            "seed": bundle.seed,
            "sample_count": check.get("sample_count", 128),
            "max_exhaustive": check.get("max_exhaustive", 4096),
            "fake_clock": True})
    found = {"engine": report.engine,
             "failures": [str(f) for f in report.failures],
             "degradations": list(report.degradations),
             "completed": report.completed}
    expected = bundle.violation
    # Every recorded verdict field must reproduce — including
    # ``degradations``.  An earlier whitelist silently skipped it, so
    # a replay whose engine ladder degraded differently (or a bundle
    # whose recorded degradations were edited) still reported
    # REPRODUCED and exited 0.
    matched = all(found.get(key) == value
                  for key, value in expected.items())
    return ReplayOutcome(kind=bundle.kind, matched=matched,
                         expected=expected, found=[found],
                         detail=f"function {check['name']}")


_REPLAYERS = {
    "interleaving": _replay_interleaving,
    "crash-step": _replay_crash_step,
    "crash-point": _replay_crash_point,
    "pure-check": _replay_pure_check,
}
