"""Deterministic cooperative multi-vCPU scheduler.

Each vCPU's workload runs on its own OS thread, but only one thread is
ever runnable: control is handed back and forth through per-task events
(strict token passing, the CHESS execution model).  Instrumented code
inside the monitor calls :func:`yield_point` at every lock acquire,
lock release (hypercall return), physical-memory write, shootdown IPI,
and security-model step; each such call parks the vCPU and lets the
scheduler pick the next one.  Because the *only* scheduling freedom in
the whole system is the scheduler's choice at each decision point, an
execution is fully determined by its :class:`Schedule` — a seed, a
tuple of preemptions, and an optional vCPU crash — which is what makes
every explored interleaving replayable from a single small value.

The module doubles as the instrumentation plane (mirroring
``repro.faults.plane``): all hooks are module-level functions that
no-op unless a scheduler is installed *and* the calling thread is one
of its vCPU tasks.  Monitor code can therefore call them
unconditionally; sequential callers pay nothing.
"""

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FaultInjected
from repro.concurrency.locks import LockManager

#: Yield kinds at which the interleaving explorer considers preempting.
#: Anything else (plain ``phys.write`` under an owning lock) cannot be
#: the first action of a conflict, per the persistent-set argument in
#: :mod:`repro.concurrency.explorer`.
BRANCH_KINDS = frozenset(
    {"task.start", "step", "lock.acquire", "shootdown.ipi", "hc.return"})

#: Synthetic fault site used when a schedule crashes a vCPU.
VCPU_CRASH_SITE = "vcpu.crash"


class _VCpuParked(BaseException):
    """Unwinds a crashed vCPU's thread.

    A ``BaseException`` on purpose: after a crash is delivered the task
    must stop for good, and no ``except ReproError``/``except
    Exception`` in monitor or workload code may resurrect it.
    """


@dataclass(frozen=True)
class Schedule:
    """A complete, replayable description of one interleaving.

    ``preemptions`` maps decision indices to the vCPU forced at that
    decision; at every other decision the scheduler continues the
    previously running vCPU (or the lowest enabled one).  ``crash``, if
    set, kills vCPU ``crash[0]`` at its ``crash[1]``-th yield point
    with a :class:`~repro.errors.FaultInjected` at site ``vcpu.crash``.
    """

    seed: int = 0
    preemptions: Tuple[Tuple[int, int], ...] = ()
    crash: Optional[Tuple[int, int]] = None

    def describe(self) -> str:
        """The human-readable replay string printed with violations."""
        parts = [f"seed={self.seed}"]
        if self.preemptions:
            parts.append("preempt=" + ",".join(
                f"@{i}->vcpu{v}" for i, v in self.preemptions))
        if self.crash is not None:
            parts.append(f"crash=vcpu{self.crash[0]}@yield{self.crash[1]}")
        return " ".join(parts)


@dataclass(frozen=True)
class Decision:
    """One scheduling decision: who ran, who else could have."""

    index: int
    chosen: int
    chosen_kind: str
    enabled: Tuple[int, ...]
    kinds: Tuple[Tuple[int, str], ...]   # (vid, parked-at kind) per enabled


@dataclass(frozen=True)
class YieldPoint:
    """One executed yield: where a vCPU handed control back."""

    vid: int
    yield_index: int       # 1-based, per vCPU
    kind: str
    detail: Optional[str]
    locks_held: Tuple[str, ...]

    @property
    def in_critical_section(self) -> bool:
        return bool(self.locks_held)


@dataclass
class Task:
    """One vCPU's workload and its cooperative-scheduling state."""

    vid: int
    fn: Callable[[], None]
    thread: Optional[threading.Thread] = None
    event: threading.Event = field(default_factory=threading.Event)
    pending_kind: str = "task.start"
    pending_detail: Optional[str] = None
    yield_index: int = 0
    waiting_lock: Optional[str] = None
    crashed: bool = False
    parked: bool = False
    done: bool = False
    exc: Optional[BaseException] = None
    txn_scope: Optional[object] = None
    # Set to 1 by a snapshot-tree restore: the task is parked *inside*
    # its current script step, so the first yield it re-executes was
    # already recorded (and crash-checked) in the cached prefix and is
    # silently consumed instead of being recorded again.
    resume_swallow: int = 0


@dataclass
class RunResult:
    """Everything one scheduled execution produced."""

    schedule: Schedule
    decisions: Tuple[Decision, ...]
    yields: Tuple[YieldPoint, ...]
    trace: Tuple[int, ...]                 # chosen vid per decision
    lock_violations: tuple
    stale_translations: tuple
    task_errors: Dict[int, BaseException]
    parked: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return (not self.lock_violations and not self.stale_translations
                and not self.task_errors)

    def critical_yields(self) -> Tuple[YieldPoint, ...]:
        """Yield points taken while the yielding vCPU held locks."""
        return tuple(y for y in self.yields if y.in_critical_section)


class DeterministicScheduler:
    """Runs one :class:`Schedule` over a set of vCPU workloads.

    ``workloads[i]`` becomes vCPU ``i``'s task (the monitor must have
    at least that many vCPUs).  ``probe``, if given, is called with the
    monitor after every decision — from the scheduler thread, so it
    must not hit any yield points — and returns an iterable of
    findings (the stale-translation detector).
    """

    def __init__(self, monitor, workloads, schedule=None, *,
                 lock_manager=None, probe=None, timeout=60.0,
                 fast_handoff=False):
        self.monitor = monitor
        self.schedule = schedule if schedule is not None else Schedule()
        self.locks = lock_manager if lock_manager is not None else LockManager()
        self.probe = probe
        self.timeout = timeout
        self.fast_handoff = fast_handoff
        self.tasks = [Task(vid=vid, fn=fn) for vid, fn in enumerate(workloads)]
        self.decisions: List[Decision] = []
        self.yields: List[YieldPoint] = []
        self.stale: List[object] = []
        self._preempt = dict(self.schedule.preemptions)
        self._by_ident: Dict[int, Task] = {}
        self._control = threading.Event()
        self._last: Optional[int] = None
        self._ran = False
        # Optional snapshot-tree capture hook (repro.concurrency
        # .snapshot.SnapshotPlan).  Offered the frozen world right
        # before each scheduling decision; None costs one ``is None``
        # test per decision and keeps this the exact legacy path.
        self.snapshots = None

    # -- the main loop --------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the schedule to completion and return the record."""
        if self._ran:
            raise RuntimeError("a DeterministicScheduler is single-use; "
                               "build a fresh one to replay")
        self._ran = True
        with installed(self):
            for task in self.tasks:
                if task.done:
                    # pre-completed by a snapshot restore: its whole
                    # script ran inside the cached prefix
                    continue
                task.thread = threading.Thread(
                    target=self._runner, args=(task,),
                    name=f"vcpu-{task.vid}", daemon=True)
                task.thread.start()
            while True:
                live = [t for t in self.tasks if not t.done]
                if not live:
                    break
                enabled = [t for t in live if self._runnable(t)]
                if not enabled:
                    raise RuntimeError(
                        "scheduler deadlock: "
                        + "; ".join(f"vcpu{t.vid} waits on "
                                    f"{t.waiting_lock!r}" for t in live))
                if self.snapshots is not None:
                    self.snapshots.offer(self)
                chosen = self._pick(enabled)
                self.decisions.append(Decision(
                    index=len(self.decisions),
                    chosen=chosen.vid,
                    chosen_kind=chosen.pending_kind,
                    enabled=tuple(t.vid for t in enabled),
                    kinds=tuple((t.vid, t.pending_kind) for t in enabled)))
                self._last = chosen.vid
                self._control.clear()
                chosen.event.set()
                if not self._control.wait(self.timeout):
                    raise RuntimeError(
                        f"vcpu{chosen.vid} did not yield within "
                        f"{self.timeout}s")
                if self.probe is not None:
                    self.stale.extend(self.probe(self.monitor) or ())
            for task in self.tasks:
                if task.thread is not None:
                    task.thread.join(self.timeout)
        return self.result()

    def result(self) -> RunResult:
        return RunResult(
            schedule=self.schedule,
            decisions=tuple(self.decisions),
            yields=tuple(self.yields),
            trace=tuple(d.chosen for d in self.decisions),
            lock_violations=tuple(self.locks.violations),
            stale_translations=tuple(self.stale),
            task_errors={t.vid: t.exc for t in self.tasks
                         if t.exc is not None},
            parked=tuple(t.vid for t in self.tasks if t.parked),
        )

    # -- scheduling policy ------------------------------------------------------------

    def _runnable(self, task) -> bool:
        return task.waiting_lock is None or \
            not self.locks.would_block(task.vid, task.waiting_lock)

    def _pick(self, enabled):
        forced = self._preempt.get(len(self.decisions))
        if forced is not None:
            for task in enabled:
                if task.vid == forced:
                    return task
        if self._last is not None:
            for task in enabled:
                if task.vid == self._last:
                    return task
        return min(enabled, key=lambda t: t.vid)

    # -- task side --------------------------------------------------------------------

    def _runner(self, task):
        self._by_ident[threading.get_ident()] = task
        task.event.wait()
        task.event.clear()
        try:
            task.fn()
        except _VCpuParked:
            task.parked = True
        except FaultInjected as exc:
            if exc.site == VCPU_CRASH_SITE:
                # crash delivered outside any hypercall: the vCPU just
                # stops, with nothing to roll back
                task.parked = True
            else:
                task.exc = exc
        except BaseException as exc:          # noqa: BLE001 - report, don't die
            task.exc = exc
        finally:
            task.done = True
            self._control.set()

    def _yield(self, task, kind, detail):
        if task.resume_swallow:
            # Snapshot restore: this yield is the cached prefix's park
            # point being re-reached; everything about it — the yield
            # record, the crash check, the scheduling decision — is
            # already seeded.  Consume it and keep executing.
            task.resume_swallow -= 1
            return
        task.yield_index += 1
        self.yields.append(YieldPoint(
            vid=task.vid, yield_index=task.yield_index, kind=kind,
            detail=detail, locks_held=self.locks.held_by(task.vid)))
        if (not task.crashed and self.schedule.crash is not None
                and self.schedule.crash == (task.vid, task.yield_index)):
            task.crashed = True
            raise FaultInjected(VCPU_CRASH_SITE,
                                hit=task.yield_index, label=kind)
        if task.crashed:
            # the crash already fired; the vCPU must not execute further
            raise _VCpuParked()
        task.pending_kind = kind
        task.pending_detail = detail
        if self.fast_handoff and self._inline_decision(task):
            return
        self._control.set()
        if not task.event.wait(self.timeout):
            raise RuntimeError(f"vcpu{task.vid} was never rescheduled")
        task.event.clear()

    def _inline_decision(self, task) -> bool:
        """Decide the next step without waking the scheduler thread.

        Strict token passing means the parked world is frozen while
        this vCPU runs, so the yielding thread can evaluate exactly the
        pick the scheduler thread would make.  When that pick is the
        yielding vCPU itself — the overwhelmingly common case under a
        small preemption bound, where every non-preempted decision just
        continues the running vCPU — the decision, its record, and the
        probe all happen inline and the two thread handoffs are
        skipped.  Any other pick (a preemption, a lock handover, a
        finished task) falls back to the token-passing slow path, so
        the recorded :class:`RunResult` is byte-identical either way.
        """
        live = [t for t in self.tasks if not t.done]
        enabled = [t for t in live if self._runnable(t)]
        if not enabled or self._pick(enabled) is not task:
            return False
        if self.snapshots is not None:
            self.snapshots.offer(self)
        self.decisions.append(Decision(
            index=len(self.decisions),
            chosen=task.vid,
            chosen_kind=task.pending_kind,
            enabled=tuple(t.vid for t in enabled),
            kinds=tuple((t.vid, t.pending_kind) for t in enabled)))
        self._last = task.vid
        if self.probe is not None:
            # The probe normally runs on the scheduler thread, where
            # instrumentation hooks no-op (the thread owns no task);
            # ``suspended`` gives it the same hook-free environment
            # here on the vCPU thread.
            with suspended():
                self.stale.extend(self.probe(self.monitor) or ())
        return True


# ---------------------------------------------------------------------------
# Module-level instrumentation plane (mirrors repro.faults.plane)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[DeterministicScheduler] = None
_TLS = threading.local()


def active_scheduler() -> Optional[DeterministicScheduler]:
    return _ACTIVE


@contextmanager
def installed(scheduler):
    """Install ``scheduler`` as the process-wide plane for one run."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a scheduler is already installed")
    _ACTIVE = scheduler
    try:
        yield scheduler
    finally:
        _ACTIVE = None


def current_task() -> Optional[Task]:
    """The scheduled :class:`Task` of this thread, or None."""
    sched = _ACTIVE
    if sched is None:
        return None
    return sched._by_ident.get(threading.get_ident())


def current_vid() -> Optional[int]:
    """The executing vCPU id, or None off any scheduled task thread."""
    task = current_task()
    return None if task is None else task.vid


def _suspended() -> bool:
    return getattr(_TLS, "depth", 0) > 0


@contextmanager
def suspended():
    """Silence all hooks on this thread (rollback must not re-enter)."""
    _TLS.depth = getattr(_TLS, "depth", 0) + 1
    try:
        yield
    finally:
        _TLS.depth -= 1


def yield_point(kind, detail=None):
    """A potential context switch; no-op outside a scheduled task."""
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._by_ident.get(threading.get_ident())
    if task is None:
        return
    sched._yield(task, kind, detail)


def acquire_locks(monitor, names):
    """Pre-acquire ``names`` in global order (strict 2PL entry).

    Blocks (by parking at a ``lock.acquire`` yield that the scheduler
    only resumes once the lock is free) rather than spinning, so the
    enabled-set the explorer sees is exact.
    """
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._by_ident.get(threading.get_ident())
    if task is None:
        return
    from repro.concurrency.locks import order_locks
    for name in order_locks(names):
        task.waiting_lock = name
        sched._yield(task, "lock.acquire", name)
        task.waiting_lock = None
        sched.locks.acquire(task.vid, name)
        scope = task.txn_scope
        if scope is not None:
            scope.snapshot_structure(monitor, name)


def release_locks(where):
    """Release every lock of the current vCPU (hypercall return)."""
    sched = _ACTIVE
    task = current_task()
    if sched is None or task is None:
        return ()
    released = sched.locks.release_all(task.vid)
    try:
        yield_point("hc.return", where)
    finally:
        sched.locks.check_none_held(task.vid, f"return from {where}")
    return released


def guard_mutation(name):
    """Rule-3 checkpoint: a ``name``-guarded structure is being written."""
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._by_ident.get(threading.get_ident())
    if task is None:
        return
    sched.locks.check_mutation(task.vid, name)


def record_phys_write(index, old_value):
    """Journal a physical-memory word about to be overwritten."""
    if _suspended():
        return
    task = current_task()
    if task is None or task.txn_scope is None:
        return
    task.txn_scope.record_word(index, old_value)
