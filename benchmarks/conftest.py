"""Shared fixtures and artifact emission for the bench harness.

Every bench regenerates one of the paper's tables or figures.  The
rendered artifact is printed (visible with ``pytest -s``) and written to
``benchmarks/artifacts/<name>.txt`` so EXPERIMENTS.md can point at the
exact output of the last run.
"""

import os

import pytest

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


@pytest.fixture(scope="session")
def model():
    return build_model(TINY)


@pytest.fixture(scope="session")
def emit():
    """emit(name, text): persist + print a rendered artifact."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)

    def _emit(name, text):
        path = os.path.join(ARTIFACT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print()
        print(text)
        return path

    return _emit


def build_world(monitor_cls=None, secret=0x41, pages=1):
    """A booted monitor with one app + initialized enclave (bench copy of
    the test helper, kept separate so benchmarks/ is self-contained)."""
    from repro.hyperenclave.monitor import RustMonitor
    cls = monitor_cls or RustMonitor
    monitor = cls(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    page = TINY.page_size
    mbuf_pa = TINY.frame_base(primary_os.reserve_data_frame())
    src_pa = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src_pa, secret)
    eid = monitor.hc_create(16 * page, pages * page, 12 * page, mbuf_pa,
                            page)
    for index in range(pages):
        monitor.hc_add_page(eid, (16 + index) * page, src_pa)
    primary_os.gpa_write_word(src_pa, 0)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 12 * page, mbuf_pa)
    return monitor, app, eid
