"""The via-text fidelity knob: everything downstream of the model must
behave identically whether the corpus was consumed as AST or re-read
from the textual mirlight format (the mirlightgen path)."""

import pytest

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.mir_model.layers import corpus_source
from repro.mir.value import mk_u64
from repro.verification import (
    verify_pure_function, verify_stateful_function,
)

PAGE = TINY.page_size


@pytest.fixture(scope="module")
def text_model():
    return build_model(TINY, via_text=True)


class TestViaText:
    def test_same_function_set(self, model, text_model):
        assert set(text_model.program.functions) == \
            set(model.program.functions)

    def test_same_layer_map(self, model, text_model):
        assert text_model.layer_map == model.layer_map

    def test_call_order_still_holds(self, text_model):
        assert text_model.check_call_order() == []

    @pytest.mark.parametrize("name", ["pte_new", "entry_index",
                                      "elrange_contains"])
    def test_pure_proofs_pass_on_text_model(self, text_model, name):
        assert verify_pure_function(text_model, name).ok

    @pytest.mark.parametrize("name", ["map_page", "walk_terminal",
                                      "epcm_alloc_page"])
    def test_stateful_proofs_pass_on_text_model(self, text_model, name):
        assert verify_stateful_function(text_model, name, count=8).ok

    def test_execution_identical(self, model, text_model):
        args = [mk_u64(0x1200), mk_u64(0x87)]
        direct = model.make_interpreter().call("pte_new", args).value
        via_text = text_model.make_interpreter().call("pte_new",
                                                      args).value
        assert direct == via_text

    def test_corpus_source_is_parseable_blob(self):
        from repro.mir.parser import parse_program
        source = corpus_source(TINY)
        assert "fn map_page(" in source
        assert len(parse_program(source).functions) == 49
