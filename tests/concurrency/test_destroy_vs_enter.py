"""Lifecycle teardown racing a guest session (satellite: hc_destroy /
hc_remove_page vs hc_enter).

Whatever the interleaving, a teardown racing an enter must resolve to
clean rejections — either the enter loses (the enclave is gone or its
page was pulled) or the teardown loses (the enclave is RUNNING) — and
never to a broken invariant, a stale translation, or a vCPU error.
"""

import pytest

from repro.concurrency import Schedule, explore
from repro.errors import HypervisorError, SecurityError
from repro.faults import make_interleaved_run
from repro.hyperenclave.monitor import HOST_ID
from repro.security import check_all_invariants
from repro.security.invariants import check_vcpu_consistency
from repro.security.transitions import Hypercall, MemLoad, apply_step


def racing_workloads(teardown_steps):
    """``make_interleaved_run`` workload builder: vCPU 0 builds an
    enclave then tears it down while vCPU 1 races a session into it.
    Each run's per-step verdicts land in ``build.outcomes``."""

    def build(state, ctx):
        page, base = ctx["page"], ctx["elrange_base"]
        host_script = [
            Hypercall(HOST_ID, "create",
                      (base, 4 * page, 12 * page, ctx["mbuf_pa"], page)),
            Hypercall(HOST_ID, "add_page", (1, base, ctx["src_pa"])),
            Hypercall(HOST_ID, "init", (1,)),
        ] + teardown_steps(page, base)
        guest_script = [
            Hypercall(HOST_ID, "enter", (1,)),
            MemLoad(1, base, "rax"),
            Hypercall(1, "exit", (1,)),
        ]

        def script_task(script, outcomes):
            def run():
                for step in script:
                    try:
                        outcomes.append((step, apply_step(state,
                                                          step).applied))
                    except SecurityError:
                        outcomes.append((step, None))  # malformed: skip
            return run

        build.outcomes = ([], [])
        return [script_task(host_script, build.outcomes[0]),
                script_task(guest_script, build.outcomes[1])]

    return build


def sweep(teardown_steps, preemption_bound=2):
    build = racing_workloads(teardown_steps)
    run_world = make_interleaved_run(workloads=build)
    holder = {}
    outcomes_per_run = []

    def run_schedule(schedule):
        state, result = run_world(41, schedule)
        holder["monitor"] = state.monitor
        outcomes_per_run.append(build.outcomes)
        return result

    def check(_schedule, _result):
        findings = []
        monitor = holder["monitor"]
        report = check_all_invariants(monitor)
        for family in report.violated_families():
            findings.append(("invariant", family))
        for item in check_vcpu_consistency(monitor):
            findings.append(("vcpu-consistency", item))
        return findings

    return explore(run_schedule, preemption_bound=preemption_bound,
                   check=check), outcomes_per_run


def hypercall_verdicts(outcomes_per_run, name):
    """Every ``applied`` verdict the named hypercall got, across runs."""
    verdicts = set()
    for scripts in outcomes_per_run:
        for outcomes in scripts:
            for step, applied in outcomes:
                if getattr(step, "name", None) == name:
                    verdicts.add(applied)
    return verdicts


def destroy_teardown(_page, _base):
    return [Hypercall(HOST_ID, "destroy", (1,))]


def trim_then_destroy_teardown(page, base):
    return [Hypercall(HOST_ID, "trim_page", (1, base)),
            Hypercall(HOST_ID, "destroy", (1,))]


class TestDestroyRacingEnter:
    def test_every_interleaving_is_invariant_safe(self):
        result, _outcomes = sweep(destroy_teardown)
        assert result.schedules_run > 20
        assert result.ok, result.summary()

    def test_the_race_actually_goes_both_ways(self):
        _result, outcomes_per_run = sweep(destroy_teardown)
        # Some schedule lets the enter win (destroy rejected, the
        # enclave is RUNNING) and some schedule kills it first (enter
        # rejected, the enclave is gone) — both resolved cleanly.
        assert hypercall_verdicts(outcomes_per_run, "enter") == \
            {True, False}
        assert hypercall_verdicts(outcomes_per_run, "destroy") == \
            {True, False}


class TestTrimRacingEnter:
    def test_every_interleaving_is_invariant_safe(self):
        result, _outcomes = sweep(trim_then_destroy_teardown)
        assert result.ok, result.summary()

    def test_no_schedule_leaves_a_stale_translation(self):
        result, _outcomes = sweep(trim_then_destroy_teardown)
        assert "stale-translation" not in result.by_kind()


class TestRemovePageStateGate:
    def test_remove_page_is_rejected_once_initialized(self):
        """The CREATED-only gate that keeps ``hc_remove_page`` out of
        the race entirely: a live session can never have its pages
        pulled un-trimmed — SGX2 teardown must go through trim."""
        run_world = make_interleaved_run()
        state, _result = run_world(41, Schedule())
        monitor = state.monitor
        with pytest.raises(HypervisorError):
            monitor.hc_remove_page(1, 17 * monitor.config.page_size)
