"""Per-architecture PTE semantics: the ArchSpec property suite plus
regression tests for the x86-isms it flushed out.

Four bugs this file pins (each failed before the arch-spec refactor):

1. ``map_huge`` accepted any ``2 <= level <= levels`` — root-level
   blocks that no supported architecture has.
2. ``_ept_translate`` inherited ``translate``'s ``user=True`` default,
   so monitor-owned EPT entries without USER faulted the guest walk.
3. ``guest_walk`` enforced WRITE at every level but never USER; the
   hierarchical user rule (x86 U, VMSAv8 APTable[0]) was unenforced.
4. ``addr_mask`` hardcoded bit 51 — VMSAv8's 48-bit output addresses
   silently gained four phantom address bits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PagingError, TranslationFault
from repro.hyperenclave import pte
from repro.hyperenclave.archspec import VMSAV8_SPEC, X86_SPEC
from repro.hyperenclave.constants import (
    TINY,
    TINY_ARM,
    VMSA8_64,
    MemoryLayout,
)
from repro.hyperenclave.frames import BitmapFrameAllocator
from repro.hyperenclave.hardware import PhysMemory
from repro.hyperenclave.paging import PageTable, guest_walk
from repro.spec.relation import abstract_table, flat_state_of_page_table
from repro.spec.tree import tree_empty, tree_map_huge
from repro.spec.walk import spec_translate

CONFIGS = [TINY, TINY_ARM]
WORD = 8

U64 = st.integers(0, (1 << 64) - 1)


def config_id(config):
    return config.arch.name


def fresh_table(config, allow_huge=False):
    layout = MemoryLayout.default_for(config)
    phys = PhysMemory(config)
    allocator = BitmapFrameAllocator(layout.pt_pool_frames)
    table = PageTable(config, phys, allocator, allow_huge=allow_huge)
    return layout, phys, allocator, table


def forbid(flags, test):
    """Flip ``flags`` so BitTest ``test`` no longer holds — clears the
    bits on positive-want tests (x86 U/W), sets them on inverted tests
    (VMSAv8 APTable)."""
    return flags & ~test.mask if test.want else flags | test.mask


# ---------------------------------------------------------------------------
# Property suite: entry round-trips and flag truth tables
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", CONFIGS, ids=config_id)
class TestEntryRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(addr=U64, flags=U64)
    def test_new_addr_flags_partition(self, config, addr, flags):
        entry = pte.pte_new(addr, flags, config)
        mask = config.addr_mask()
        assert pte.pte_addr(entry, config) == addr & mask
        assert pte.pte_flags(entry, config) == flags & ~mask & ((1 << 64) - 1)

    @settings(max_examples=32, deadline=None)
    @given(w=st.booleans(), u=st.booleans(), nx=st.booleans())
    def test_leaf_flags_truth_table(self, config, w, u, nx):
        spec = config.arch
        entry = spec.leaf_flags(writable=w, user=u, nx=nx)
        assert spec.is_present(entry)
        assert spec.is_leaf_valid(entry)
        assert spec.access_allowed(entry)
        assert spec.is_writable(entry) == w
        assert spec.is_user(entry) == u
        assert spec.is_noexec(entry) == nx
        assert not spec.is_block_encoded(entry)

    def test_block_encoding_and_idempotence(self, config):
        spec = config.arch
        block = spec.leaf_flags(huge=True)
        assert spec.is_present(block)
        assert spec.is_block_encoded(block)
        assert spec.to_block(block) == block
        for level in spec.block_levels:
            assert spec.is_block(block, level)
        assert not spec.is_block(block, 1)  # level 1 is never a block

    def test_table_flags_are_permissive_tables(self, config):
        spec = config.arch
        table_entry = spec.table_flags()
        assert spec.is_present(table_entry)
        assert not spec.is_block_encoded(table_entry)
        assert spec.table_allows_write(table_entry)
        assert spec.table_allows_user(table_entry)

    def test_flag_bits_clear_of_address_field(self, config):
        assert config.arch.flags_mask() & config.addr_mask() == 0

    @settings(max_examples=40, deadline=None)
    @given(flags=U64)
    def test_to_block_idempotent_on_anything(self, config, flags):
        spec = config.arch
        assert spec.to_block(spec.to_block(flags)) == spec.to_block(flags)


# ---------------------------------------------------------------------------
# Bug 4: the output-address width belongs to the arch, not a constant
# ---------------------------------------------------------------------------


class TestOutputWidth:
    def test_x86_output_is_52_bits(self):
        assert X86_SPEC.addr_mask(12) == \
            ((1 << 52) - 1) & ~((1 << 12) - 1)

    def test_vmsav8_output_is_48_bits(self):
        mask = VMSAV8_SPEC.addr_mask(12)
        assert mask == ((1 << 48) - 1) & ~((1 << 12) - 1)
        assert mask & (1 << 51) == 0  # bit 51 is an x86-ism

    def test_vmsav8_truncates_bits_48_to_51(self):
        # With the old hardcoded bit-51 mask, the phantom bit survived
        # into the physical address.
        entry = pte.pte_new((1 << 48) | 0x1000, 0, VMSA8_64)
        assert pte.pte_addr(entry, VMSA8_64) == 0x1000


# ---------------------------------------------------------------------------
# Bug 1: block mappings only at architecturally supported levels
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", CONFIGS, ids=config_id)
class TestBlockLevels:
    def test_root_level_blocks_rejected(self, config):
        _, _, _, table = fresh_table(config, allow_huge=True)
        with pytest.raises(PagingError, match="block level"):
            table.map_huge(0, 0, config.levels, config.arch.leaf_flags())

    def test_tree_map_huge_rejects_root_level(self, config):
        tree = tree_empty(config)
        with pytest.raises(PagingError, match="block level"):
            tree_map_huge(tree, 0, 0, config.levels,
                          config.arch.leaf_flags(), config)

    def test_supported_block_levels_map_and_translate(self, config):
        page = config.page_size
        for level in config.arch.block_levels:
            _, _, _, table = fresh_table(config, allow_huge=True)
            span = config.level_span(level)
            table.map_huge(span, span, level, config.arch.leaf_flags())
            assert table.translate(span) == span
            assert table.translate(span + page + 4) == span + page + 4
            assert table.translate(2 * span - 1) == 2 * span - 1


# ---------------------------------------------------------------------------
# Walk ↔ spec agreement at every supported leaf level
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", CONFIGS, ids=config_id)
class TestWalkSpecAgreement:
    def test_every_supported_leaf_level_agrees(self, config):
        layout = MemoryLayout.default_for(config)
        pool_base = layout.pt_pool_base
        pool_size = layout.epc_base - pool_base
        page = config.page_size
        for level in (1,) + config.arch.block_levels:
            _, _, _, table = fresh_table(config, allow_huge=True)
            span = config.level_span(level)
            va = span
            pa = span
            if level == 1:
                table.map_page(va, pa, config.arch.leaf_flags())
            else:
                table.map_huge(va, pa, level, config.arch.leaf_flags())
            flat = flat_state_of_page_table(table, pool_base, pool_size)
            tree = abstract_table(flat, table.root_frame)
            for offset in (0, 17, span - page, span - 1):
                probe = va + offset
                assert spec_translate(tree, probe, config) == \
                    table.translate(probe), \
                    f"{config.arch.name} level {level} offset {offset:#x}"
            assert spec_translate(tree, va - 1, config) is None
            assert spec_translate(tree, va + span, config) is None

    def test_tree_map_huge_matches_alpha(self, config):
        layout = MemoryLayout.default_for(config)
        pool_base = layout.pt_pool_base
        pool_size = layout.epc_base - pool_base
        for level in config.arch.block_levels:
            _, _, allocator, table = fresh_table(config, allow_huge=True)
            span = config.level_span(level)
            table.map_huge(span, span, level, config.arch.leaf_flags())
            created = [config.frame_base(frame)
                       for frame in allocator.allocated_frames()
                       if frame != table.root_frame]
            tree = tree_map_huge(tree_empty(config), span, span, level,
                                 config.arch.leaf_flags(), config,
                                 new_table_addrs=created)
            flat = flat_state_of_page_table(table, pool_base, pool_size)
            assert abstract_table(flat, table.root_frame) == tree

    def test_spec_translate_enforces_permissions(self, config):
        layout = MemoryLayout.default_for(config)
        pool_base = layout.pt_pool_base
        pool_size = layout.epc_base - pool_base
        page = config.page_size
        _, _, _, table = fresh_table(config)
        table.map_page(0, page, config.arch.leaf_flags(writable=False))
        table.map_page(page, 2 * page, config.arch.leaf_flags(user=False))
        flat = flat_state_of_page_table(table, pool_base, pool_size)
        tree = abstract_table(flat, table.root_frame)
        assert spec_translate(tree, 0, config) == page
        assert spec_translate(tree, 0, config, write=True) is None
        assert spec_translate(tree, page, config) is None
        assert spec_translate(tree, page, config, user=False) == 2 * page


# ---------------------------------------------------------------------------
# Bugs 2 and 3: nested-walk access types, per stage and per level
# ---------------------------------------------------------------------------


def build_nested(config, ept_leaf_flags=None):
    """An EPT identity-mapping frames 0..16 plus a guest GPT root."""
    layout = MemoryLayout.default_for(config)
    phys = PhysMemory(config)
    allocator = BitmapFrameAllocator(layout.pt_pool_frames)
    ept = PageTable(config, phys, allocator, name="ept")
    flags = (ept_leaf_flags if ept_leaf_flags is not None
             else config.arch.leaf_flags())
    for frame in range(16):
        base = config.frame_base(frame)
        ept.map_page(base, base, flags)
    return phys, ept, config.frame_base(0)


def build_guest_chain(config, phys, gpt_root, va, leaf_frame,
                      leaf_flags=None, top_table_flags=None):
    """Hand-build the guest table chain for ``va`` in frames 1..n."""
    spec = config.arch
    table_gpa = gpt_root
    next_free = 1
    for level in range(config.levels, 1, -1):
        child = config.frame_base(next_free)
        next_free += 1
        flags = (top_table_flags
                 if top_table_flags is not None and level == config.levels
                 else spec.table_flags())
        phys.write_word(table_gpa + config.entry_index(va, level) * WORD,
                        pte.pte_new(child, flags, config))
        table_gpa = child
    lflags = leaf_flags if leaf_flags is not None else spec.leaf_flags()
    phys.write_word(table_gpa + config.entry_index(va, 1) * WORD,
                    pte.pte_new(config.frame_base(leaf_frame), lflags,
                                config))


@pytest.mark.parametrize("config", CONFIGS, ids=config_id)
class TestNestedWalkAccessTypes:
    def test_supervisor_ept_does_not_fault_user_guest_walk(self, config):
        """Bug 2: the EPT stage translates guest-*physical* addresses;
        guest-PT USER semantics must not apply to it.  Before the fix,
        ``_ept_translate`` inherited ``user=True`` and monitor-owned
        EPT entries without USER faulted every guest access."""
        page = config.page_size
        supervisor = config.arch.leaf_flags(user=False)
        phys, ept, gpt_root = build_nested(config,
                                           ept_leaf_flags=supervisor)
        va = 5 * page
        build_guest_chain(config, phys, gpt_root, va, leaf_frame=9)
        hpa = guest_walk(config, phys, ept, gpt_root, va + 24, user=True)
        assert hpa == config.frame_base(9) + 24

    def test_supervisor_gpt_leaf_faults_user_access(self, config):
        """Bug 3 (leaf half): the GPT leaf's user bit must gate user
        accesses — before the fix guest_walk never looked at it."""
        page = config.page_size
        phys, ept, gpt_root = build_nested(config)
        va = 5 * page
        build_guest_chain(config, phys, gpt_root, va, leaf_frame=9,
                          leaf_flags=config.arch.leaf_flags(user=False))
        with pytest.raises(TranslationFault) as excinfo:
            guest_walk(config, phys, ept, gpt_root, va, user=True)
        assert excinfo.value.stage == "gpt"
        assert guest_walk(config, phys, ept, gpt_root, va, user=False) \
            == config.frame_base(9)

    def test_user_forbidding_table_entry_faults_user_access(self, config):
        """Bug 3 (hierarchical half): the per-arch table rule — x86
        ANDs U across levels, VMSAv8 sets APTable[0] — must gate user
        accesses through intermediate entries too."""
        spec = config.arch
        page = config.page_size
        phys, ept, gpt_root = build_nested(config)
        va = 5 * page
        build_guest_chain(
            config, phys, gpt_root, va, leaf_frame=9,
            top_table_flags=forbid(spec.table_flags(), spec.table_user))
        with pytest.raises(TranslationFault) as excinfo:
            guest_walk(config, phys, ept, gpt_root, va, user=True)
        assert excinfo.value.stage == "gpt"
        assert guest_walk(config, phys, ept, gpt_root, va, user=False) \
            == config.frame_base(9)

    def test_write_forbidding_table_entry_faults_writes(self, config):
        """The write half of the hierarchical rule, per arch (x86 W,
        VMSAv8 APTable[1])."""
        spec = config.arch
        page = config.page_size
        phys, ept, gpt_root = build_nested(config)
        va = 5 * page
        build_guest_chain(
            config, phys, gpt_root, va, leaf_frame=9,
            top_table_flags=forbid(spec.table_flags(), spec.table_write))
        with pytest.raises(TranslationFault) as excinfo:
            guest_walk(config, phys, ept, gpt_root, va, write=True)
        assert excinfo.value.stage == "gpt"
        assert guest_walk(config, phys, ept, gpt_root, va, write=False) \
            == config.frame_base(9)


# ---------------------------------------------------------------------------
# VMSAv8-only semantics the x86 shape could not express
# ---------------------------------------------------------------------------


class TestVmsav8Semantics:
    def test_access_flag_clear_faults(self):
        config = TINY_ARM
        _, _, _, table = fresh_table(config)
        no_af = config.arch.leaf_flags() & ~(1 << 10)
        table.map_page(0, config.page_size, no_af)
        with pytest.raises(TranslationFault, match="access flag"):
            table.translate(0)

    def test_reserved_level1_encoding_is_not_a_mapping(self):
        # bits[1:0] == 0b01 at level 1 is reserved: present but invalid.
        config = TINY_ARM
        _, phys, _, table = fresh_table(config)
        page = config.page_size
        table.map_page(0, page, config.arch.leaf_flags())
        result = table.walk(0)
        leaf = result.steps[-1]
        reserved = leaf.entry & ~(1 << 1)  # clear TYPE: block encoding
        phys.write_word(config.frame_base(leaf.table_frame)
                        + leaf.index * WORD, reserved)
        assert not table.walk(0).complete
        with pytest.raises(TranslationFault):
            table.translate(0)

    def test_read_only_is_the_set_state(self):
        spec = VMSAV8_SPEC
        assert not spec.is_writable(spec.leaf_flags(writable=False))
        assert spec.leaf_flags(writable=False) & (1 << 7)
        assert not spec.leaf_flags(writable=True) & (1 << 7)
