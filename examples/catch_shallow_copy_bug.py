#!/usr/bin/env python3
"""The Sec. 4.1 bug study: "Malformed Page Tables in the Wild".

During HyperEnclave's development, enclave page tables were once
initialised by shallow-copying the primary OS's top-level table — leaving
pointers to intermediate tables that live in *guest-controlled* memory.
The paper's argument: such a design is unprovable, because the refinement
relation R requires every table frame to be inside the monitor's frame
area.

This example reproduces the whole story:

1. build the buggy monitor and create an enclave the insecure way,
2. show the abstraction function α refusing to produce a tree view
   (the "no way to prove R" moment),
3. show the page-table-residency invariant flagging the same design,
4. show the exploit the bug enables: the OS rewrites a table it owns and
   redirects the enclave's translation,
5. show the fixed monitor passing all of the above.

Run:  python examples/catch_shallow_copy_bug.py
"""

from repro.hyperenclave import RustMonitor, pte
from repro.hyperenclave.buggy import ShallowCopyMonitor
from repro.hyperenclave.constants import TINY
from repro.security import check_pt_residency
from repro.spec import AbstractionFailure, abstract_table
from repro.spec.relation import flat_state_of_page_table

PAGE = TINY.page_size


def build_buggy():
    monitor = ShallowCopyMonitor(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    primary_os.app_map_data(app, 16 * PAGE)
    mbuf_pa = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE,
                                     4 * PAGE, mbuf_pa, PAGE)
    return monitor, app, eid


def flat_view(monitor, table):
    layout = monitor.layout
    return flat_state_of_page_table(
        table, layout.pt_pool_base,
        layout.epc_base - layout.pt_pool_base)


def main():
    monitor, app, eid = build_buggy()
    enclave = monitor.enclaves[eid]

    # 1. Where do the enclave's table frames live?
    guest_frames = [f for f in enclave.gpt.table_frames()
                    if monitor.layout.is_untrusted(f)]
    print(f"enclave GPT table frames in GUEST memory: {guest_frames}")

    # 2. The refinement relation is unprovable: α refuses.
    try:
        abstract_table(flat_view(monitor, enclave.gpt),
                       enclave.gpt.root_frame)
        raise SystemExit("BUG: the malformed table abstracted fine")
    except AbstractionFailure as failure:
        print(f"α(flat) refused: {failure}")

    # 3. The residency invariant flags it too.
    for violation in check_pt_residency(monitor):
        print(f"invariant violation: {violation}")

    # 4. The exploit: the OS owns those intermediate tables, so it can
    #    redirect the enclave's address translation with a plain store.
    victim_frame = guest_frames[0]
    primary_os = monitor.primary_os
    hostile_entry = pte.pte_new(TINY.frame_base(1), pte.table_flags(),
                                TINY)
    primary_os.gpa_write_word(TINY.frame_base(victim_frame),
                              hostile_entry)
    print("primary OS rewrote the enclave's page-table entry "
          "with one guest store — translation is now OS-controlled")

    # 5. The fixed design: from-scratch tables; everything passes.
    fixed = RustMonitor(TINY)
    src = TINY.frame_base(fixed.primary_os.reserve_data_frame())
    mbuf = TINY.frame_base(fixed.primary_os.reserve_data_frame())
    good_eid = fixed.hc_create(16 * PAGE, 2 * PAGE, 4 * PAGE, mbuf, PAGE)
    fixed.hc_add_page(good_eid, 16 * PAGE, src)
    good = fixed.enclaves[good_eid]
    tree = abstract_table(flat_view(fixed, good.gpt),
                          good.gpt.root_frame)
    print(f"fixed monitor: α(flat) succeeds "
          f"({len(list(tree.present_indices()))} root entries), "
          f"residency violations: {check_pt_residency(fixed)}")


if __name__ == "__main__":
    main()
