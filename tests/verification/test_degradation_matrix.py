"""``CheckReport.solver_stats`` and ``degradations`` across the matrix.

Every cell of (engine in the degradation chain) × (fast path on/off)
must produce a report whose ``solver_stats`` carries the full counter
set and whose ``degradations`` record exactly the fallbacks taken —
the observability fields are part of the verdict contract, not
best-effort decoration.
"""

import pytest

from repro import fastpath
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.verification.harness import (
    ENGINE_EXHAUSTIVE,
    ENGINE_SAMPLING,
    ENGINE_SYMBOLIC,
    check_pure_hardened,
)

SOLVER_KEYS = {
    "candidates_examined", "models_enumerated", "domains_pruned",
    "check_sat_calls", "check_sat_memo_hits",
    "must_hold_calls", "must_hold_memo_hits",
}

MODES = {"naive": fastpath.disabled, "fast": fastpath.forced}


@pytest.fixture(scope="module")
def mode_models():
    """One corpus model per fast-path mode (compiled dispatch is chosen
    at construction time, so each mode gets its own)."""
    models = {}
    for mode, switch in MODES.items():
        with switch():
            models[mode] = build_model(TINY)
    return models


@pytest.mark.parametrize("mode", sorted(MODES))
class TestDegradationMatrix:
    def test_symbolic_happy_path(self, mode, mode_models):
        with MODES[mode]():
            report = check_pure_hardened(mode_models[mode], "pte_new")
        assert report.ok, report.failures
        assert report.engine == ENGINE_SYMBOLIC
        assert report.degradations == []
        assert set(report.solver_stats) == SOLVER_KEYS
        assert report.solver_stats["models_enumerated"] > 0

    def test_exhaustive_fallback_records_one_degradation(self, mode,
                                                         mode_models):
        with MODES[mode]():
            report = check_pure_hardened(mode_models[mode], "level_span",
                                         max_steps=16, sample_count=16)
        assert report.engine == ENGINE_EXHAUSTIVE
        assert len(report.degradations) == 1
        assert report.degradations[0].startswith(ENGINE_SYMBOLIC)
        assert report.ok and report.completed
        assert set(report.solver_stats) == SOLVER_KEYS

    def test_sampling_fallback_names_every_skipped_engine(self, mode,
                                                          mode_models):
        with MODES[mode]():
            report = check_pure_hardened(mode_models[mode], "pte_new",
                                         max_steps=40, max_exhaustive=1,
                                         sample_count=8)
        assert report.engine == ENGINE_SAMPLING
        assert any(d.startswith(ENGINE_SYMBOLIC)
                   for d in report.degradations)
        assert any(ENGINE_EXHAUSTIVE in d and "domain too large" in d
                   for d in report.degradations)
        assert set(report.solver_stats) == SOLVER_KEYS

    def test_repeat_check_reports_identical_stats(self, mode,
                                                  mode_models):
        """``solver_stats`` is a per-check delta, so the same check
        repeated must report the same counters — not an accumulation,
        and not warped by whatever ran before it."""
        with MODES[mode]():
            first = check_pure_hardened(mode_models[mode], "pte_new")
            second = check_pure_hardened(mode_models[mode], "pte_new")
        assert first.solver_stats == second.solver_stats


def test_engine_choice_agrees_across_modes(mode_models):
    """The fast path may not change which engine a budget lands on."""
    grids = [("pte_new", {}),
             ("level_span", dict(max_steps=16, sample_count=16)),
             ("pte_new", dict(max_steps=40, max_exhaustive=1,
                              sample_count=8))]
    for name, kwargs in grids:
        engines = set()
        for mode, switch in MODES.items():
            with switch():
                report = check_pure_hardened(mode_models[mode], name,
                                             **kwargs)
            engines.add(report.engine)
        assert len(engines) == 1, (name, kwargs, engines)
