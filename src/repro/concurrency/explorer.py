"""Systematic interleaving exploration: bounded-preemption search.

The scheduler makes every execution a pure function of its
:class:`~repro.concurrency.scheduler.Schedule`, so exploring
interleavings is exploring schedules.  The explorer runs breadth-first
over preemption counts (the CHESS insight: real concurrency bugs
almost always need very few preemptions, so bound them and search
exhaustively within the bound):

* The root schedule has no preemptions — each vCPU runs to completion
  in vid order, the "sequential" interleaving.
* From every executed schedule, a child is created for each decision
  point after its last preemption where a *different* enabled vCPU
  could have been chosen — but only at decisions whose chosen task was
  parked at a kind in :data:`~repro.concurrency.scheduler.BRANCH_KINDS`.

The branch-kind filter is the persistent-set/DPOR-lite reduction: a
vCPU parked at a plain ``phys.write`` is mid-critical-section, writing
under locks it already holds; those writes cannot be *observed* by any
other vCPU until a lock, hypercall-return, or step boundary, and the
stale-translation probe runs at every decision regardless, so deferring
the preemption to the next branch kind explores an equivalent trace.
Children are deduplicated by their predicted vid-trace prefix — two
preemption vectors forcing the same prefix replay the same execution.

Single-schedule :func:`replay` always re-executes from scratch
(stateless model checking), so a reported violation's ``(seed,
schedule)`` pair reproduces it standalone by construction.  Campaign
sweeps may instead restore a schedule's shared prefix from the
process-local snapshot tree (:mod:`repro.concurrency.snapshot`) and
execute only the suffix — the equivalence suites pin that restored
runs are byte-identical to from-scratch ones, so replayability is
unchanged.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.concurrency.scheduler import BRANCH_KINDS, RunResult, Schedule
from repro.obs import trace as _trace


@dataclass(frozen=True)
class Violation:
    """One finding, pinned to the schedule that reproduces it."""

    schedule: Schedule
    kind: str        # lock-protocol | stale-translation | vcpu-error | ...
    detail: str

    def __str__(self):
        return f"[{self.kind}] {self.detail} (replay: {self.schedule.describe()})"


@dataclass
class ExplorationResult:
    """Everything a bounded-preemption sweep produced."""

    preemption_bound: int
    max_schedules: int
    runs: List[Tuple[Schedule, RunResult]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False

    @property
    def schedules_run(self) -> int:
        return len(self.runs)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self):
        """Violations grouped by kind (dict of kind -> list)."""
        grouped = {}
        for violation in self.violations:
            grouped.setdefault(violation.kind, []).append(violation)
        return grouped

    def summary(self) -> str:
        """One human line: schedules explored and what was found."""
        head = (f"{self.schedules_run} schedules explored "
                f"(preemption bound {self.preemption_bound}"
                f"{', truncated' if self.truncated else ''}): ")
        if self.ok:
            return head + "no violations"
        parts = [f"{len(items)} {kind}"
                 for kind, items in sorted(self.by_kind().items())]
        return head + ", ".join(parts)


def result_violations(schedule, result) -> List[Violation]:
    """The violations a single :class:`RunResult` carries on its own."""
    found = []
    for violation in result.lock_violations:
        found.append(Violation(schedule, "lock-protocol", str(violation)))
    for stale in result.stale_translations:
        found.append(Violation(schedule, "stale-translation", str(stale)))
    for vid in sorted(result.task_errors):
        exc = result.task_errors[vid]
        found.append(Violation(
            schedule, "vcpu-error",
            f"vcpu{vid} died: {type(exc).__name__}: {exc}"))
    return found


def _note_schedule(schedule, new_violations):
    """Trace one explored schedule and any violations it surfaced."""
    if not _trace.enabled():
        return
    _trace.event("schedule", schedule=schedule.describe(),
                 violations=len(new_violations))
    for violation in new_violations:
        _trace.event("violation", kind=violation.kind,
                     detail=violation.detail,
                     schedule=violation.schedule.describe())


def explore(run_schedule: Callable[[Schedule], RunResult], *,
            seed: int = 0,
            preemption_bound: int = 2,
            max_schedules: int = 512,
            crash: Optional[Tuple[int, int]] = None,
            check=None) -> ExplorationResult:
    """Bounded-preemption BFS over schedules.

    ``run_schedule(schedule)`` must rebuild the world from scratch and
    execute the schedule (deterministically — same schedule, same
    result).  ``check(schedule, result)``, if given, yields extra
    ``(kind, detail)`` findings per run (invariant sweeps,
    noninterference) that become :class:`Violation` entries.
    """
    outcome = ExplorationResult(preemption_bound=preemption_bound,
                                max_schedules=max_schedules)
    frontier = deque([Schedule(seed=seed, crash=crash)])
    seen_prefixes = set()
    while frontier:
        if len(outcome.runs) >= max_schedules:
            outcome.truncated = True
            break
        schedule = frontier.popleft()
        result = run_schedule(schedule)
        outcome.runs.append((schedule, result))
        known = len(outcome.violations)
        outcome.violations.extend(result_violations(schedule, result))
        if check is not None:
            outcome.violations.extend(
                Violation(schedule, kind, detail)
                for kind, detail in check(schedule, result))
        _note_schedule(schedule, outcome.violations[known:])
        if len(schedule.preemptions) >= preemption_bound:
            continue
        last = schedule.preemptions[-1][0] if schedule.preemptions else -1
        for decision in result.decisions:
            if decision.index <= last:
                continue
            if decision.chosen_kind not in BRANCH_KINDS:
                continue
            for vid in decision.enabled:
                if vid == decision.chosen:
                    continue
                prefix = result.trace[:decision.index] + (vid,)
                if prefix in seen_prefixes:
                    continue
                seen_prefixes.add(prefix)
                frontier.append(Schedule(
                    seed=seed,
                    preemptions=schedule.preemptions
                    + ((decision.index, vid),),
                    crash=schedule.crash))
    return outcome


@dataclass
class FrontierState:
    """The picklable bookkeeping of a bounded-preemption BFS in flight.

    Everything the wavefront loop mutates lives here — executed runs,
    violations, the FIFO frontier, and the child-dedup prefix set — so
    a durable orchestrator can checkpoint the exploration between waves
    and resume it in another process: :meth:`take_wave` pops the next
    wavefront, :meth:`absorb` replays the exact append/dedup/branch
    bookkeeping of :func:`explore_batched` (which is itself built on
    this class, so resumed-equals-uninterrupted is structural, not
    re-implemented).
    """

    preemption_bound: int
    max_schedules: int
    seed: int = 0
    crash: Optional[Tuple[int, int]] = None
    runs: List[Tuple[Schedule, RunResult]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False
    frontier: deque = field(default_factory=deque)
    seen_prefixes: set = field(default_factory=set)

    @classmethod
    def start(cls, *, seed: int = 0, preemption_bound: int = 2,
              max_schedules: int = 512,
              crash: Optional[Tuple[int, int]] = None) -> "FrontierState":
        """A fresh exploration: the empty schedule on the frontier."""
        state = cls(preemption_bound=preemption_bound,
                    max_schedules=max_schedules, seed=seed, crash=crash)
        state.frontier.append(Schedule(seed=seed, crash=crash))
        return state

    @property
    def done(self) -> bool:
        return self.truncated or not self.frontier

    def take_wave(self, limit: Optional[int] = None) -> List[Schedule]:
        """Pop the next wavefront (empty when the exploration is done).

        Marks the exploration truncated — without popping — when the
        run cap is already met, exactly where the sequential loop's
        truncation check sits.

        ``limit`` caps how many schedules are popped: the multi-campaign
        scheduler runs a frontier in fair-share chunks, and because the
        frontier is FIFO and :meth:`absorb` appends children at the
        back, absorbing a wave chunk-by-chunk visits schedules in
        exactly the order one whole-wave absorb would — the chunked
        exploration's result is identical by construction.
        """
        if not self.frontier:
            return []
        if len(self.runs) >= self.max_schedules:
            self.truncated = True
            return []
        count = min(len(self.frontier),
                    self.max_schedules - len(self.runs))
        if limit is not None:
            count = min(count, max(limit, 0))
        return [self.frontier.popleft() for _ in range(count)]

    def pending(self) -> int:
        """Schedules still eligible to run (frontier capped by the
        remaining ``max_schedules`` budget)."""
        if len(self.runs) >= self.max_schedules:
            return 0
        return min(len(self.frontier),
                   self.max_schedules - len(self.runs))

    def absorb(self, wave: List[Schedule], outputs) -> None:
        """Fold one executed wave back in, enqueueing its children.

        ``outputs`` aligns with ``wave``: ``(result, findings)`` per
        schedule, findings being the extra ``(kind, detail)`` items a
        ``check`` hook would have produced.
        """
        for schedule, (result, findings) in zip(wave, outputs):
            self.runs.append((schedule, result))
            known = len(self.violations)
            self.violations.extend(result_violations(schedule, result))
            self.violations.extend(
                Violation(schedule, kind, detail)
                for kind, detail in findings)
            _note_schedule(schedule, self.violations[known:])
            if len(schedule.preemptions) >= self.preemption_bound:
                continue
            last = (schedule.preemptions[-1][0]
                    if schedule.preemptions else -1)
            for decision in result.decisions:
                if decision.index <= last:
                    continue
                if decision.chosen_kind not in BRANCH_KINDS:
                    continue
                for vid in decision.enabled:
                    if vid == decision.chosen:
                        continue
                    prefix = result.trace[:decision.index] + (vid,)
                    if prefix in self.seen_prefixes:
                        continue
                    self.seen_prefixes.add(prefix)
                    self.frontier.append(Schedule(
                        seed=self.seed,
                        preemptions=schedule.preemptions
                        + ((decision.index, vid),),
                        crash=schedule.crash))

    def result(self) -> ExplorationResult:
        return ExplorationResult(preemption_bound=self.preemption_bound,
                                 max_schedules=self.max_schedules,
                                 runs=self.runs,
                                 violations=self.violations,
                                 truncated=self.truncated)


def explore_batched(run_batch, *,
                    seed: int = 0,
                    preemption_bound: int = 2,
                    max_schedules: int = 512,
                    crash: Optional[Tuple[int, int]] = None
                    ) -> ExplorationResult:
    """:func:`explore`, one BFS wavefront at a time — byte-identical.

    ``run_batch(schedules)`` executes a list of schedules (in any order,
    e.g. fanned out across worker processes) and returns, *aligned with
    its input*, ``(result, findings)`` pairs where ``findings`` are the
    extra ``(kind, detail)`` items a ``check`` hook would have produced.

    Identity with the sequential explorer holds by construction: a
    schedule's children always enqueue *behind* every schedule already
    in the FIFO frontier, so the sequential loop pops the entire current
    frontier before reaching any child generated along the way — which
    is exactly a wavefront.  Runs execute out of order in workers, but
    run results are pure functions of their schedules, and the
    :class:`FrontierState` append/dedup/branch bookkeeping replays in
    frontier order.
    """
    state = FrontierState.start(seed=seed,
                                preemption_bound=preemption_bound,
                                max_schedules=max_schedules, crash=crash)
    while True:
        wave = state.take_wave()
        if not wave:
            break
        state.absorb(wave, run_batch(wave))
    return state.result()


def replay(run_schedule, schedule) -> RunResult:
    """Re-execute one schedule (the standalone-reproduction entry)."""
    return run_schedule(schedule)
