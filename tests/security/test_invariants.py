"""Sec. 5.2 invariants: hold on the correct monitor, and each planted
bug trips exactly the family that guards against it."""

import pytest

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.security import (
    check_all_invariants, check_elrange_isolation, check_enclave_invariants,
    check_epcm_invariant, check_mbuf_invariant, check_pt_residency,
    enclave_translations, host_reachable_hpas,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def two_enclave_world(monitor_cls):
    monitor = monitor_cls(TINY)
    primary_os = monitor.primary_os
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x9999)
    mbuf_a = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf_b = TINY.frame_base(primary_os.reserve_data_frame())
    eid_a = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_a, PAGE)
    eid_b = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_b, PAGE)
    monitor.hc_add_page(eid_a, 16 * PAGE, src)
    monitor.hc_add_page(eid_b, 32 * PAGE, src)
    monitor.hc_init(eid_a)
    monitor.hc_init(eid_b)
    return monitor, eid_a, eid_b


class TestCorrectMonitorHolds:
    def test_all_families_hold_single_enclave(self, enclave_world):
        monitor, _app, _eid = enclave_world
        report = check_all_invariants(monitor)
        assert report.ok, str(report)

    def test_all_families_hold_two_enclaves(self):
        from repro.hyperenclave.monitor import RustMonitor
        monitor, _a, _b = two_enclave_world(RustMonitor)
        report = check_all_invariants(monitor)
        assert report.ok, str(report)

    def test_all_families_hold_after_destroy(self, enclave_world):
        monitor, _app, eid = enclave_world
        monitor.hc_destroy(eid)
        assert check_all_invariants(monitor).ok

    def test_projections_make_sense(self, enclave_world):
        monitor, _app, eid = enclave_world
        translations = enclave_translations(monitor, eid)
        assert 16 * PAGE in translations  # the EPC page
        assert 12 * PAGE in translations  # the mbuf page
        host = host_reachable_hpas(monitor)
        for frame in monitor.layout.secure_frames:
            assert TINY.frame_base(frame) not in host
        for frame in monitor.layout.untrusted_frames:
            assert TINY.frame_base(frame) in host


class TestFig5Case1Aliasing:
    def test_elrange_isolation_trips(self):
        monitor, _a, _b = two_enclave_world(buggy.AliasingMonitor)
        violations = check_elrange_isolation(monitor)
        assert violations and "both reach" in violations[0]

    def test_report_names_the_family(self):
        monitor, _a, _b = two_enclave_world(buggy.AliasingMonitor)
        report = check_all_invariants(monitor)
        assert "elrange-isolation" in report.violated_families()


class TestFig5Case2OutsideElrange:
    def build(self):
        monitor = buggy.OutsideElrangeMonitor(TINY)
        mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
        monitor.hc_add_page(eid, 40 * PAGE, 0)
        monitor.hc_init(eid)
        return monitor

    def test_enclave_invariant_trips(self):
        violations = check_enclave_invariants(self.build())
        assert any("outside ELRANGE maps to" in v for v in violations)

    def test_family_named(self):
        report = check_all_invariants(self.build())
        assert "enclave-invariants" in report.violated_families()


class TestEpcmFamily:
    def test_covert_mapping_detected(self):
        monitor, _app, _eid = build_enclave_world(
            monitor_cls=buggy.NoEpcmRecordMonitor)
        violations = check_epcm_invariant(monitor)
        assert violations and "covert" in violations[0]

    def test_cross_owner_detected_via_alias(self):
        monitor, _a, _b = two_enclave_world(buggy.AliasingMonitor)
        violations = check_epcm_invariant(monitor)
        assert any("owned by" in v for v in violations)


class TestEnclaveInvariantFamily:
    def test_huge_pages_detected(self):
        monitor, _app, _eid = build_enclave_world(
            monitor_cls=buggy.HugePageMonitor)
        violations = check_enclave_invariants(monitor)
        assert any("huge mapping" in v for v in violations)

    def test_mbuf_overlap_detected(self):
        monitor = buggy.MbufOverlapMonitor(TINY)
        mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
        monitor.hc_create(16 * PAGE, 2 * PAGE, 17 * PAGE, mbuf, PAGE)
        violations = check_enclave_invariants(monitor)
        assert any("overlaps ELRANGE" in v for v in violations)

    def test_secure_mbuf_detected(self):
        monitor = buggy.SecureMbufMonitor(TINY)
        epc_pa = TINY.frame_base(monitor.layout.epc_base + 3)
        monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, epc_pa, PAGE)
        violations = check_enclave_invariants(monitor)
        assert any("outside ELRANGE maps to EPC" in v for v in violations)


class TestResidency:
    def test_shallow_copy_detected(self):
        monitor = buggy.ShallowCopyMonitor(TINY)
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        primary_os.app_map_data(app, 16 * PAGE)
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE, 4 * PAGE,
                                   mbuf, PAGE)
        violations = check_pt_residency(monitor)
        assert any("outside the secure page-table pool" in v
                   for v in violations)

    def test_correct_monitor_tables_never_guest_reachable(
            self, enclave_world):
        monitor, _app, _eid = enclave_world
        assert check_pt_residency(monitor) == []


class TestBugFamilyMatrix:
    """The full bug → violated-family matrix, in one place."""

    def test_matrix(self):
        from repro.hyperenclave.monitor import RustMonitor
        expectations = [
            (lambda: two_enclave_world(buggy.AliasingMonitor)[0],
             "elrange-isolation"),
            (lambda: build_enclave_world(
                monitor_cls=buggy.NoEpcmRecordMonitor)[0], "epcm"),
            (lambda: build_enclave_world(
                monitor_cls=buggy.HugePageMonitor)[0],
             "enclave-invariants"),
        ]
        for build, family in expectations:
            report = check_all_invariants(build())
            assert family in report.violated_families(), \
                f"{family} not tripped: {report}"

    def test_register_leak_bugs_invisible_to_invariants(self):
        """LeakyExit/NoScrub keep every page-table invariant — that is
        the point: only noninterference catches them."""
        monitor, _app, eid = build_enclave_world(
            monitor_cls=buggy.LeakyExitMonitor)
        monitor.hc_enter(eid)
        monitor.hc_exit(eid)
        assert check_all_invariants(monitor).ok
