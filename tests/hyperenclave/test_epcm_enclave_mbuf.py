"""EPCM bookkeeping, enclave objects, marshalling buffers."""

import pytest

from repro.errors import EpcmError, HypercallError, HypervisorError
from repro.hyperenclave.constants import MemoryLayout, TINY
from repro.hyperenclave.enclave import Enclave, EnclaveState
from repro.hyperenclave.epcm import Epcm, PageState
from repro.hyperenclave.mbuf import MarshallingBuffer

PAGE = TINY.page_size
LAYOUT = MemoryLayout.default_for(TINY)


class TestEpcm:
    def test_allocate_lowest_free(self):
        epcm = Epcm(LAYOUT)
        frame = epcm.allocate(1, PageState.REG, va=0x100)
        assert frame == LAYOUT.epc_base
        entry = epcm.entry_for_frame(frame)
        assert entry.state is PageState.REG
        assert entry.owner == 1
        assert entry.va == 0x100

    def test_exhaustion(self):
        epcm = Epcm(LAYOUT)
        for _ in range(LAYOUT.epc_size):
            epcm.allocate(1, PageState.REG)
        with pytest.raises(EpcmError, match="exhausted"):
            epcm.allocate(1, PageState.REG)

    def test_record_specific_frame(self):
        epcm = Epcm(LAYOUT)
        frame = LAYOUT.epc_base + 2
        epcm.record(frame, 3, PageState.PT)
        assert epcm.entry_for_frame(frame).owner == 3
        with pytest.raises(EpcmError, match="busy"):
            epcm.record(frame, 4, PageState.REG)

    def test_release_checks_owner(self):
        epcm = Epcm(LAYOUT)
        frame = epcm.allocate(1, PageState.REG)
        with pytest.raises(EpcmError, match="owned by"):
            epcm.release(frame, 2)
        epcm.release(frame, 1)
        assert epcm.entry_for_frame(frame).is_free()
        with pytest.raises(EpcmError, match="already free"):
            epcm.release(frame, 1)

    def test_release_all(self):
        epcm = Epcm(LAYOUT)
        epcm.allocate(1, PageState.REG)
        epcm.allocate(2, PageState.REG)
        epcm.allocate(1, PageState.SECS)
        epcm.release_all(1)
        assert epcm.owned_by(1) == []
        assert len(epcm.owned_by(2)) == 1

    def test_lookup_mapping(self):
        epcm = Epcm(LAYOUT)
        frame = epcm.allocate(1, PageState.REG, va=0x400)
        assert epcm.lookup_mapping(1, 0x400) == frame
        assert epcm.lookup_mapping(1, 0x500) is None
        assert epcm.lookup_mapping(2, 0x400) is None

    def test_free_count_and_snapshot(self):
        epcm = Epcm(LAYOUT)
        assert epcm.free_count() == LAYOUT.epc_size
        epcm.allocate(1, PageState.REG)
        assert epcm.free_count() == LAYOUT.epc_size - 1
        snap = epcm.snapshot()
        assert snap[0] == ("reg", 1, None)


class TestMarshallingBuffer:
    def test_bounds_and_membership(self):
        mbuf = MarshallingBuffer(va_base=4 * PAGE, pa_base=2 * PAGE,
                                 size=PAGE)
        assert mbuf.contains_va(4 * PAGE)
        assert mbuf.contains_va(5 * PAGE - 1)
        assert not mbuf.contains_va(5 * PAGE)
        assert mbuf.contains_pa(2 * PAGE + 8)

    def test_pages_pairing(self):
        mbuf = MarshallingBuffer(va_base=4 * PAGE, pa_base=2 * PAGE,
                                 size=2 * PAGE)
        assert mbuf.pages(TINY) == [(4 * PAGE, 2 * PAGE),
                                    (5 * PAGE, 3 * PAGE)]

    def test_unaligned_pages_rejected(self):
        mbuf = MarshallingBuffer(va_base=5, pa_base=0, size=PAGE)
        with pytest.raises(HypervisorError, match="aligned"):
            mbuf.pages(TINY)

    def test_empty_rejected(self):
        with pytest.raises(HypervisorError):
            MarshallingBuffer(va_base=0, pa_base=0, size=0)

    def test_overlap_predicate(self):
        mbuf = MarshallingBuffer(va_base=4 * PAGE, pa_base=0, size=PAGE)
        assert mbuf.overlaps_va(4 * PAGE, PAGE)
        assert mbuf.overlaps_va(3 * PAGE, 2 * PAGE)
        assert not mbuf.overlaps_va(5 * PAGE, PAGE)

    def test_immutability(self):
        mbuf = MarshallingBuffer(va_base=0, pa_base=0, size=PAGE)
        with pytest.raises(Exception):
            mbuf.va_base = PAGE


class _FakeTable:
    pass


class TestEnclave:
    def make(self, elrange_base=16 * PAGE, mbuf_va=4 * PAGE):
        mbuf = MarshallingBuffer(va_base=mbuf_va, pa_base=0, size=PAGE)
        return Enclave(eid=1, elrange_base=elrange_base,
                       elrange_size=2 * PAGE, mbuf=mbuf,
                       gpt=_FakeTable(), ept=_FakeTable(),
                       gpa_base=elrange_base)

    def test_elrange_membership(self):
        enclave = self.make()
        assert enclave.in_elrange(16 * PAGE)
        assert enclave.in_elrange(18 * PAGE - 1)
        assert not enclave.in_elrange(18 * PAGE)

    def test_elrange_gpa_linear(self):
        enclave = self.make()
        assert enclave.elrange_gpa(16 * PAGE + 8) == 16 * PAGE + 8
        with pytest.raises(HypercallError):
            enclave.elrange_gpa(0)

    def test_mbuf_overlap_rejected_at_construction(self):
        with pytest.raises(HypercallError, match="overlaps"):
            self.make(elrange_base=16 * PAGE, mbuf_va=16 * PAGE)

    def test_lifecycle_guard(self):
        enclave = self.make()
        enclave.require_state(EnclaveState.CREATED)
        with pytest.raises(HypercallError, match="needs"):
            enclave.require_state(EnclaveState.RUNNING)

    def test_measurement_changes_with_content(self):
        a, b = self.make(), self.make()
        a.absorb_measurement(0, (1, 2, 3))
        b.absorb_measurement(0, (1, 2, 4))
        assert a.measurement != b.measurement

    def test_measurement_order_sensitive(self):
        a, b = self.make(), self.make()
        a.absorb_measurement(0, (1,))
        a.absorb_measurement(PAGE, (2,))
        b.absorb_measurement(PAGE, (2,))
        b.absorb_measurement(0, (1,))
        assert a.measurement != b.measurement
