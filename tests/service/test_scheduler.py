"""The multi-campaign scheduler: fairness, identity, budgets, drain.

The two load-bearing properties:

* **verdict identity** — a campaign run in fair-share chunks alongside
  other campaigns produces a result digest identical to the same spec
  run alone through ``run_durable_campaign`` (chunked absorb is
  order-preserving on the FIFO frontier);
* **starvation freedom** — in every planned round, each active
  campaign with pending work is allotted at least one unit, whatever
  the mix of frontier depths (property-tested below).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AdmissionRefused, CampaignNotFound
from repro.service import CampaignSpec, CampaignStore, run_durable_campaign
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    CampaignScheduler,
    _result_digest,
)

SMALL = dict(preemption_bound=1, max_schedules=18)


def scheduler_for(tmp_path, **options) -> CampaignScheduler:
    options.setdefault("workers", 1)
    options.setdefault("round_capacity", 6)
    return CampaignScheduler(str(tmp_path / "svc"), **options)


class TestVerdictIdentity:
    def test_interleaved_campaigns_match_solo_runs(self, tmp_path):
        specs = [CampaignSpec(seed=0, **SMALL),
                 CampaignSpec(seed=1, **SMALL),
                 CampaignSpec(seed=2, preemption_bound=1,
                              max_schedules=9)]
        reference = [
            _result_digest(run_durable_campaign(
                spec, str(tmp_path / f"ref{i}"), workers=1))
            for i, spec in enumerate(specs)]
        sched = scheduler_for(tmp_path)
        ids = [sched.submit(spec, campaign_id=f"c{i}")
               for i, spec in enumerate(specs)]
        sched.run_until_idle()
        for cid, expected in zip(ids, reference):
            status = sched.status(cid)
            assert status["status"] == DONE
            assert status["result_digest"] == expected, cid
        sched.drain()

    def test_store_dir_is_resumable_by_the_cli_layout(self, tmp_path):
        sched = scheduler_for(tmp_path)
        cid = sched.submit(CampaignSpec(**SMALL), campaign_id="byhand")
        sched.run_until_idle()
        sched.drain()
        # The campaign store is a plain CampaignStore: its checkpoint
        # loads with the standard loader and is marked done.
        store = CampaignStore(os.path.join(str(tmp_path / "svc"), cid))
        checkpoint = store.load_checkpoint()
        assert checkpoint is not None and checkpoint.done
        assert os.path.exists(os.path.join(store.root, "result.json"))


class TestFairShare:
    @settings(max_examples=30, deadline=None)
    @given(pendings=st.lists(st.integers(min_value=0, max_value=40),
                             min_size=1, max_size=6),
           capacity=st.integers(min_value=1, max_value=32))
    def test_no_active_campaign_starves(self, pendings, capacity):
        """Every campaign with pending work gets >= 1 unit per round,
        and the plan never exceeds pending work nor (when anyone is
        left wanting) wastes round capacity."""
        class FakeState:
            def __init__(self, pending):
                self._pending = pending
                self.done = pending == 0

            def pending(self):
                return self._pending

            def take_wave(self, limit=None):
                take = min(self._pending, limit)
                self._pending -= take
                return [object() for _ in range(take)]

        class FakeCampaign:
            def __init__(self, index, pending):
                self.campaign_id = f"f{index}"
                self.admission_index = index
                self.units_executed = (index * 7) % 5
                self.state = FakeState(pending)

            def pending_units(self):
                return self.state.pending()

        sched = CampaignScheduler.__new__(CampaignScheduler)
        sched.round_capacity = capacity
        finalized = []
        sched._finalize = finalized.append
        campaigns = [FakeCampaign(i, p) for i, p in enumerate(pendings)]
        plan = sched._plan_round(list(campaigns))
        planned = {c.campaign_id: len(wave) for c, wave in plan}
        total = sum(planned.values())
        share = max(1, capacity // len(campaigns))
        for campaign, pending in zip(campaigns, pendings):
            took = planned.get(campaign.campaign_id, 0)
            if pending > 0:
                assert took >= 1, "a campaign with work was starved"
            assert took <= pending
        # Work stealing: capacity only goes unused when demand is met.
        if total < min(sum(pendings), len(campaigns) * share):
            leftover = [c for c, p in zip(campaigns, pendings)
                        if c.pending_units() > 0]
            assert not leftover or total >= capacity

    def test_lonely_campaign_absorbs_whole_round(self, tmp_path):
        sched = scheduler_for(tmp_path, round_capacity=12)
        cid = sched.submit(CampaignSpec(**SMALL))
        with sched._lock:
            sched._promote()
            plan = sched._plan_round(sched._running())
        # One active campaign: its chunk is the whole round capacity
        # (bounded by its frontier), not 1/max_active of it.
        assert len(plan) == 1
        assert len(plan[0][1]) == min(
            12, plan[0][0].pending_units() + len(plan[0][1]))
        sched.drain()


class TestAdmission:
    def test_queue_bound_refuses_with_retry_hint(self, tmp_path):
        sched = scheduler_for(tmp_path, max_active=1, max_queued=1)
        sched.submit(CampaignSpec(seed=0, **SMALL))
        sched.submit(CampaignSpec(seed=1, **SMALL))
        with pytest.raises(AdmissionRefused) as exc:
            sched.submit(CampaignSpec(seed=2, **SMALL))
        assert exc.value.retry_after is not None
        sched.drain()

    def test_draining_refuses_without_retry_hint(self, tmp_path):
        sched = scheduler_for(tmp_path)
        sched.drain()
        with pytest.raises(AdmissionRefused) as exc:
            sched.submit(CampaignSpec(**SMALL))
        assert exc.value.retry_after is None

    def test_resubmit_is_idempotent(self, tmp_path):
        sched = scheduler_for(tmp_path)
        first = sched.submit(CampaignSpec(**SMALL), campaign_id="same")
        again = sched.submit(CampaignSpec(**SMALL), campaign_id="same")
        assert first == again == "same"
        assert len(sched.list_campaigns()) == 1
        sched.drain()

    def test_hostile_campaign_id_rejected(self, tmp_path):
        sched = scheduler_for(tmp_path)
        with pytest.raises(ValueError):
            sched.submit(CampaignSpec(**SMALL),
                         campaign_id="../escape")
        sched.drain()

    def test_dot_only_ids_rejected_without_touching_parent(
            self, tmp_path):
        """'.' and '..' pass the charset filter but resolve to the
        store root (or its parent) — they must be refused before any
        store file is created or removed outside the root."""
        sched = scheduler_for(tmp_path)
        for hostile in (".", "..", "..."):
            with pytest.raises(ValueError):
                sched.submit(CampaignSpec(**SMALL),
                             campaign_id=hostile)
        # Nothing escaped into the root itself or its parent.
        assert not (tmp_path / "campaign.json").exists()
        assert not (tmp_path / "svc" / "campaign.json").exists()
        sched.drain()

    def test_non_numeric_budgets_rejected(self, tmp_path):
        """Budgets arrive as arbitrary JSON; a non-numeric value stored
        raw would make every budget check raise and wedge the loop."""
        sched = scheduler_for(tmp_path)
        spec = CampaignSpec(**SMALL)
        with pytest.raises(ValueError, match="wall_budget"):
            sched.submit(spec, wall_budget="abc")
        with pytest.raises(ValueError, match="wall_budget"):
            sched.submit(spec, wall_budget=-1.0)
        with pytest.raises(ValueError, match="wave_budget"):
            sched.submit(spec, wave_budget=2.5)
        with pytest.raises(ValueError, match="wave_budget"):
            sched.submit(spec, wave_budget=True)
        assert sched.list_campaigns() == []
        sched.drain()

    def test_unknown_campaign_is_typed(self, tmp_path):
        sched = scheduler_for(tmp_path)
        with pytest.raises(CampaignNotFound):
            sched.status("ghost")
        with pytest.raises(CampaignNotFound):
            sched.cancel("ghost")
        with pytest.raises(CampaignNotFound):
            sched.artifacts("ghost")
        sched.drain()


class TestBudgets:
    def test_wave_budget_fails_typed_but_resumable(self, tmp_path):
        sched = scheduler_for(tmp_path, round_capacity=2)
        cid = sched.submit(CampaignSpec(preemption_bound=2,
                                        max_schedules=60),
                           wave_budget=2)
        sched.run_until_idle()
        status = sched.status(cid)
        assert status["status"] == FAILED
        assert "wave budget" in status["error"]
        assert status["resumable"]
        sched.drain()
        # The checkpoint survives: re-submitting the same id with no
        # wave budget (the "resume with a larger budget" verb) runs
        # the campaign to the clean solo verdict.
        reference = _result_digest(run_durable_campaign(
            CampaignSpec(preemption_bound=2, max_schedules=60),
            str(tmp_path / "ref"), workers=1))
        again = CampaignScheduler(str(tmp_path / "svc"), workers=1,
                                  round_capacity=8)
        again.recover()
        assert again.status(cid)["status"] == FAILED
        assert again.submit(CampaignSpec(preemption_bound=2,
                                         max_schedules=60),
                            campaign_id=cid) == cid
        again.run_until_idle()
        final = again.status(cid)
        assert final["status"] == DONE
        assert final["result_digest"] == reference
        again.drain()

    def test_wall_budget_fails_typed(self, tmp_path):
        sched = scheduler_for(tmp_path)
        # Smallest admissible budget (zero is rejected as untyped):
        # activation alone takes longer, so the first round expires it.
        cid = sched.submit(CampaignSpec(**SMALL), wall_budget=1e-9)
        sched.run_until_idle()
        status = sched.status(cid)
        assert status["status"] == FAILED
        assert "wall-clock budget" in status["error"]
        sched.drain()


class TestCancelAndDrain:
    def test_cancel_queued_campaign(self, tmp_path):
        sched = scheduler_for(tmp_path, max_active=1)
        sched.submit(CampaignSpec(seed=0, **SMALL), campaign_id="run")
        sched.submit(CampaignSpec(seed=1, **SMALL), campaign_id="wait")
        assert sched.cancel("wait")["status"] == CANCELLED
        sched.run_until_idle()
        assert sched.status("run")["status"] == DONE
        assert sched.status("wait")["status"] == CANCELLED
        sched.drain()

    def test_drain_interrupts_and_reports_resumable(self, tmp_path):
        sched = scheduler_for(tmp_path, round_capacity=4)
        cid = sched.submit(CampaignSpec(preemption_bound=2,
                                        max_schedules=80))
        # A couple of rounds, then drain mid-campaign.
        sched._step(block=False)
        sched._step(block=False)
        report = sched.drain()
        assert report[cid]["status"] == INTERRUPTED
        assert report[cid]["resumable"]
        assert report[cid]["waves"] >= 1

    def test_drained_work_resumes_to_identical_verdict(self, tmp_path):
        spec = CampaignSpec(preemption_bound=2, max_schedules=40)
        reference = _result_digest(run_durable_campaign(
            spec, str(tmp_path / "ref"), workers=1))
        sched = scheduler_for(tmp_path, round_capacity=4)
        cid = sched.submit(spec)
        sched._step(block=False)
        sched._step(block=False)
        sched.drain()
        again = CampaignScheduler(str(tmp_path / "svc"), workers=1,
                                  round_capacity=4)
        assert again.recover() == [cid]
        again.run_until_idle()
        final = again.status(cid)
        assert final["status"] == DONE
        assert final["resumed"]
        assert final["result_digest"] == reference
        again.drain()

    def test_recover_bypasses_admission_bound(self, tmp_path):
        """Recovered campaigns are pre-existing obligations: a restart
        must re-admit every incomplete store even when there are more
        of them than the restarted scheduler's admission bound."""
        sched = scheduler_for(tmp_path, max_active=2, max_queued=2)
        ids = [sched.submit(CampaignSpec(seed=i, **SMALL),
                            campaign_id=f"r{i}") for i in range(4)]
        sched.drain()               # nothing ran: four incomplete stores
        again = CampaignScheduler(str(tmp_path / "svc"), workers=1,
                                  max_active=1, max_queued=1,
                                  round_capacity=6)
        assert again.recover() == ids   # 4 > bound of 2, no refusal
        again.run_until_idle()
        for cid in ids:
            assert again.status(cid)["status"] == DONE
        again.drain()

    def test_recover_skips_corrupt_budget_metadata(self, tmp_path):
        """A bad budget persisted by an older daemon downgrades to a
        recover-skip; it must not crash startup or wedge the loop."""
        import json
        sched = scheduler_for(tmp_path)
        good = sched.submit(CampaignSpec(seed=0, **SMALL))
        sched.drain()
        poisoned = tmp_path / "svc" / "poisoned"
        poisoned.mkdir()
        (poisoned / "campaign.json").write_text(json.dumps({
            "id": "poisoned",
            "spec": CampaignSpec(seed=1, **SMALL).payload(),
            "wall_budget": "abc",
            "wave_budget": None}))
        again = CampaignScheduler(str(tmp_path / "svc"), workers=1,
                                  round_capacity=6)
        assert again.recover() == [good]
        with pytest.raises(CampaignNotFound):
            again.status("poisoned")
        again.run_until_idle()
        assert again.status(good)["status"] == DONE
        again.drain()

    def test_recover_registers_finished_campaigns_read_only(
            self, tmp_path):
        sched = scheduler_for(tmp_path)
        cid = sched.submit(CampaignSpec(**SMALL))
        sched.run_until_idle()
        digest = sched.status(cid)["result_digest"]
        sched.drain()
        again = CampaignScheduler(str(tmp_path / "svc"), workers=1)
        assert again.recover() == []      # nothing needed re-running
        status = again.status(cid)
        assert status["status"] == DONE
        assert status["result_digest"] == digest
        again.drain()


class TestLiveness:
    def test_health_reports_ok_then_draining(self, tmp_path):
        sched = scheduler_for(tmp_path)
        assert sched.health()["status"] == "ok"
        sched.drain()
        assert sched.health()["status"] == "draining"

    def test_background_thread_runs_campaign_to_done(self, tmp_path):
        import time
        sched = scheduler_for(tmp_path)
        cid = sched.submit(CampaignSpec(**SMALL))
        sched.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if sched.status(cid)["status"] == DONE:
                break
            time.sleep(0.05)
        assert sched.status(cid)["status"] == DONE
        sched.drain()


class TestViolationArtifacts:
    def test_planted_bug_cuts_replayable_bundles(self, tmp_path):
        from repro.obs.provenance import ProvenanceBundle, replay_bundle

        spec = CampaignSpec(
            monitor="repro.hyperenclave.buggy:MissingLockMonitor",
            check_ni=False, preemption_bound=1, max_schedules=30)
        sched = scheduler_for(tmp_path)
        cid = sched.submit(spec)
        sched.run_until_idle()
        status = sched.status(cid)
        assert status["status"] == DONE and not status["ok"]
        artifacts = sched.artifacts(cid)
        assert len(artifacts) == status["violations"]
        path = os.path.join(str(tmp_path / "svc"), cid, "artifacts",
                            artifacts[0]["name"])
        outcome = replay_bundle(ProvenanceBundle.load(path))
        assert outcome.matched, outcome.summary()
        sched.drain()
