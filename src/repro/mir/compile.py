"""Per-CFG precompilation of mirlight functions.

The naive interpreter (:mod:`repro.mir.interp`) re-discovers the shape
of every statement on every step: an ``isinstance`` ladder for the
statement kind, another for the rvalue, one per operand, one per
projection, and a fresh :class:`~repro.mir.path.Path` for every global
base it touches.  For the checking workloads (co-simulation sweeps run
the same 49 functions tens of thousands of times) that discovery work
dominates the runtime even though its outcome is identical on every
execution.

This module walks each function **once** and compiles every statement
and terminator into a closure ``op(interp, frame)`` with the discovery
pre-resolved:

* statement/rvalue/operand kinds become direct closure calls,
* arithmetic dispatches through per-op lambdas instead of an if-ladder,
* global base paths are constructed once per function, not per access,
* bare temporary reads/writes go straight at the ``TempEnv`` dict,
* the common ``temp.field...`` projection chains are unrolled.

The artifact is cached on ``function.__dict__['_compiled']`` keyed by
the owning program (functions are rebuilt with their program; a function
shared across programs with different globals recompiles).  Compilation
assumes the CFG is not mutated afterwards — true for every corpus
builder, which constructs fresh ``Function`` objects per program.

**Semantic contract.**  Every closure reproduces the naive path's
observable behaviour exactly: same values, same abstract-state
transitions, same exception types and messages, and — load-bearing for
the checking harness — the same *step accounting* (the driver loop in
:meth:`~repro.mir.interp.Interpreter.call` still charges one fuel unit
per statement including no-ops, exactly like :meth:`step`).  The
symbolic bench asserts byte-identical verdicts over the whole corpus
with this layer on and off.

The cheap structural pieces are shared with the symbolic executor via
:func:`block_plan` — both engines iterate ``(statements, terminator,
n_statements)`` tuples resolved once per block instead of re-reading
the AST maps each step.
"""

from repro.errors import (
    MirAssertError,
    MirRuntimeError,
    MirTypeError,
)
from repro.mir import ast
from repro.mir.ast import BinOp, CastKind, UnOp
from repro.mir.path import Path
from repro.mir.value import (
    Aggregate,
    BoolValue,
    FnValue,
    Value,
    mk_bool,
    mk_int,
    mk_tuple,
    unit,
)

_MISSING = object()


# ---------------------------------------------------------------------------
# Raw arithmetic, one lambda per operator (mirrors interp._arith_raw)
# ---------------------------------------------------------------------------


def _raw_div(lhs, rhs):
    a, b = lhs.value, rhs.value
    if b == 0:
        raise MirAssertError("attempt to divide by zero")
    return int(a / b) if (a < 0) != (b < 0) else a // b


def _raw_rem(lhs, rhs):
    a, b = lhs.value, rhs.value
    if b == 0:
        raise MirAssertError(
            "attempt to calculate remainder with divisor zero")
    return a - b * (int(a / b) if (a < 0) != (b < 0) else a // b)


_RAW_ARITH = {
    BinOp.ADD: lambda lhs, rhs: lhs.value + rhs.value,
    BinOp.SUB: lambda lhs, rhs: lhs.value - rhs.value,
    BinOp.MUL: lambda lhs, rhs: lhs.value * rhs.value,
    BinOp.DIV: _raw_div,
    BinOp.REM: _raw_rem,
    BinOp.BITAND: lambda lhs, rhs: lhs.as_unsigned & rhs.as_unsigned,
    BinOp.BITOR: lambda lhs, rhs: lhs.as_unsigned | rhs.as_unsigned,
    BinOp.BITXOR: lambda lhs, rhs: lhs.as_unsigned ^ rhs.as_unsigned,
    BinOp.SHL: lambda lhs, rhs: lhs.as_unsigned << (
        rhs.as_unsigned % lhs.ty.width),
    BinOp.SHR: lambda lhs, rhs: lhs.as_unsigned >> (
        rhs.as_unsigned % lhs.ty.width),
}

_RAW_CMP = {
    BinOp.EQ: lambda a, b: a == b,
    BinOp.NE: lambda a, b: a != b,
    BinOp.LT: lambda a, b: a < b,
    BinOp.LE: lambda a, b: a <= b,
    BinOp.GT: lambda a, b: a > b,
    BinOp.GE: lambda a, b: a >= b,
}


def _as_switch_int(value):
    if isinstance(value, BoolValue):
        return 1 if value.value else 0
    try:
        return value.as_unsigned
    except AttributeError:
        raise MirTypeError(f"switchInt/assert on non-integer {value!r}")


# ---------------------------------------------------------------------------
# Places
# ---------------------------------------------------------------------------
#
# A compiled place is a (reader, writer) pair of closures.  Three tiers:
# bare temporaries hit the TempEnv dict directly; temp-rooted chains of
# static field projections (and downcasts) are unrolled; everything else
# (locals, derefs, dynamic indices) falls back to the interpreter's
# generic resolver, which stays the single source of truth for the
# exotic cases.

_PROJ_FIELD = 0
_PROJ_DOWNCAST = 1


def _simple_steps(place):
    """The unrolled (kind, payload) steps for a temp-friendly projection
    chain, or None if the chain needs the generic resolver."""
    steps = []
    for proj in place.projections:
        if isinstance(proj, (ast.FieldProj, ast.ConstantIndex)):
            steps.append((_PROJ_FIELD, proj.index))
        elif isinstance(proj, ast.Downcast):
            steps.append((_PROJ_DOWNCAST, proj.variant))
        else:
            return None
    return tuple(steps)


def _compile_place(place, function, program):
    var = place.var
    if function.is_local_var(var):
        # Locals live in object memory pinned to the frame — rare in the
        # corpus (the pure fragment has none); generic path.
        return (lambda interp, frame: interp._read_place(frame, place),
                lambda interp, frame, value:
                    interp._write_place(frame, place, value))
    is_global = var in program.globals_
    gbase = Path.global_(var).base
    steps = _simple_steps(place)

    def read(interp, frame):
        root = frame.env._values.get(var, _MISSING)
        if root is _MISSING:
            if is_global or interp.memory.has_base(gbase):
                return interp._read_place(frame, place)
            raise MirRuntimeError(f"read of uninitialised temporary {var!r}")
        for kind, payload in steps:
            if kind == _PROJ_FIELD:
                root = root.expect_aggregate("temp projection").field(payload)
            else:
                live = root.expect_aggregate("downcast")
                if live.discriminant != payload:
                    raise MirRuntimeError(
                        f"downcast to variant {payload} but live "
                        f"discriminant is {live.discriminant}")
        return root

    if steps is None:
        read = (lambda interp, frame: interp._read_place(frame, place))

    if place.is_bare:
        def write(interp, frame, value):
            env = frame.env
            if var not in env._values and (
                    is_global or interp.memory.has_base(gbase)):
                interp._write_place(frame, place, value)
                return
            env.write(var, value)  # keeps the Value type check
    else:
        def write(interp, frame, value):
            interp._write_place(frame, place, value)

    return read, write


def _compile_operand(operand, function, program):
    if isinstance(operand, (ast.Copy, ast.Move)):
        return _compile_place(operand.place, function, program)[0]
    if isinstance(operand, ast.Constant):
        value = operand.value
        return lambda interp, frame: value
    def unknown(interp, frame):
        raise MirRuntimeError(f"unknown operand {operand!r}")
    return unknown


# ---------------------------------------------------------------------------
# Rvalues
# ---------------------------------------------------------------------------


def _compile_rvalue(rvalue, function, program):
    if isinstance(rvalue, ast.Use):
        return _compile_operand(rvalue.operand, function, program)
    if isinstance(rvalue, (ast.Ref, ast.AddressOf)):
        place = rvalue.place
        return lambda interp, frame: interp._eval_ref(frame, place)
    if isinstance(rvalue, ast.BinaryOp):
        return _compile_binop(rvalue, function, program)
    if isinstance(rvalue, ast.CheckedBinaryOp):
        return _compile_checked_binop(rvalue, function, program)
    if isinstance(rvalue, ast.UnaryOp):
        operand = _compile_operand(rvalue.operand, function, program)
        if rvalue.op is UnOp.NOT:
            def unop_not(interp, frame):
                value = operand(interp, frame)
                if isinstance(value, BoolValue):
                    return mk_bool(not value.value)
                as_int = value.expect_int("unop !")
                return mk_int(~as_int.as_unsigned, as_int.ty)
            return unop_not
        if rvalue.op is UnOp.NEG:
            def unop_neg(interp, frame):
                as_int = operand(interp, frame).expect_int("unop -")
                return mk_int(-as_int.value, as_int.ty)
            return unop_neg
        def unop_unknown(interp, frame):
            raise MirRuntimeError(f"unknown unary op {rvalue.op!r}")
        return unop_unknown
    if isinstance(rvalue, ast.Cast):
        operand = _compile_operand(rvalue.operand, function, program)
        cast = rvalue
        if cast.kind is CastKind.INT_TO_INT:
            ty = cast.ty
            return lambda interp, frame: mk_int(
                operand(interp, frame).expect_int("cast").value, ty)
        if cast.kind is CastKind.BOOL_TO_INT:
            ty = cast.ty
            return lambda interp, frame: mk_int(
                1 if operand(interp, frame).expect_bool("cast").value else 0,
                ty)
        def cast_other(interp, frame):
            return interp._eval_cast(cast, operand(interp, frame))
        return cast_other
    if isinstance(rvalue, ast.AggregateRv):
        operands = tuple(_compile_operand(o, function, program)
                         for o in rvalue.operands)
        discriminant = (rvalue.variant
                        if rvalue.kind is ast.AggregateKind.VARIANT else 0)
        return lambda interp, frame: Aggregate(
            discriminant, tuple(o(interp, frame) for o in operands))
    if isinstance(rvalue, ast.Repeat):
        operand = _compile_operand(rvalue.operand, function, program)
        count = rvalue.count
        return lambda interp, frame: Aggregate(
            0, (operand(interp, frame),) * count)
    if isinstance(rvalue, ast.Len):
        read = _compile_place(rvalue.place, function, program)[0]
        return lambda interp, frame: mk_int(
            len(read(interp, frame).expect_aggregate("Len")))
    if isinstance(rvalue, ast.Discriminant):
        read = _compile_place(rvalue.place, function, program)[0]
        return lambda interp, frame: mk_int(
            read(interp, frame).expect_aggregate("Discriminant").discriminant)
    if isinstance(rvalue, ast.CopyForDeref):
        return _compile_place(rvalue.place, function, program)[0]
    def generic(interp, frame):
        return interp._eval_rvalue(frame, rvalue)
    return generic


def _compile_binop(rvalue, function, program):
    left = _compile_operand(rvalue.left, function, program)
    right = _compile_operand(rvalue.right, function, program)
    op = rvalue.op
    raw_cmp = _RAW_CMP.get(op)
    if raw_cmp is not None:
        message = f"compare {op.value}"
        def binop_cmp(interp, frame):
            lv = left(interp, frame)
            rv = right(interp, frame)
            if isinstance(lv, BoolValue) and isinstance(rv, BoolValue):
                return mk_bool(raw_cmp(lv.value, rv.value))
            return mk_bool(raw_cmp(lv.expect_int(message).value,
                                   rv.expect_int(message).value))
        return binop_cmp
    raw = _RAW_ARITH.get(op)
    if raw is None:
        def binop_unknown(interp, frame):
            raise MirRuntimeError(f"unknown arithmetic op {op!r}")
        return binop_unknown
    message = f"binop {op.value}"
    def binop_arith(interp, frame):
        lhs = left(interp, frame).expect_int(message)
        rhs = right(interp, frame).expect_int(message)
        return mk_int(raw(lhs, rhs), lhs.ty)
    return binop_arith


def _compile_checked_binop(rvalue, function, program):
    left = _compile_operand(rvalue.left, function, program)
    right = _compile_operand(rvalue.right, function, program)
    op = rvalue.op
    raw = _RAW_ARITH.get(op)
    message = f"checked {op.value}"
    def checked(interp, frame):
        lhs = left(interp, frame).expect_int(message)
        rhs = right(interp, frame).expect_int(message)
        if raw is None:
            raise MirRuntimeError(f"unknown arithmetic op {op!r}")
        value = raw(lhs, rhs)
        return mk_tuple(mk_int(value, lhs.ty),
                        mk_bool(not lhs.ty.contains(value)))
    return checked


# ---------------------------------------------------------------------------
# Statements and terminators
# ---------------------------------------------------------------------------


def _noop(interp, frame):
    pass


def _compile_statement(stmt, function, program):
    if isinstance(stmt, ast.Assign):
        rvalue = _compile_rvalue(stmt.rvalue, function, program)
        write = _compile_place(stmt.place, function, program)[1]
        return lambda interp, frame: write(
            interp, frame, rvalue(interp, frame))
    if isinstance(stmt, ast.SetDiscriminant):
        read, write = _compile_place(stmt.place, function, program)
        variant = stmt.variant
        def set_discriminant(interp, frame):
            agg = read(interp, frame).expect_aggregate("SetDiscriminant")
            write(interp, frame, agg.with_discriminant(variant))
        return set_discriminant
    if isinstance(stmt, (ast.StorageLive, ast.StorageDead, ast.Nop)):
        return _noop
    def unknown(interp, frame):
        raise MirRuntimeError(f"unknown statement {stmt!r}")
    return unknown


def _compile_terminator(term, function, program):
    if isinstance(term, (ast.Goto, ast.Drop)):
        target = term.target
        return lambda interp, frame: frame.jump(target)
    if isinstance(term, ast.SwitchInt):
        operand = _compile_operand(term.operand, function, program)
        # First matching target wins, like the naive linear scan.
        table = {}
        for value, label in term.targets:
            table.setdefault(value, label)
        otherwise = term.otherwise
        def switch(interp, frame):
            scrutinee = _as_switch_int(operand(interp, frame))
            frame.jump(table.get(scrutinee, otherwise))
        return switch
    if isinstance(term, ast.Return):
        return lambda interp, frame: interp._exec_return(frame)
    if isinstance(term, ast.Assert):
        operand = _compile_operand(term.cond, function, program)
        expected, message, target = term.expected, term.msg, term.target
        def assert_(interp, frame):
            truth = _as_switch_int(operand(interp, frame)) != 0
            if truth != expected:
                raise MirAssertError(message, frame.function.name,
                                     frame.block)
            frame.jump(target)
        return assert_
    if isinstance(term, ast.Call):
        func = _compile_operand(term.func, function, program)
        args = tuple(_compile_operand(a, function, program)
                     for a in term.args)
        write_dest = _compile_place(term.dest, function, program)[1]
        dest, target = term.dest, term.target
        def call(interp, frame):
            fn_value = func(interp, frame)
            if not isinstance(fn_value, FnValue):
                raise MirTypeError(
                    f"call through non-function value {fn_value!r}")
            values = tuple(a(interp, frame) for a in args)
            trusted = interp._trusted.get(fn_value.name)
            if trusted is not None:
                ret, interp.absstate = trusted.spec(values, interp.absstate)
                write_dest(interp, frame,
                           ret if ret is not None else unit())
                frame.jump(target)
                return
            interp._push_frame(fn_value.name, values,
                               dest=dest, return_to=target)
        return call
    def unknown(interp, frame):
        raise MirRuntimeError(f"unknown terminator {term!r}")
    return unknown


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def compiled_blocks(function, program):
    """The compiled artifact for ``function``: a dict mapping block
    label to ``(statement_closures, terminator_closure, n_statements)``.

    Cached on the function object, keyed by the owning program.
    """
    cached = function.__dict__.get("_compiled")
    if cached is not None and cached[0] is program:
        return cached[1]
    artifact = {}
    for label, block in function.blocks.items():
        closures = tuple(_compile_statement(s, function, program)
                         for s in block.statements)
        terminator = _compile_terminator(block.terminator, function, program)
        artifact[label] = (closures, terminator, len(closures))
    function.__dict__["_compiled"] = (program, artifact)
    return artifact


def block_plan(function):
    """The structural per-block plan shared with the symbolic executor:
    label -> ``(statements, terminator, n_statements)``.

    Pure AST restructuring (no program-dependent resolution), so it is
    cached unconditionally on the function.
    """
    cached = function.__dict__.get("_block_plan")
    if cached is not None:
        return cached
    plan = {
        label: (block.statements, block.terminator, len(block.statements))
        for label, block in function.blocks.items()
    }
    function.__dict__["_block_plan"] = plan
    return plan
