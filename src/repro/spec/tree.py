"""The high (tree) specification of the paging functions.

"Entries do not store an indirect index to the next page table, rather
they contain the next page table directly ... Such nesting constitutes a
tree-shaped view of page tables."  (Sec. 4.1)

Because subtables are *contained*, two entries cannot share an
intermediate table — aliasing is unrepresentable — and installing a
mapping is a local functional update, which is exactly why the higher
layers (invariants, noninterference) prefer this view.

All functions are pure: tables in, tables out.
"""

from typing import List, Optional, Tuple

from repro.errors import PagingError, SpecError
from repro.spec.pte_record import PTERecord, TreeTable


def tree_empty(config) -> TreeTable:
    """An empty root table."""
    return TreeTable.empty(config.levels)


def tree_walk(tree, va, config):
    """``(records, terminal, huge_level)``: the visited PTERecords."""
    va = config.canonical_va(va)
    records = []
    table = tree
    for level in range(config.levels, 0, -1):
        record = table.get(config.entry_index(va, level))
        records.append(record)
        if record is None:
            return records, None, 1
        if level == 1:
            if not record.is_terminal:
                raise SpecError("level-1 record carries a nested table")
            return records, record, 1
        if record.is_huge:
            return records, record, level
        if record.is_terminal:
            raise SpecError(
                f"non-huge intermediate record at level {level} has no "
                f"nested table")
        table = record.content
    raise SpecError("tree walk fell off the hierarchy")


def tree_map_page(tree, va, paddr, flags, config,
                  new_table_addrs=None) -> TreeTable:
    """Install ``va -> paddr``; returns the new tree.

    ``new_table_addrs`` optionally supplies the physical addresses the
    *implementation* would give newly created intermediate tables (an
    iterator).  The tree semantics never follow addresses, but carrying
    them lets the refinement relation compare intermediate entries
    against flat memory bit-for-bit.
    """
    va = config.canonical_va(va)
    if config.page_offset(va) or config.page_offset(paddr):
        raise PagingError("tree spec: unaligned mapping")
    addr_iter = iter(new_table_addrs) if new_table_addrs is not None else None
    return _map_into(tree, config.levels, va, paddr, flags, config,
                     addr_iter)


def _map_into(table, level, va, paddr, flags, config, addr_iter):
    index = config.entry_index(va, level)
    record = table.get(index)
    if level == 1:
        if record is not None:
            raise PagingError("tree spec: va already mapped")
        return table.set(index, PTERecord(addr=paddr, flags=flags,
                                          spec=config.arch))
    if record is None:
        addr = next(addr_iter) if addr_iter is not None else 0
        child = TreeTable.empty(level - 1)
        child = _map_into(child, level - 1, va, paddr, flags, config,
                          addr_iter)
        return table.set(index, PTERecord(
            addr=addr, flags=config.arch.table_flags(), content=child,
            spec=config.arch))
    if record.is_huge:
        raise PagingError("tree spec: huge page blocks mapping")
    if record.is_terminal:
        raise SpecError("intermediate record has no nested table")
    child = _map_into(record.content, level - 1, va, paddr, flags, config,
                      addr_iter)
    return table.set(index, record.with_content(child))


def tree_map_huge(tree, va, paddr, level, flags, config,
                  new_table_addrs=None) -> TreeTable:
    """Install a block mapping at ``level`` — the tree-side analog of
    :meth:`PageTable.map_huge`, constrained to the architecture's
    supported block levels."""
    va = config.canonical_va(va)
    spec = config.arch
    if level not in spec.block_levels:
        raise PagingError(
            f"tree spec: level {level} is not a supported block level "
            f"on {spec.name}")
    span = config.level_span(level)
    if va % span or paddr % span:
        raise PagingError("tree spec: unaligned block mapping")
    addr_iter = iter(new_table_addrs) if new_table_addrs is not None else None
    block_flags = spec.to_block(flags | spec.leaf_flags())
    return _map_block_into(tree, config.levels, level, va, paddr,
                           block_flags, config, addr_iter)


def _map_block_into(table, level, target, va, paddr, flags, config,
                    addr_iter):
    index = config.entry_index(va, level)
    record = table.get(index)
    if level == target:
        if record is not None:
            raise PagingError("tree spec: va already mapped")
        return table.set(index, PTERecord(addr=paddr, flags=flags,
                                          spec=config.arch))
    if record is None:
        addr = next(addr_iter) if addr_iter is not None else 0
        child = TreeTable.empty(level - 1)
        child = _map_block_into(child, level - 1, target, va, paddr,
                                flags, config, addr_iter)
        return table.set(index, PTERecord(
            addr=addr, flags=config.arch.table_flags(), content=child,
            spec=config.arch))
    if record.is_huge:
        raise PagingError("tree spec: huge page blocks mapping")
    if record.is_terminal:
        raise SpecError("intermediate record has no nested table")
    child = _map_block_into(record.content, level - 1, target, va, paddr,
                            flags, config, addr_iter)
    return table.set(index, record.with_content(child))


def tree_unmap(tree, va, config) -> TreeTable:
    """Clear the terminal record covering ``va`` (intermediates stay)."""
    va = config.canonical_va(va)
    return _unmap_from(tree, config.levels, va, config)


def _unmap_from(table, level, va, config):
    index = config.entry_index(va, level)
    record = table.get(index)
    if record is None:
        raise PagingError("tree spec: va not mapped")
    if level == 1 or record.is_huge:
        return table.unset(index)
    child = _unmap_from(record.content, level - 1, va, config)
    return table.set(index, record.with_content(child))


def tree_query(tree, va, config) -> Optional[Tuple[int, int]]:
    """(paddr, flags) for va's terminal record, or None."""
    _, terminal, _ = tree_walk(tree, va, config)
    if terminal is None:
        return None
    return terminal.addr, terminal.flags


def tree_mappings(tree, config) -> List[Tuple[int, int, int, int]]:
    """All terminal mappings as ``(va, paddr, size, flags)``."""
    found = []
    _collect(tree, config.levels, 0, config, found)
    return found


def _collect(table, level, va_prefix, config, found):
    span = config.level_span(level)
    for index in table.present_indices():
        record = table.get(index)
        va = va_prefix + index * span
        if level == 1 or record.is_huge:
            found.append((va, record.addr, span, record.flags))
        else:
            _collect(record.content, level - 1, va, config, found)


def tree_table_count(tree) -> int:
    """Number of tables in the tree (root included) — the tree-side
    analog of ``PageTable.table_frames`` for refinement checks."""
    count = 1
    for index in tree.present_indices():
        record = tree.get(index)
        if record is not None and not record.is_terminal:
            count += tree_table_count(record.content)
    return count
