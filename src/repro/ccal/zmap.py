"""ZMap — a persistent total map with a default value.

The paper's tree-shaped page-table specification stores child tables in
Coq's ``ZMap`` ("as page tables are just map from indices to entries,
content will simply be a ZMap", Sec. 4.1).  This is the Python analog: an
immutable integer-keyed map that is *total* — reading an absent key
yields the default — and functionally updatable, so abstract states built
from it compare by value.
"""


class ZMap:
    """Immutable total map ``int -> value`` with a default."""

    __slots__ = ("_default", "_entries")

    def __init__(self, default=None, entries=None):
        self._default = default
        self._entries = dict(entries) if entries else {}
        # Normalise: storing the default explicitly would break equality.
        for key in [k for k, v in self._entries.items() if v == default]:
            del self._entries[key]

    @property
    def default(self):
        return self._default

    def get(self, key):
        return self._entries.get(key, self._default)

    __getitem__ = get

    def set(self, key, value):
        """Return a new ZMap with ``key`` bound to ``value``."""
        entries = dict(self._entries)
        if value == self._default:
            entries.pop(key, None)
        else:
            entries[key] = value
        new = ZMap.__new__(ZMap)
        new._default = self._default
        new._entries = entries
        return new

    def unset(self, key):
        """Return a new ZMap with ``key`` back at the default."""
        return self.set(key, self._default)

    def keys(self):
        """Keys bound to non-default values, sorted for determinism."""
        return sorted(self._entries)

    def items(self):
        return [(k, self._entries[k]) for k in self.keys()]

    def is_default(self, key):
        return key not in self._entries

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def __eq__(self, other):
        if not isinstance(other, ZMap):
            return NotImplemented
        return (self._default == other._default
                and self._entries == other._entries)

    def __hash__(self):
        return hash((self._default,
                     frozenset(self._entries.items())))

    def __repr__(self):
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.items())
        return f"ZMap(default={self._default!r}, {{{inner}}})"
