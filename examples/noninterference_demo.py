#!/usr/bin/env python3
"""Theorem 5.1, the 41-vs-42 story from the paper, executed.

"suppose there is some other enclave q which has some secret value in
one of its EPC pages ... a state σ1 where q's secret is 41 and a state
σ2 where the secret is 42 are indistinguishable [to p]. If there were a
security flaw ... p could run a program to somehow learn the secret
value and load it into a register ... the theorem tells us that there is
no such program."

We build the two worlds (secret 41 vs 42), run the same adversarial
trace in both, and check indistinguishability after every step — first
on the correct monitor (no violation), then on LeakyExitMonitor, where
the theorem checker produces the exact witness: the host's registers
differ right after the enclave exits.

Run:  python examples/noninterference_demo.py
"""

from repro.hyperenclave import RustMonitor
from repro.hyperenclave.buggy import LeakyExitMonitor
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, SystemState,
)
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)

PAGE = TINY.page_size


def build_world(monitor_cls, secret):
    monitor = monitor_cls(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, secret)
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src)
    primary_os.gpa_write_word(src, 0)
    monitor.hc_init(eid)
    return SystemState(monitor, oracle=DataOracle.seeded(9)), eid


def the_trace(eid):
    """The attacker program: let the victim touch its secret, then try
    to observe anything at all from the host side."""
    return [
        Hypercall(HOST_ID, "enter", (eid,)),
        # the victim loads its secret (41 in world A, 42 in world B)
        (MemLoad(eid, 16 * PAGE, "rax"), MemLoad(eid, 16 * PAGE, "rax")),
        (LocalCompute(eid, "rbx", op="copy", src1="rax"),
         LocalCompute(eid, "rbx", op="copy", src1="rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        # the host pokes around
        MemLoad(HOST_ID, 0x200, "rcx"),
        LocalCompute(HOST_ID, "rdx", op="copy", src1="rax"),
    ]


def run(monitor_cls, label):
    world_a, eid = build_world(monitor_cls, secret=41)
    world_b, _ = build_world(monitor_cls, secret=42)
    worlds = TwoWorlds(world_a, world_b)
    violations = check_theorem_noninterference(
        worlds, the_trace(eid), observers=[HOST_ID])
    print(f"== {label} ==")
    if not violations:
        print("   no step distinguishes the 41-world from the 42-world:")
        print("   Theorem 5.1 holds on this trace.")
    else:
        witness = violations[0]
        regs_a = dict(world_a.monitor.vcpu.context())
        regs_b = dict(world_b.monitor.vcpu.context())
        print(f"   VIOLATION at step {witness.step_index} "
              f"via {witness.components}")
        print(f"   host-visible rax: world A={regs_a['rax']} "
              f"world B={regs_b['rax']}  <- the secret, leaked")
    print()


def main():
    run(RustMonitor, "correct RustMonitor")
    run(LeakyExitMonitor, "LeakyExitMonitor (context restore deleted)")


if __name__ == "__main__":
    main()
