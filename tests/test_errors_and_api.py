"""The error taxonomy and the top-level package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.MirError, errors.SpecError, errors.LayerError,
        errors.RefinementFailure, errors.SecurityError,
        errors.HypervisorError,
    ])
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_mir_family(self):
        for exc in (errors.MirParseError, errors.MirTypeError,
                    errors.MirRuntimeError, errors.MirAssertError,
                    errors.EncapsulationViolation, errors.OutOfFuel):
            assert issubclass(exc, errors.MirError)
        assert issubclass(errors.MirAssertError, errors.MirRuntimeError)

    def test_security_family(self):
        assert issubclass(errors.InvariantViolation, errors.SecurityError)
        assert issubclass(errors.NoninterferenceViolation,
                          errors.SecurityError)

    def test_hypervisor_family(self):
        for exc in (errors.OutOfMemoryError, errors.PagingError,
                    errors.EpcmError, errors.HypercallError,
                    errors.TranslationFault):
            assert issubclass(exc, errors.HypervisorError)

    def test_spec_family(self):
        assert issubclass(errors.SpecPreconditionError, errors.SpecError)

    def test_exhaustion_family(self):
        assert issubclass(errors.ResourceExhausted, errors.HypervisorError)
        assert issubclass(errors.OutOfMemoryError, errors.ResourceExhausted)
        # EpcExhausted sits in both families: it is an EPCM error and a
        # resource-exhaustion error.
        assert issubclass(errors.EpcExhausted, errors.EpcmError)
        assert issubclass(errors.EpcExhausted, errors.ResourceExhausted)

    def test_hypercall_abort_is_a_hypercall_error(self):
        assert issubclass(errors.HypercallAborted, errors.HypercallError)
        error = errors.HypercallAborted("hc_add_page",
                                        errors.OutOfMemoryError("pool dry"))
        assert error.hypercall == "hc_add_page"
        assert isinstance(error.cause, errors.OutOfMemoryError)
        assert "rolled back" in str(error)

    def test_fault_injected_is_not_a_hypervisor_error(self):
        # Injected faults model the environment failing underneath the
        # monitor; hypervisor-error handlers must never swallow one.
        assert issubclass(errors.FaultInjected, errors.ReproError)
        assert not issubclass(errors.FaultInjected, errors.HypervisorError)
        error = errors.FaultInjected("frames.alloc", hit=3, label="walk")
        assert error.site == "frames.alloc" and error.hit == 3

    def test_budget_exceeded_is_not_a_hypervisor_error(self):
        assert issubclass(errors.CheckBudgetExceeded, errors.ReproError)
        assert not issubclass(errors.CheckBudgetExceeded,
                              errors.HypervisorError)


class TestErrorPayloads:
    def test_parse_error_location(self):
        error = errors.MirParseError("bad token", line=3, column=7)
        assert "line 3" in str(error) and error.line == 3

    def test_assert_error_context(self):
        error = errors.MirAssertError("boom", function="f", block="bb2")
        assert "in f" in str(error) and "bb2" in str(error)

    def test_invariant_violation_tags_family(self):
        error = errors.InvariantViolation("epcm", "missing record",
                                          witness=(1, 2))
        assert str(error).startswith("[epcm]")
        assert error.witness == (1, 2)

    def test_translation_fault_stage(self):
        error = errors.TranslationFault("nope", stage="ept", va=0x100)
        assert error.stage == "ept" and error.va == 0x100

    def test_refinement_failure_counterexample(self):
        error = errors.RefinementFailure("diverged",
                                         counterexample={"args": ()})
        assert error.counterexample == {"args": ()}


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_error_exports(self):
        assert repro.ReproError is errors.ReproError
        assert repro.InvariantViolation is errors.InvariantViolation
        assert repro.ResourceExhausted is errors.ResourceExhausted
        assert repro.HypercallAborted is errors.HypercallAborted
        assert repro.FaultInjected is errors.FaultInjected
        assert repro.CheckBudgetExceeded is errors.CheckBudgetExceeded

    def test_fresh_state_helper(self):
        from repro.hyperenclave.constants import TINY
        from repro.security.state import fresh_state
        state = fresh_state(TINY)
        assert state.live_principals() == [0]
        assert state.clone().monitor is not state.monitor

    def test_fresh_state_with_custom_monitor(self):
        from repro.hyperenclave.buggy import LeakyExitMonitor
        from repro.hyperenclave.constants import TINY
        from repro.security.state import fresh_state
        state = fresh_state(TINY, monitor_class=LeakyExitMonitor)
        assert isinstance(state.monitor, LeakyExitMonitor)
