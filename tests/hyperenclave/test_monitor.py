"""RustMonitor: boot, hypercalls, world switches, teardown."""

import pytest

from repro.errors import HypercallError, TranslationFault
from repro.hyperenclave.constants import TINY, X86_64
from repro.hyperenclave.enclave import EnclaveState
from repro.hyperenclave.epcm import PageState
from repro.hyperenclave.monitor import HOST_ID, RustMonitor

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestBoot:
    def test_ept_covers_exactly_untrusted_memory(self, monitor):
        mapped = set()
        for gpa, hpa, size, _ in monitor.os_ept.mappings():
            assert gpa == hpa  # identity
            for offset in range(0, size, PAGE):
                mapped.add(TINY.frame_of(hpa + offset))
        assert mapped == set(monitor.layout.untrusted_frames)

    def test_boot_is_cheap_with_huge_pages(self, monitor):
        assert monitor.pt_allocator.used_count <= 2

    def test_boot_without_huge_pages_costs_more(self):
        small = RustMonitor(TINY, os_huge_pages=False)
        huge = RustMonitor(TINY, os_huge_pages=True)
        assert small.pt_allocator.used_count > huge.pt_allocator.used_count

    def test_x86_geometry_boots(self):
        monitor = RustMonitor(X86_64)
        assert monitor.pt_allocator.used_count >= 1
        base = 0
        assert monitor.os_ept.translate(base) == base

    def test_host_active_initially(self, monitor):
        assert monitor.active == HOST_ID
        assert monitor.principals() == [HOST_ID]


class TestCreate:
    def test_create_validates_mbuf_backing(self, monitor):
        epc_pa = TINY.frame_base(monitor.layout.epc_base)
        with pytest.raises(HypercallError, match="untrusted"):
            monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, epc_pa, PAGE)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(elrange_base=5, elrange_size=PAGE, mbuf_va=0, mbuf_pa=0,
              mbuf_size=PAGE), "aligned"),
        (dict(elrange_base=0, elrange_size=PAGE // 2, mbuf_va=0,
              mbuf_pa=0, mbuf_size=PAGE), "whole pages"),
        (dict(elrange_base=0, elrange_size=PAGE, mbuf_va=PAGE,
              mbuf_pa=0, mbuf_size=PAGE // 2), "whole pages"),
        (dict(elrange_base=TINY.va_space, elrange_size=PAGE,
              mbuf_va=PAGE, mbuf_pa=0, mbuf_size=PAGE), "exceeds"),
    ])
    def test_create_validation(self, monitor, kwargs, match):
        with pytest.raises(HypercallError, match=match):
            monitor.hc_create(**kwargs)

    def test_mbuf_overlapping_elrange_rejected(self, monitor):
        with pytest.raises(HypercallError, match="overlaps"):
            monitor.hc_create(16 * PAGE, 2 * PAGE, 17 * PAGE, 0, PAGE)

    def test_create_fixes_mbuf_mappings(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        enclave = monitor.enclaves[eid]
        assert enclave.gpt.query(4 * PAGE) == \
            (2 * PAGE, enclave.gpt.query(4 * PAGE)[1])
        assert monitor.enclave_translate(eid, 4 * PAGE) == 2 * PAGE

    def test_create_allocates_secs_page(self, monitor):
        free_before = monitor.epcm.free_count()
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        assert monitor.epcm.free_count() == free_before - 1
        secs = [e for _, e in monitor.epcm.owned_by(eid)
                if e.state is PageState.SECS]
        assert len(secs) == 1

    def test_eids_are_unique(self, monitor):
        a = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        b = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, 3 * PAGE, PAGE)
        assert a != b


class TestAddPage:
    def test_add_page_copies_content(self):
        monitor, app, eid = build_enclave_world(secret=0x5150,
                                                scrub_source=False)
        assert monitor.enclave_load(eid, 16 * PAGE) == 0x5150

    def test_add_page_outside_elrange_rejected(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        with pytest.raises(HypercallError, match="outside ELRANGE"):
            monitor.hc_add_page(eid, 0, 0)

    def test_add_same_va_twice_rejected(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        monitor.hc_add_page(eid, 16 * PAGE, 0)
        with pytest.raises(HypercallError, match="already added"):
            monitor.hc_add_page(eid, 16 * PAGE, 0)

    def test_add_page_source_must_be_os_mapped(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        secure_gpa = TINY.frame_base(monitor.layout.secure_base)
        with pytest.raises(HypercallError, match="not mapped"):
            monitor.hc_add_page(eid, 16 * PAGE, secure_gpa)

    def test_add_page_only_in_created_state(self, monitor):
        eid = monitor.hc_create(16 * PAGE, 2 * PAGE, 4 * PAGE, 2 * PAGE,
                                PAGE)
        monitor.hc_add_page(eid, 16 * PAGE, 0)
        monitor.hc_init(eid)
        with pytest.raises(HypercallError, match="initialized"):
            monitor.hc_add_page(eid, 17 * PAGE, 0)

    def test_add_page_records_epcm(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        frame = monitor.hc_add_page(eid, 16 * PAGE, 0)
        entry = monitor.epcm.entry_for_frame(frame)
        assert entry.owner == eid
        assert entry.va == 16 * PAGE
        assert entry.state is PageState.REG

    def test_measurement_reflects_content(self):
        a = build_enclave_world(secret=1)[0]
        b = build_enclave_world(secret=2)[0]
        assert a.enclaves[1].measurement != b.enclaves[1].measurement


class TestWorldSwitch:
    def test_enter_requires_initialized(self, monitor):
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, 2 * PAGE, PAGE)
        with pytest.raises(HypercallError):
            monitor.hc_enter(eid)

    def test_enter_exit_roundtrip(self):
        monitor, _app, eid = build_enclave_world()
        monitor.vcpu.write_reg("rax", 0x1111)
        flushes = monitor.tlb.flush_count
        monitor.hc_enter(eid)
        assert monitor.active == eid
        assert monitor.enclaves[eid].state is EnclaveState.RUNNING
        assert monitor.vcpu.read_reg("rax") == 0  # fresh enclave context
        assert monitor.vcpu.ept_root == monitor.enclaves[eid].ept.root_frame
        monitor.vcpu.write_reg("rax", 0x2222)
        monitor.hc_exit(eid)
        assert monitor.active == HOST_ID
        assert monitor.vcpu.read_reg("rax") == 0x1111  # host restored
        assert monitor.tlb.flush_count == flushes + 2

    def test_enclave_context_preserved_across_entries(self):
        monitor, _app, eid = build_enclave_world()
        monitor.hc_enter(eid)
        monitor.vcpu.write_reg("rbx", 0x77)
        monitor.hc_exit(eid)
        monitor.hc_enter(eid)
        assert monitor.vcpu.read_reg("rbx") == 0x77
        monitor.hc_exit(eid)

    def test_double_enter_rejected(self):
        monitor, _app, eid = build_enclave_world()
        monitor.hc_enter(eid)
        with pytest.raises(HypercallError):
            monitor.hc_enter(eid)

    def test_exit_without_enter_rejected(self):
        monitor, _app, eid = build_enclave_world()
        with pytest.raises(HypercallError):
            monitor.hc_exit(eid)


class TestDestroy:
    def test_destroy_releases_everything(self):
        monitor, _app, eid = build_enclave_world()
        pt_used = monitor.pt_allocator.used_count
        epcm_free = monitor.epcm.free_count()
        enclave = monitor.enclaves[eid]
        table_frames = (len(enclave.gpt.table_frames())
                        + len(enclave.ept.table_frames()))
        monitor.hc_destroy(eid)
        assert eid not in monitor.enclaves
        assert monitor.pt_allocator.used_count == pt_used - table_frames
        assert monitor.epcm.free_count() == epcm_free + 2  # SECS + REG

    def test_destroy_scrubs_epc_content(self):
        monitor, _app, eid = build_enclave_world(secret=0xAA55)
        frames = [f for f, e in monitor.epcm.owned_by(eid)
                  if e.state is PageState.REG]
        monitor.hc_destroy(eid)
        for frame in frames:
            assert monitor.phys.frame_words(frame) == \
                (0,) * TINY.words_per_page

    def test_destroy_running_enclave_rejected(self):
        monitor, _app, eid = build_enclave_world()
        monitor.hc_enter(eid)
        with pytest.raises(HypercallError):
            monitor.hc_destroy(eid)

    def test_unknown_eid_rejected(self, monitor):
        with pytest.raises(HypercallError, match="no enclave"):
            monitor.hc_destroy(99)


class TestIsolationSmoke:
    def test_host_cannot_read_epc_through_ept(self):
        monitor, _app, eid = build_enclave_world()
        for frame, _ in monitor.epcm.owned_by(eid):
            with pytest.raises(TranslationFault):
                monitor.primary_os.gpa_read_word(TINY.frame_base(frame))

    def test_mbuf_is_shared_both_ways(self):
        monitor, app, eid = build_enclave_world()
        monitor.primary_os.store(app, 12 * PAGE, 0xCAFE)
        assert monitor.enclave_load(eid, 12 * PAGE) == 0xCAFE
        monitor.enclave_store(eid, 12 * PAGE + 8, 0xF00D)
        assert monitor.primary_os.load(app, 12 * PAGE + 8) == 0xF00D

    def test_enclave_cannot_reach_arbitrary_untrusted_memory(self):
        monitor, _app, eid = build_enclave_world()
        with pytest.raises(TranslationFault):
            monitor.enclave_translate(eid, 0)  # unmapped va
