"""Observation function V(p, σ) and the noninterference lemmas."""

import pytest

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
    apply_step, observe,
)
from repro.security.noninterference import (
    TwoWorlds, check_lemma_activation, check_lemma_confidentiality,
    check_lemma_integrity, check_theorem_noninterference, indistinguishable,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def make_state(monitor_cls=RustMonitor, secret=0x41, oracle_seed=7,
               pages=1):
    monitor, app, eid = build_enclave_world(monitor_cls=monitor_cls,
                                            secret=secret, pages=pages)
    return SystemState(monitor, oracle=DataOracle.seeded(oracle_seed)), \
        app, eid


def make_worlds(monitor_cls=RustMonitor, secrets=(41, 42), pages=1):
    state_a, app_a, eid = make_state(monitor_cls, secrets[0], pages=pages)
    state_b, app_b, eid_b = make_state(monitor_cls, secrets[1], pages=pages)
    assert eid == eid_b
    return TwoWorlds(state_a, state_b), app_a, eid


class TestObservation:
    def test_host_does_not_see_epc_contents(self):
        state_a, _, _ = make_state(secret=41)
        state_b, _, _ = make_state(secret=42)
        assert observe(state_a, HOST_ID) == observe(state_b, HOST_ID)

    def test_enclave_sees_its_own_pages(self):
        state_a, _, eid = make_state(secret=41)
        state_b, _, _ = make_state(secret=42)
        assert observe(state_a, eid) != observe(state_b, eid)

    def test_diff_names_components(self):
        state_a, _, eid = make_state(secret=41)
        state_b, _, _ = make_state(secret=42)
        diff = observe(state_a, eid).diff(observe(state_b, eid))
        assert "memory_pages" in diff

    def test_active_regs_only_for_active_principal(self):
        state, _, eid = make_state()
        assert observe(state, HOST_ID).cpu_regs is not None
        assert observe(state, eid).cpu_regs is None
        apply_step(state, Hypercall(HOST_ID, "enter", (eid,)))
        assert observe(state, HOST_ID).cpu_regs is None
        assert observe(state, eid).cpu_regs is not None

    def test_mbuf_contents_excluded_from_host_view(self):
        state_a, app, _ = make_state()
        state_b, app_b, _ = make_state()
        state_a.monitor.primary_os.store(app, 12 * PAGE, 0x1234)
        state_b.monitor.primary_os.store(app_b, 12 * PAGE, 0x9999)
        # Different mbuf *contents* are invisible (declassified);
        # but identical otherwise.
        assert observe(state_a, HOST_ID) == observe(state_b, HOST_ID)

    def test_mbuf_mapping_is_observable(self):
        """The mapping (not the contents) is part of the view because it
        is immutable after init (Sec. 5.3)."""
        state, _, eid = make_state()
        view = observe(state, eid)
        mbuf_mappings = [m for m in view.page_mappings
                         if m[0] == "gpt" and m[1] == 12 * PAGE]
        assert mbuf_mappings

    def test_destroyed_enclave_observation(self):
        state, _, eid = make_state()
        state.monitor.hc_destroy(eid)
        assert observe(state, eid).metadata == ("destroyed",)


class TestLemma52Integrity:
    def test_host_activity_invisible_to_enclave(self):
        state, app, eid = make_state()
        steps = [
            LocalCompute(HOST_ID, "rax", value=9),
            MemStore(HOST_ID, 0x200, "rax"),
            MemLoad(HOST_ID, 0x200, "rbx"),
            MemLoad(HOST_ID, 12 * PAGE, "rcx", via_app=app.app_id),
            MemStore(HOST_ID, 12 * PAGE, "rax", via_app=app.app_id),
        ]
        assert check_lemma_integrity(state, steps, observer=eid) == []

    def test_attack_steps_also_invisible(self):
        state, app, eid = make_state()
        epc_base = TINY.frame_base(state.monitor.layout.epc_base)
        steps = [MemLoad(HOST_ID, epc_base, "rax"),
                 MemStore(HOST_ID, epc_base, "rax")]
        assert check_lemma_integrity(state, steps, observer=eid) == []

    def test_checker_catches_real_interference(self):
        """Against a broken monitor that lets the host write EPC pages
        (simulated via direct phys poke), the lemma reports it."""
        state, _app, eid = make_state()
        frame = next(f for f, e in state.monitor.epcm.owned_by(eid)
                     if e.va is not None)

        class PokeStep(MemLoad):
            pass

        # monkey path: a custom step the monitor would never allow;
        # emulate the bug by poking between checked steps.
        before = check_lemma_integrity(state, [], observer=eid)
        assert before == []
        import repro.security.noninterference as ni
        base = observe(state, eid)
        state.monitor.phys.write_word(TINY.frame_base(frame), 0x666)
        assert observe(state, eid) != base  # the poke is observable


class TestLemma53Confidentiality:
    def test_host_moves_keep_worlds_indistinguishable(self):
        worlds, app, _eid = make_worlds()
        steps = [
            LocalCompute(HOST_ID, "rax", value=3),
            MemStore(HOST_ID, 0x200, "rax"),
            MemLoad(HOST_ID, 12 * PAGE, "rbx", via_app=app.app_id),
        ]
        assert check_lemma_confidentiality(worlds, steps,
                                           actor=HOST_ID) == []

    def test_probing_epc_reveals_nothing(self):
        worlds, _app, eid = make_worlds()
        epc = TINY.frame_base(worlds.a.monitor.layout.epc_base)
        steps = [MemLoad(HOST_ID, epc + i * PAGE, "rax")
                 for i in range(4)]
        assert check_lemma_confidentiality(worlds, steps,
                                           actor=HOST_ID) == []


class TestLemma54Activation:
    def test_enter_into_enclave_keeps_worlds_equal_for_it(self):
        """Both worlds enter the same enclave whose state is identical;
        the activation must not create a distinction for it."""
        worlds, _app, eid = make_worlds(secrets=(41, 41))
        steps = [Hypercall(HOST_ID, "enter", (eid,))]
        assert check_lemma_activation(worlds, steps, observer=eid) == []


class TestTheorem51:
    def trace(self, eid):
        return [
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),       # loads differing secret
            (LocalCompute(eid, "rbx", op="copy", src1="rax"),
             LocalCompute(eid, "rbx", op="copy", src1="rax")),
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
            MemLoad(HOST_ID, 0x200, "rcx"),
            LocalCompute(HOST_ID, "rdx", op="copy", src1="rax"),
        ]

    def test_holds_on_correct_monitor(self):
        worlds, _app, eid = make_worlds()
        violations = check_theorem_noninterference(
            worlds, self.trace(eid), observers=[HOST_ID])
        assert violations == []

    def test_leaky_exit_violates_with_register_witness(self):
        worlds, _app, eid = make_worlds(monitor_cls=buggy.LeakyExitMonitor)
        violations = check_theorem_noninterference(
            worlds, self.trace(eid), observers=[HOST_ID])
        assert violations
        assert "cpu_regs" in violations[0].components

    def test_no_scrub_leaks_across_destroy_create(self):
        """World A's victim stored 41, world B's stored 42; destroy, then
        a new enclave adopts a recycled frame via EAUG and observes the
        residue."""
        worlds, _app, eid = make_worlds(monitor_cls=buggy.NoScrubMonitor,
                                        pages=2)
        trace = [
            Hypercall(HOST_ID, "destroy", (eid,)),
            Hypercall(HOST_ID, "create",
                      (48 * PAGE, 2 * PAGE, 8 * PAGE, 2 * PAGE, PAGE)),
            Hypercall(HOST_ID, "add_page", (eid + 1, 48 * PAGE, 0)),
            Hypercall(HOST_ID, "init", (eid + 1,)),
            Hypercall(HOST_ID, "aug_page", (eid + 1, 49 * PAGE)),
        ]
        violations = check_theorem_noninterference(
            worlds, trace, observers=[eid + 1])
        assert violations
        assert "memory_pages" in violations[-1].components

    def test_scrubbing_monitor_keeps_aug_pages_clean(self):
        """The same trace on the correct monitor leaks nothing — the
        destroy-time scrub is exactly what makes EAUG safe."""
        worlds, _app, eid = make_worlds(pages=2)
        trace = [
            Hypercall(HOST_ID, "destroy", (eid,)),
            Hypercall(HOST_ID, "create",
                      (48 * PAGE, 2 * PAGE, 8 * PAGE, 2 * PAGE, PAGE)),
            Hypercall(HOST_ID, "add_page", (eid + 1, 48 * PAGE, 0)),
            Hypercall(HOST_ID, "init", (eid + 1,)),
            Hypercall(HOST_ID, "aug_page", (eid + 1, 49 * PAGE)),
        ]
        violations = check_theorem_noninterference(
            worlds, trace, observers=[eid + 1, HOST_ID])
        assert violations == []

    def test_no_tlb_flush_leaks_through_stale_translation(self):
        """The §2.1 flush discipline: with the exit flush deleted, the
        app touching the victim's ELRANGE VA rides the stale TLB entry
        straight into EPC memory and loads the differing secret."""
        worlds, app, eid = make_worlds(monitor_cls=buggy.NoTlbFlushMonitor)
        trace = [
            Hypercall(HOST_ID, "enter", (eid,)),
            # the enclave touches its secret page — caching va -> EPC hpa
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
            # the app loads the same VA: stale hit, EPC read
            MemLoad(HOST_ID, 16 * PAGE, "rbx", via_app=app.app_id),
        ]
        violations = check_theorem_noninterference(
            worlds, trace, observers=[HOST_ID])
        assert violations
        assert "cpu_regs" in violations[0].components
        assert worlds.a.monitor.vcpu.read_reg("rbx") == 41  # the secret

    def test_correct_monitor_immune_to_the_same_tlb_trace(self):
        worlds, app, eid = make_worlds()
        trace = [
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
            MemLoad(HOST_ID, 16 * PAGE, "rbx", via_app=app.app_id),
        ]
        violations = check_theorem_noninterference(
            worlds, trace, observers=[HOST_ID])
        assert violations == []

    def test_indistinguishable_helper(self):
        worlds, _app, _eid = make_worlds()
        assert indistinguishable(worlds.a, worlds.b, HOST_ID)

    def test_initial_distinction_reported(self):
        worlds, _app, eid = make_worlds()
        violations = check_theorem_noninterference(
            worlds, [], observers=[eid])
        assert violations and violations[0].step_index == -1


class TestThreePrincipals:
    """An enclave observing another enclave — the paper's symmetric
    noninterference: *no* principal may learn another's secret."""

    def build_pair_world(self, secret):
        monitor = RustMonitor(TINY)
        primary_os = monitor.primary_os
        src = TINY.frame_base(primary_os.reserve_data_frame())
        primary_os.gpa_write_word(src, secret)
        mbuf_v = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf_s = TINY.frame_base(primary_os.reserve_data_frame())
        victim = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_v,
                                   PAGE)
        monitor.hc_add_page(victim, 16 * PAGE, src)
        primary_os.gpa_write_word(src, 0)
        spy = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_s, PAGE)
        monitor.hc_add_page(spy, 32 * PAGE, src)
        monitor.hc_init(victim)
        monitor.hc_init(spy)
        return SystemState(monitor, oracle=DataOracle.seeded(4)), \
            victim, spy

    def test_spy_enclave_learns_nothing(self):
        state_a, victim, spy = self.build_pair_world(41)
        state_b, _, _ = self.build_pair_world(42)
        worlds = TwoWorlds(state_a, state_b)
        trace = [
            Hypercall(HOST_ID, "enter", (victim,)),
            (MemLoad(victim, 16 * PAGE, "rax"),
             MemLoad(victim, 16 * PAGE, "rax")),
            (Hypercall(victim, "exit", (victim,)),
             Hypercall(victim, "exit", (victim,))),
            Hypercall(HOST_ID, "enter", (spy,)),
            (MemLoad(spy, 32 * PAGE, "rbx"),
             MemLoad(spy, 32 * PAGE, "rbx")),
            (MemLoad(spy, 16 * PAGE, "rcx"),   # victim's VA: faults
             MemLoad(spy, 16 * PAGE, "rcx")),
            (Hypercall(spy, "exit", (spy,)),
             Hypercall(spy, "exit", (spy,))),
        ]
        violations = check_theorem_noninterference(
            worlds, trace, observers=[spy, HOST_ID])
        assert violations == []

    def test_victim_still_sees_its_own_secret(self):
        state_a, victim, _spy = self.build_pair_world(41)
        state_b, _, _ = self.build_pair_world(42)
        assert not indistinguishable(state_a, state_b, victim)
