"""The Enclave Page Cache Map — layer 10.

"RustMonitor maintains a data structure (i.e., Enclave Page Cache Map,
EPCM) to store the EPC page states, and checks the correctness for
memory allocation."  (Sec. 2.1)

One entry per EPC frame, recording whether the frame is free, which
enclave owns it, the guest virtual address it backs, and its role.  The
EPCM invariant of Sec. 5.2 demands that *every* enclave page-table
mapping corresponds to a valid entry here — the benches plant a monitor
that skips the bookkeeping and watch the invariant catch it.
"""

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.concurrency import scheduler as conc
from repro.errors import EpcExhausted, EpcmError
from repro.faults import plane as faults


class PageState(enum.Enum):
    """Lifecycle state of an EPC page (a reduced SGX page-type lattice)."""

    FREE = "free"
    SECS = "secs"      # enclave control structure (ECREATE)
    REG = "reg"        # regular enclave page (EADD)
    PT = "pt"          # enclave page-table frame


@dataclass
class EpcmEntry:
    """One EPCM slot: state, owning enclave, backed VA."""
    state: PageState = PageState.FREE
    owner: Optional[int] = None   # enclave id
    va: Optional[int] = None      # the GVA the page backs (REG pages)

    def is_free(self):
        return self.state is PageState.FREE

    def snapshot(self):
        return (self.state.value, self.owner, self.va)


class Epcm:
    """The EPC map: an array of entries indexed by EPC frame index."""

    def __init__(self, layout):
        self.layout = layout
        self._entries: List[EpcmEntry] = [
            EpcmEntry() for _ in range(layout.epc_size)]
        # Monotone mutation counter (see PhysMemory._version).  Entries
        # are only ever mutated through the methods below, so bumping
        # here covers every path that can change the map.
        self._version = 0

    # -- lookups -----------------------------------------------------------------

    def entry_for_frame(self, frame) -> EpcmEntry:
        return self._entries[self.layout.epc_index(frame)]

    def entries(self):
        """(frame, entry) pairs for the whole EPC."""
        return [(self.layout.epc_base + i, e)
                for i, e in enumerate(self._entries)]

    def owned_by(self, eid):
        return [(frame, entry) for frame, entry in self.entries()
                if entry.owner == eid and not entry.is_free()]

    def free_count(self):
        return sum(1 for e in self._entries if e.is_free())

    def lookup_mapping(self, eid, va) -> Optional[int]:
        """The EPC frame recorded for ``(enclave, va)``, if any."""
        for frame, entry in self.entries():
            if (entry.owner == eid and entry.va == va
                    and entry.state is PageState.REG):
                return frame
        return None

    # -- state transitions ----------------------------------------------------------

    def allocate(self, eid, state, va=None) -> int:
        """Claim the lowest free EPC frame for enclave ``eid``.

        Exhaustion (organic, or injected via the ``epcm.allocate``
        site) raises the typed :class:`~repro.errors.EpcExhausted`.
        """
        conc.guard_mutation("epcm")
        faults.allocation_gate(
            faults.SITE_EPCM_ALLOC,
            exhaust=lambda: EpcExhausted("EPC exhausted (injected)"))
        for index, entry in enumerate(self._entries):
            if entry.is_free():
                self._version += 1
                entry.state = state
                entry.owner = eid
                entry.va = va
                return self.layout.epc_base + index
        raise EpcExhausted("EPC exhausted")

    def record(self, frame, eid, state, va=None):
        """Claim a *specific* free frame (used when the caller has
        already chosen the frame)."""
        conc.guard_mutation("epcm")
        entry = self.entry_for_frame(frame)
        if not entry.is_free():
            raise EpcmError(
                f"EPC frame {frame} is busy "
                f"(state={entry.state.value}, owner={entry.owner})")
        self._version += 1
        entry.state = state
        entry.owner = eid
        entry.va = va

    def release(self, frame, eid):
        """Free one frame after checking ownership."""
        conc.guard_mutation("epcm")
        entry = self.entry_for_frame(frame)
        if entry.is_free():
            raise EpcmError(f"EPC frame {frame} already free")
        if entry.owner != eid:
            raise EpcmError(
                f"EPC frame {frame} owned by {entry.owner}, not {eid}")
        self._version += 1
        entry.state = PageState.FREE
        entry.owner = None
        entry.va = None

    def release_all(self, eid):
        """Free every frame owned by enclave ``eid`` (destroy path)."""
        conc.guard_mutation("epcm")
        self._version += 1
        for _, entry in self.entries():
            if entry.owner == eid:
                entry.state = PageState.FREE
                entry.owner = None
                entry.va = None

    def snapshot(self):
        return tuple(e.snapshot() for e in self._entries)

    def load_snapshot(self, snapshot):
        """Restore the entry array captured by :meth:`snapshot`."""
        self._version += 1
        self._entries = [
            EpcmEntry(state=PageState(state), owner=owner, va=va)
            for state, owner, va in snapshot]

    def clone(self):
        """An independent copy of the whole entry array."""
        new = object.__new__(type(self))
        new.layout = self.layout
        new._entries = [EpcmEntry(state=e.state, owner=e.owner, va=e.va)
                        for e in self._entries]
        new._version = self._version
        return new
