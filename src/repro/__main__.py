"""``python -m repro`` — run the whole reproduction and print a report.

Sections: corpus verification (the code proofs), the live-system
invariant sweep, the adversary campaign, a two-world noninterference
check, and the Sec. 6 effort accounting.  Exits non-zero if anything
fails, so it doubles as a smoke gate.

``python -m repro replay <bundle.json>`` instead replays a
counterexample provenance bundle (see :mod:`repro.obs.provenance`)
and exits zero iff the recorded violation reproduces.

``python -m repro campaign --store DIR`` runs a durable interleaving
campaign (crash-safe checkpoints + cross-run memo store, see
:mod:`repro.service`), and ``python -m repro resume DIR`` continues an
interrupted one.  Both exit 0 on a clean sweep, 1 when violations were
found, 2 on a store/usage error — and 130 on Ctrl-C, *after* flushing
a resumable checkpoint.

``python -m repro serve --root DIR`` runs the checking-as-a-service
daemon (:mod:`repro.service.daemon`); ``submit`` and ``status`` are
the matching client verbs (:mod:`repro.service.client`).  ``serve``
exits 0 after a SIGTERM graceful drain, 130 after Ctrl-C — both with
every campaign checkpoint flushed.
"""

import argparse
import sys
import time

from repro.analysis import proof_effort_summary
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.reporting import fig1_architecture, render_table
from repro.security import (
    DataOracle, Hypercall, MemLoad, SystemState, check_all_invariants,
)
from repro.security.attacks import run_standard_attack_suite
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)
from repro.verification import verify_corpus

PAGE = TINY.page_size


def build_world(secret):
    """One initialized enclave world for the report run."""
    monitor = RustMonitor(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    src = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, secret)
    eid = monitor.hc_create(16 * PAGE, PAGE, 12 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src)
    primary_os.gpa_write_word(src, 0)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 12 * PAGE, mbuf)
    return monitor, app, eid


def replay_main(argv):
    """``python -m repro replay <bundle.json>`` — replay a provenance
    bundle and report whether the recorded violation reproduces."""
    from repro.obs.provenance import ProvenanceBundle, replay_bundle

    if len(argv) != 1:
        print("usage: python -m repro replay <bundle.json>",
              file=sys.stderr)
        return 2
    try:
        bundle = ProvenanceBundle.load(argv[0])
    except (OSError, ValueError) as exc:
        print(f"cannot load bundle {argv[0]}: {exc}", file=sys.stderr)
        return 2
    print(f"replaying {bundle.kind} bundle (seed {bundle.seed}, "
          f"schema v{bundle.version}) from {argv[0]}")
    outcome = replay_bundle(bundle)
    print(outcome.summary())
    if not outcome.matched:
        from repro.errors import ReplayDivergence
        divergence = ReplayDivergence(bundle.kind, outcome.expected,
                                      outcome.found)
        print(f"error: {divergence}", file=sys.stderr)
        return 1
    return 0


#: Exit code for an interrupted-but-checkpointed campaign (the shell
#: convention for SIGINT: 128 + 2).
EXIT_INTERRUPTED = 130


def _campaign_verdict(store_dir, result) -> int:
    """Print a durable campaign's outcome; 0 clean, 1 violations."""
    print(result.summary())
    print(f"store: {store_dir} (resume with "
          f"'python -m repro resume {store_dir}')")
    return 0 if result.ok else 1


def campaign_main(argv):
    """``python -m repro campaign`` — run a durable interleaving
    campaign with crash-safe checkpoints in ``--store``."""
    from repro.service import (CampaignSpec, CampaignStore,
                               run_durable_campaign)

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="durable interleaving campaign (checkpointed, "
                    "resumable, warm-memoised)")
    parser.add_argument("--store", required=True,
                        help="campaign store directory (checkpoint + "
                             "memo log)")
    parser.add_argument("--preemption-bound", type=int, default=2)
    parser.add_argument("--max-schedules", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--monitor", default=None,
                        help="monitor class as module:qualname "
                             "(default RustMonitor)")
    parser.add_argument("--no-ni", action="store_true",
                        help="skip the per-schedule noninterference "
                             "re-run")
    parser.add_argument("--workers", type=int, default=None)
    options = parser.parse_args(argv)
    spec = CampaignSpec(monitor=options.monitor, seed=options.seed,
                        preemption_bound=options.preemption_bound,
                        max_schedules=options.max_schedules,
                        check_ni=not options.no_ni)
    try:
        with CampaignStore(options.store) as store:
            result = run_durable_campaign(spec, store,
                                          workers=options.workers)
    except KeyboardInterrupt:
        print(f"\ninterrupted — checkpoint flushed to {options.store}; "
              f"resume with 'python -m repro resume {options.store}'",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    return _campaign_verdict(options.store, result)


def resume_main(argv):
    """``python -m repro resume <store>`` — continue an interrupted
    durable campaign from its checkpoint."""
    from repro.errors import CorruptArtifact
    from repro.service import CampaignStore, resume_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro resume",
        description="resume a durable campaign from its store")
    parser.add_argument("store", help="campaign store directory")
    parser.add_argument("--workers", type=int, default=None)
    options = parser.parse_args(argv)
    try:
        with CampaignStore(options.store) as store:
            result = resume_campaign(store, workers=options.workers)
    except FileNotFoundError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except CorruptArtifact as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"\ninterrupted — checkpoint flushed to {options.store}; "
              f"resume again with 'python -m repro resume "
              f"{options.store}'", file=sys.stderr)
        return EXIT_INTERRUPTED
    return _campaign_verdict(options.store, result)


def serve_main(argv):
    """``python -m repro serve`` — run the checking-as-a-service
    daemon until SIGTERM (exit 0) or Ctrl-C (exit 130), draining
    gracefully either way."""
    from repro.service.daemon import CheckingDaemon, serve_forever

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="checking-as-a-service daemon: HTTP/JSON front "
                    "over a shared resilient worker pool")
    parser.add_argument("--root", required=True,
                        help="service store root (one campaign store "
                             "per subdirectory; incomplete campaigns "
                             "found here auto-resume)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--max-active", type=int, default=4,
                        help="campaigns scheduled concurrently")
    parser.add_argument("--max-queued", type=int, default=16,
                        help="admission queue bound (past it, "
                             "submissions get 429 backpressure)")
    parser.add_argument("--round-capacity", type=int, default=None,
                        help="units per fair-share scheduling round")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="per-shard wall-clock cap (stuck units "
                             "are quarantined, not waited on forever)")
    parser.add_argument("--wall-budget", type=float, default=None,
                        help="default per-campaign wall-clock budget")
    parser.add_argument("--wave-budget", type=int, default=None,
                        help="default per-campaign wave budget")
    options = parser.parse_args(argv)
    daemon = CheckingDaemon(
        options.root, host=options.host, port=options.port,
        workers=options.workers, max_active=options.max_active,
        max_queued=options.max_queued,
        round_capacity=options.round_capacity,
        shard_timeout=options.shard_timeout,
        default_wall_budget=options.wall_budget,
        default_wave_budget=options.wave_budget)
    return serve_forever(daemon)


def _print_json(payload):
    import json
    print(json.dumps(payload, indent=2, sort_keys=True))


def submit_main(argv):
    """``python -m repro submit`` — send a campaign to a running
    daemon; with ``--wait``, poll to the verdict (exit 0 clean, 1
    violations)."""
    from repro.errors import (AdmissionRefused, DeadlineExceeded,
                              ServiceError)
    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="submit a campaign to a checking-service daemon")
    parser.add_argument("--url", required=True,
                        help="daemon base URL, e.g. "
                             "http://127.0.0.1:8731")
    parser.add_argument("--id", default=None,
                        help="campaign id (makes resubmission "
                             "idempotent; default: server-assigned)")
    parser.add_argument("--preemption-bound", type=int, default=2)
    parser.add_argument("--max-schedules", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--monitor", default=None)
    parser.add_argument("--no-ni", action="store_true")
    parser.add_argument("--wall-budget", type=float, default=None)
    parser.add_argument("--wave-budget", type=int, default=None)
    parser.add_argument("--wait", action="store_true",
                        help="block until the campaign finishes")
    parser.add_argument("--deadline", type=float, default=None,
                        help="give up (exit 2) after this many seconds")
    options = parser.parse_args(argv)
    payload = {"seed": options.seed,
               "preemption_bound": options.preemption_bound,
               "max_schedules": options.max_schedules,
               "check_ni": not options.no_ni}
    if options.monitor is not None:
        payload["monitor"] = options.monitor
    for key, value in (("id", options.id),
                       ("wall_budget", options.wall_budget),
                       ("wave_budget", options.wave_budget)):
        if value is not None:
            payload[key] = value
    client = ServiceClient(options.url)
    try:
        reply = client.submit(payload, deadline=options.deadline)
        if not options.wait:
            _print_json(reply)
            return 0
        status = client.wait(reply["id"], deadline=options.deadline)
        _print_json(status)
        return 0 if status.get("ok") else 1
    except AdmissionRefused as exc:
        print(f"refused: {exc}", file=sys.stderr)
        return 2
    except (DeadlineExceeded, ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def status_main(argv):
    """``python -m repro status`` — query a daemon: service health,
    the campaign list, or one campaign (optionally its artifacts)."""
    from repro.errors import CampaignNotFound, ServiceError
    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="query a checking-service daemon")
    parser.add_argument("--url", required=True)
    parser.add_argument("campaign", nargs="?", default=None,
                        help="campaign id (default: list them all)")
    parser.add_argument("--artifacts", action="store_true",
                        help="also fetch the campaign's provenance "
                             "bundles")
    parser.add_argument("--health", action="store_true",
                        help="print /healthz instead")
    options = parser.parse_args(argv)
    client = ServiceClient(options.url)
    try:
        if options.health:
            _print_json(client.healthz())
        elif options.campaign is None:
            _print_json(client.list_campaigns())
        else:
            _print_json(client.status(options.campaign))
            if options.artifacts:
                _print_json(client.artifacts(options.campaign))
        return 0
    except CampaignNotFound as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv=None):
    """Run every check and print the consolidated report.

    ``argv`` (default ``sys.argv[1:]``) may select the ``replay``,
    ``campaign``, ``resume``, ``serve``, ``submit``, or ``status``
    subcommand; with no arguments the full report runs.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "resume":
        return resume_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    if argv and argv[0] == "status":
        return status_main(argv[1:])

    failures = []
    started = time.perf_counter()

    print("repro — MIRVerif / HyperEnclave reproduction "
          "(ASPLOS 2024)\n")

    # 1. Code proofs over the mirlight corpus.
    model = build_model(TINY)
    report = verify_corpus(model, cosim_samples=12)
    checks = sum(v.checked for v in report.verdicts)
    status = "OK" if report.ok else "FAILED"
    print(f"[{status}] code proofs: {len(report.verdicts)} functions in "
          f"{len(model.stack)} layers, {checks} checks")
    if not report.ok:
        failures.append("code proofs")
        for verdict in report.verdicts:
            if not verdict.ok:
                print(f"    {verdict}")

    # 2. Live-system invariants + architecture figure.
    monitor, app, eid = build_world(secret=0x41)
    invariants = check_all_invariants(monitor)
    print(f"[{'OK' if invariants.ok else 'FAILED'}] Sec. 5.2 invariants "
          f"on the live system")
    if not invariants.ok:
        failures.append("invariants")
        print(str(invariants))

    # 3. The adversary campaign.
    outcomes = run_standard_attack_suite(monitor, app, eid, seed=1)
    contained = all(o.contained for o in outcomes.values())
    blocked = sum(o.blocked for o in outcomes.values())
    attempts = sum(o.attempts for o in outcomes.values())
    print(f"[{'OK' if contained else 'FAILED'}] Sec. 2.2 adversary: "
          f"{blocked}/{attempts} hostile actions blocked, "
          f"rest validated")
    if not contained:
        failures.append("attack containment")

    # 4. Noninterference over a secret-touching trace.
    world_a = SystemState(build_world(41)[0],
                          oracle=DataOracle.seeded(2))
    world_b = SystemState(build_world(42)[0],
                          oracle=DataOracle.seeded(2))
    worlds = TwoWorlds(world_a, world_b)
    trace = [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * PAGE, "rax"), MemLoad(eid, 16 * PAGE, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        MemLoad(HOST_ID, 0x200, "rbx"),
    ]
    violations = check_theorem_noninterference(worlds, trace,
                                               observers=[HOST_ID])
    print(f"[{'OK' if not violations else 'FAILED'}] Theorem 5.1 "
          f"(41-vs-42 worlds): {len(violations)} violations")
    if violations:
        failures.append("noninterference")

    # 5. Effort accounting.
    summary = proof_effort_summary(model)
    print()
    print(render_table(
        ["quantity", "paper", "this repro"],
        [["verified functions", 49, summary.corpus_functions],
         ["layers", 15, summary.corpus_layers],
         ["checker lines / MIR line", 1.25,
          round(summary.checker_per_mir_line, 2)],
         ["SeKVM baseline", 2.16, "—"]],
        title="Sec. 6 — effort"))

    print()
    print(fig1_architecture(monitor))

    elapsed = time.perf_counter() - started
    print(f"\ncompleted in {elapsed:.2f}s — "
          f"{'ALL GREEN' if not failures else 'FAILURES: ' + ', '.join(failures)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
