"""Unit tests for the mirlight type grammar."""

import pytest
from hypothesis import given, strategies as st

from repro.mir.types import (
    ArrayTy, BOOL, EnumTy, FnTy, I8, I32, I64, IntTy, RawPtrTy, RefTy,
    StructTy, TupleTy, U8, U16, U32, U64, UNIT, type_from_name,
)


class TestIntTy:
    def test_unsigned_bounds(self):
        assert U8.min_value == 0
        assert U8.max_value == 255
        assert U64.max_value == 2 ** 64 - 1

    def test_signed_bounds(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert I64.min_value == -(2 ** 63)

    @pytest.mark.parametrize("ty,raw,expected", [
        (U8, 256, 0),
        (U8, 257, 1),
        (U8, -1, 255),
        (I8, 128, -128),
        (I8, -129, 127),
        (U64, 2 ** 64 + 5, 5),
        (I32, 2 ** 31, -(2 ** 31)),
    ])
    def test_wrap(self, ty, raw, expected):
        assert ty.wrap(raw) == expected

    @given(st.integers())
    def test_wrap_always_in_range(self, raw):
        for ty in (U8, U16, U32, U64, I8, I32, I64):
            assert ty.contains(ty.wrap(raw))

    @given(st.integers())
    def test_wrap_idempotent(self, raw):
        for ty in (U8, I8, U64, I64):
            assert ty.wrap(ty.wrap(raw)) == ty.wrap(raw)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntTy(7, False)

    def test_str(self):
        assert str(U64) == "u64"
        assert str(I32) == "i32"

    def test_hashable_and_canonical(self):
        assert IntTy(64, False) == U64
        assert hash(IntTy(64, False)) == hash(U64)


class TestCompositeTypes:
    def test_tuple_str(self):
        assert str(TupleTy((U64, BOOL))) == "(u64, bool)"

    def test_array_str(self):
        assert str(ArrayTy(U64, 4)) == "[u64; 4]"

    def test_ref_str(self):
        assert str(RefTy(U64, mutable=True)) == "&mut u64"
        assert str(RefTy(U64, mutable=False)) == "&u64"

    def test_raw_ptr_str(self):
        assert str(RawPtrTy(U64, mutable=True)) == "*mut u64"

    def test_fn_str(self):
        assert str(FnTy((U64,), BOOL)) == "fn(u64) -> bool"

    def test_enum_discriminants(self):
        option = EnumTy("Option", ("None", "Some"))
        assert option.discriminant_of("None") == 0
        assert option.discriminant_of("Some") == 1

    def test_pointer_predicates(self):
        assert RefTy(U64).is_pointer()
        assert RawPtrTy(U64).is_pointer()
        assert not U64.is_pointer()
        assert U64.is_integer()


class TestTypeFromName:
    @pytest.mark.parametrize("name,expected", [
        ("u64", U64), ("i8", I8), ("bool", BOOL), ("()", UNIT),
        ("usize", U64), ("isize", I64),
    ])
    def test_primitives(self, name, expected):
        assert type_from_name(name) == expected

    def test_unknown_is_opaque_struct(self):
        ty = type_from_name("AddrSpace")
        assert isinstance(ty, StructTy)
        assert ty.name == "AddrSpace"
