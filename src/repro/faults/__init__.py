"""Fault injection: deterministic fault plane + campaign drivers.

The robustness counterpart of the invariant checkers: instead of asking
"does every *successful* hypercall preserve the Sec. 5.2 invariants?",
this package asks "does every *failed* one?".  A seed-driven
:class:`FaultPlane` fires named injection sites threaded through
:mod:`repro.hyperenclave` (allocator exhaustion, physical-memory write
faults, bit flips, abort-at-step-k crashes inside each hypercall), and
the campaign drivers sweep every site × every step index of every
hypercall, asserting that the transactional monitor rolls back to
exactly its pre-hypercall state with all invariant families intact.
"""

from repro.faults.plane import (
    EXHAUST,
    FLIP,
    RAISE,
    SITE_EPCM_ALLOC,
    SITE_FRAME_ALLOC,
    SITE_PHYS_FLIP,
    SITE_PHYS_WRITE,
    FaultPlane,
    FiredFault,
    active_plane,
    allocation_gate,
    crash_point,
    filter_write,
    installed,
    suspended,
)
from repro.faults.campaign import (
    DEFAULT_SITES,
    CampaignReport,
    CrashCampaignReport,
    CrashRecord,
    RunRecord,
    bitflip_campaign,
    crash_in_critical_section_campaign,
    crash_ni_campaign,
    crash_step_campaign,
    default_concurrent_workloads,
    default_ni_trace,
    default_two_worlds,
    default_workload,
    default_world_factory,
    enumerate_injectable_steps,
    hypercall_site,
    interleaving_campaign,
    make_interleaved_run,
    scheduled_runner,
)

__all__ = [
    "EXHAUST",
    "FLIP",
    "RAISE",
    "SITE_EPCM_ALLOC",
    "SITE_FRAME_ALLOC",
    "SITE_PHYS_FLIP",
    "SITE_PHYS_WRITE",
    "FaultPlane",
    "FiredFault",
    "active_plane",
    "allocation_gate",
    "crash_point",
    "filter_write",
    "installed",
    "suspended",
    "DEFAULT_SITES",
    "CampaignReport",
    "CrashCampaignReport",
    "CrashRecord",
    "RunRecord",
    "bitflip_campaign",
    "crash_in_critical_section_campaign",
    "crash_ni_campaign",
    "crash_step_campaign",
    "default_concurrent_workloads",
    "default_ni_trace",
    "default_two_worlds",
    "default_workload",
    "default_world_factory",
    "enumerate_injectable_steps",
    "hypercall_site",
    "interleaving_campaign",
    "make_interleaved_run",
    "scheduled_runner",
]
