"""The 15-layer assembly of the corpus (Sec. 1, Sec. 4).

"We follow SeKVM and formulate the proof of HyperEnclave in a layered
fashion, by dividing our proof into 15 layers that span from frame
allocation to address space isolation."

:data:`LAYER_NAMES` fixes the order; :func:`build_program` assembles the
full mirlight program (49 functions); :func:`build_layer_stack` builds
the CCAL stack with the trusted primitives at layer 0; and
:class:`MirModel` bundles everything a verification harness needs,
including ready-made interpreters with the trusted layer registered.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ccal.layer import LayerStack
from repro.errors import LayerError
from repro.hyperenclave.constants import MemoryLayout, TINY
from repro.mir.builder import ProgramBuilder
from repro.mir.interp import Interpreter

from repro.hyperenclave.mir_model.addrspace import add_addrspace_functions
from repro.hyperenclave.mir_model.pure import add_pure_functions
from repro.hyperenclave.mir_model.state import (
    make_initial_absstate,
    trusted_primitives,
)
from repro.hyperenclave.mir_model.stateful import add_stateful_functions

# Bottom to top — 15 layers, frame allocation to address-space isolation.
LAYER_NAMES = (
    "TrustedLayer",   # 0: phys mem, allocator bitmap, EPCM primitives
    "FrameAlloc",     # 1
    "PteOps",         # 2
    "PtEntryIo",      # 3
    "PtLevel",        # 4
    "PtWalk",         # 5
    "PtAlloc",        # 6
    "PtMap",          # 7
    "PtQuery",        # 8
    "AddrSpace",      # 9
    "Epcm",           # 10
    "EnclaveMem",     # 11
    "MBuf",           # 12
    "Hypercalls",     # 13
    "Isolation",      # 14
)


def build_program(config=TINY, layout=None):
    """Assemble the full 49-function corpus for a geometry."""
    layout = layout or MemoryLayout.default_for(config)
    pb = ProgramBuilder()
    add_pure_functions(pb, config)
    add_stateful_functions(pb, config, layout)
    add_addrspace_functions(pb, config)
    return pb.build()


def layer_of_function(program) -> Dict[str, str]:
    """function name -> layer name, read off the corpus annotations."""
    mapping = {}
    for name, function in program.functions.items():
        if function.layer is None:
            raise LayerError(f"corpus function {name} has no layer tag")
        if function.layer not in LAYER_NAMES:
            raise LayerError(
                f"corpus function {name} names unknown layer "
                f"{function.layer!r}")
        mapping[name] = function.layer
    return mapping


def build_layer_stack(config=TINY, layout=None) -> LayerStack:
    """The 15-layer CCAL stack with trusted primitives at layer 0."""
    layout = layout or MemoryLayout.default_for(config)
    stack = LayerStack()
    trusted = trusted_primitives(
        config, pool_base=layout.pt_pool_base,
        pool_size=layout.epc_base - layout.pt_pool_base,
        epc_size=layout.epc_size)
    stack.push("TrustedLayer", primitives=trusted,
               owned_fields=("pt_words", "pt_bitmap", "epcm"),
               doc="unverified primitives over the abstract state")
    for name in LAYER_NAMES[1:]:
        stack.push(name, doc=f"corpus layer {name}")
    return stack


@dataclass
class MirModel:
    """Everything a verification harness needs about the corpus."""

    config: object
    layout: MemoryLayout
    program: object
    stack: LayerStack
    layer_map: Dict[str, str]
    trusted: List[object] = field(default_factory=list)

    @property
    def pool_base(self):
        return self.layout.pt_pool_base

    @property
    def pool_size(self):
        return self.layout.epc_base - self.layout.pt_pool_base

    def initial_absstate(self):
        return make_initial_absstate(self.config, self.pool_base,
                                     self.pool_size, self.layout.epc_size)

    def make_interpreter(self, absstate=None) -> Interpreter:
        """A fresh interpreter with the trusted layer registered."""
        interp = Interpreter(
            self.program,
            absstate=absstate if absstate is not None
            else self.initial_absstate())
        for spec in self.trusted:
            interp.register_trusted(spec.as_trusted_function())
        return interp

    def check_call_order(self):
        """The structural no-upward-calls rule over the whole corpus."""
        return self.stack.check_call_order(self.program, self.layer_map)

    def functions_in_layer(self, layer_name):
        return sorted(name for name, layer in self.layer_map.items()
                      if layer == layer_name)


def build_model(config=TINY, layout=None, via_text=False) -> MirModel:
    """Assemble the full corpus model.

    ``via_text=True`` routes the program through the textual mirlight
    format (print then re-parse) before use — the closest analog of
    consuming actual ``mirlightgen`` output, and a fidelity knob for
    tests: everything downstream must behave identically either way.
    """
    layout = layout or MemoryLayout.default_for(config)
    program = build_program(config, layout)
    if via_text:
        from repro.mir.parser import parse_program
        from repro.mir.printer import print_program
        program = parse_program(print_program(program))
    stack = build_layer_stack(config, layout)
    trusted = trusted_primitives(
        config, pool_base=layout.pt_pool_base,
        pool_size=layout.epc_base - layout.pt_pool_base,
        epc_size=layout.epc_size)
    return MirModel(config=config, layout=layout, program=program,
                    stack=stack, layer_map=layer_of_function(program),
                    trusted=trusted)


def corpus_source(config=TINY, layout=None) -> str:
    """The whole corpus as mirlight text (the 'big blob' of Sec. 3.3)."""
    from repro.mir.printer import print_program
    return print_program(build_program(config, layout))
