"""Automatic specification synthesis for the pure fragment.

The paper's related work points at Spoq [33], which "automates part of
the work of writing code-proofs for CCAL-style verification in C;
similar techniques might improve the productivity of Rust system
software verification too" (Sec. 7).  This module is that direction,
prototyped: for any pure mirlight function, symbolically execute every
path and package the result as a *guarded functional specification* —

    spec pte_is_present(e) :=
      | ne(band(e, 1), 0) -> true
      | otherwise         -> false

The synthesized spec is an executable object (it evaluates concrete
inputs by path dispatch) and a printable artifact.  Because it is
derived *from the code*, agreement with the code is by construction;
its value is (a) as a generated low spec a human can audit instead of
write, and (b) as a bridge: checking the synthesized spec against an
independent reference is exactly the code-vs-reference equivalence
check, now with the spec text as a readable witness of what the code
does on every path.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SpecError
from repro.mir.value import Value
from repro.symbolic.execute import SymExecutor, _symbolic_args, lower_value
from repro.symbolic.solver import Domains, check_sat, enumerate_models
from repro.symbolic.terms import SymVar, Term, evaluate


@dataclass
class GuardedClause:
    """One spec clause: a conjunction of guard terms and a result."""

    guards: Tuple[Term, ...]
    result: object  # Term or SymAggregate over terms

    def matches(self, model) -> bool:
        return all(evaluate(guard, model) for guard in self.guards)


class SynthesizedSpec:
    """A guarded functional specification derived from MIR code."""

    def __init__(self, name, params, clauses: List[GuardedClause]):
        self.name = name
        self.params = tuple(params)
        self.clauses = clauses

    def evaluate(self, *args) -> Value:
        """Apply the spec to concrete argument Values."""
        model = {param: arg.value if hasattr(arg, "value") else arg
                 for param, arg in zip(self.params, args)}
        for clause in self.clauses:
            if clause.matches(model):
                return lower_value(clause.result, model)
        raise SpecError(
            f"{self.name}: no clause matches {model!r} — the synthesized "
            f"spec does not cover this input")

    def pretty(self) -> str:
        """Render the spec as guarded clauses."""
        lines = [f"spec {self.name}({', '.join(self.params)}) :="]
        for clause in self.clauses:
            if clause.guards:
                guard = " && ".join(str(g) for g in clause.guards)
            else:
                guard = "otherwise"
            lines.append(f"  | {guard:<48} -> {_pretty_result(clause.result)}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.clauses)


def _pretty_result(result):
    from repro.symbolic.execute import SymAggregate
    if isinstance(result, SymAggregate):
        inner = ", ".join(_pretty_result(f) for f in result.fields)
        return f"({inner})"
    return str(result)


def synthesize_spec(program, fn_name, domains: Domains,
                    prune_infeasible=True) -> SynthesizedSpec:
    """Derive the guarded spec of a pure function by path enumeration.

    Infeasible paths (within the domains) are dropped so the printed
    spec contains only clauses a real input can reach.
    """
    function = program.functions[fn_name]
    executor = SymExecutor(program,
                           domains=domains if prune_infeasible else None)
    sym_args = _symbolic_args(function, domains)
    paths = executor.run(fn_name, sym_args)
    clauses = []
    for path in paths:
        if prune_infeasible and check_sat(path.pathcond, domains) is None:
            continue
        clauses.append(GuardedClause(guards=path.pathcond,
                                     result=path.ret))
    return SynthesizedSpec(fn_name, function.params, clauses)


def check_synthesized_spec(spec: SynthesizedSpec, reference, domains,
                           limit=200_000):
    """Exhaustively compare the synthesized spec against a reference.

    ``reference(*Values) -> Value``.  Returns the mismatches and the
    number of inputs examined — the Spoq-style 'did the generated spec
    capture the intent' check.
    """
    from repro.mir.value import mk_int
    from repro.mir.types import U64
    param_vars = [SymVar(p) for p in spec.params]
    mismatches = []
    examined = 0
    for model in enumerate_models((), domains, limit=limit,
                                  required_vars=spec.params):
        examined += 1
        args = [mk_int(model[p], U64) for p in spec.params]
        got = spec.evaluate(*args)
        expected = reference(*args)
        if got != expected:
            mismatches.append((model, got, expected))
    del param_vars
    return mismatches, examined
