"""The hardened checking harness: budgets + graceful degradation.

A checker that hangs is worse than a checker that answers less: the
harness must survive hostile inputs (path explosions, endless sample
streams, adversarially slow geometries) and still return a verdict.
This module wraps the checking engines in a degradation chain

    symbolic  →  exhaustive-bounded  →  property sampling

where each engine gets the budget the previous engines left behind
(:class:`repro.budget.Budget`), and falling through the chain is
*recorded*, not hidden: the returned
:class:`~repro.ccal.refinement.CheckReport` names the ``engine`` that
produced the verdict, lists every ``degradations`` step taken to get
there, and carries ``budget_spent`` so reports show where the time
went.

* **symbolic** — :func:`repro.symbolic.verify_assertions` +
  :func:`repro.symbolic.check_equivalence`: a bounded *proof* over the
  whole domain.  Strongest, most expensive, and the one that can blow
  up (``SymbolicUnsupported`` on corpus fragments the executor cannot
  handle, :class:`~repro.errors.CheckBudgetExceeded` on explosion).
* **exhaustive-bounded** — run the MIR interpreter *concretely* on
  every input in the bounded domain and compare against the Python
  reference.  Same coverage as the symbolic cell enumeration, no path
  reasoning; skipped outright (with a recorded degradation) when the
  domain product is too large to enumerate.
* **property sampling** — seeded random inputs from the same domains;
  the engine of last resort, always cheap enough to say *something*.
  If even sampling runs out of budget the partial tally is returned
  with ``completed=False`` — never an exception, never a hang.

Stateful (co-simulation) checking has its own hardening in
:func:`check_stateful_hardened`: the budget is threaded into
:meth:`~repro.ccal.refinement.CoSimChecker.check`, and a sampled
campaign whose samples mostly fall outside the spec precondition is
retried with a reseeded generator — boundedly (``max_reseeds``), with
the retry count surfaced as ``CheckReport.seed_retries``.
"""

import hashlib
import itertools
import random

from repro.budget import Budget
from repro.ccal.refinement import CheckReport, CoSimChecker, mir_impl
from repro.obs import trace as _trace
from repro.errors import (
    CheckBudgetExceeded,
    RefinementFailure,
    ReproError,
)
from repro.mir.value import mk_bool, mk_u64
from repro.symbolic import (
    SymbolicUnsupported,
    check_equivalence,
    solver_stats,
    stats_delta,
    verify_assertions,
)
from repro.verification.pure_refs import default_domains, pure_reference

ENGINE_SYMBOLIC = "symbolic"
ENGINE_EXHAUSTIVE = "exhaustive-bounded"
ENGINE_SAMPLING = "property-sampling"

PURE_ENGINE_CHAIN = (ENGINE_SYMBOLIC, ENGINE_EXHAUSTIVE, ENGINE_SAMPLING)


class _BudgetPool:
    """Total step/second allowance shared by a whole degradation chain.

    Each engine draws a fresh :class:`Budget` bounded by whatever the
    pool has left, so an abandoned engine's spend is charged against
    its successors — "degrading" never resets the clock.
    """

    def __init__(self, max_steps=None, max_seconds=None, clock=None):
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self._clock = clock
        self.steps_spent = 0
        self.seconds_spent = 0.0
        self._live = None

    def slice(self, fraction=1.0) -> Budget:
        """A Budget limited to ``fraction`` of the remaining allowance.

        Non-final engines take a fraction < 1 so that blowing up still
        leaves the cheaper fallbacks something to spend — otherwise a
        path explosion in the first engine would "degrade" every
        successor straight to zero.
        """
        slice_steps = None
        if self.max_steps is not None:
            remaining = max(self.max_steps - self.steps_spent, 0)
            slice_steps = max(int(remaining * fraction), 1) \
                if remaining else 0
        slice_seconds = None
        if self.max_seconds is not None:
            remaining = max(self.max_seconds - self.seconds_spent, 0.0)
            slice_seconds = remaining * fraction if remaining else 0.0
        kwargs = {} if self._clock is None else {"clock": self._clock}
        self._live = Budget(max_steps=slice_steps,
                            max_seconds=slice_seconds, **kwargs)
        return self._live

    def settle(self):
        """Charge the live slice's spend back to the pool."""
        if self._live is not None:
            self.steps_spent += self._live.steps
            self.seconds_spent += self._live.seconds
            self._live = None

    @property
    def exhausted(self):
        """True once either axis of the pool has nothing left to give."""
        if self.max_steps is not None and self.steps_spent >= self.max_steps:
            return True
        if self.max_seconds is not None and \
                self.seconds_spent >= self.max_seconds:
            return True
        return False

    def spent(self):
        return {"steps": self.steps_spent,
                "seconds": round(self.seconds_spent, 6)}


def _wrap(value):
    """A Python domain value as the MIR Value the corpus expects."""
    if isinstance(value, bool):
        return mk_bool(value)
    return mk_u64(value)


def _run_concrete(impl, state, reference, args, failures, cap=5):
    """One concrete MIR-vs-reference comparison; collect divergences."""
    try:
        mir_value, _state = impl(args, state)
    except CheckBudgetExceeded:
        raise
    except ReproError as exc:
        if len(failures) < cap:
            failures.append(RefinementFailure(
                f"MIR execution raised {type(exc).__name__}: {exc}",
                counterexample=args))
        return
    ref_value = reference(*args)
    if mir_value != ref_value:
        if len(failures) < cap:
            failures.append(RefinementFailure(
                f"mir={mir_value} ref={ref_value}",
                counterexample=args))


def split_budget(max_steps, max_seconds, shares):
    """Even per-unit slices of a grid-wide checking allowance.

    The parallel fabric fans a check grid out across workers; each unit
    gets ``total // shares`` steps (at least 1) and ``total / shares``
    seconds, so the whole grid spends no more than the caller allowed —
    and the sequential grid uses the *same* slices, keeping the two
    byte-identical.  ``None`` (unlimited) stays ``None``.
    """
    if shares <= 0:
        raise ValueError("shares must be positive")
    steps = None if max_steps is None else max(1, max_steps // shares)
    seconds = None if max_seconds is None else max_seconds / shares
    return steps, seconds


def pure_check_key(name, *, max_steps=None, seed=0, sample_count=128,
                   max_exhaustive=4096, config=None) -> str:
    """The blake2b identity of one *deterministic* hardened pure check.

    Two :func:`check_pure_hardened` runs with equal keys produce equal
    reports, so the key indexes a durable cross-run verdict memo (the
    ``pure-verdict`` table of a
    :class:`~repro.service.store.MemoStore`).  Wall-clock budgets are
    deliberately absent — a seconds budget is not reproducible across
    machines (the provenance-bundle rule), so only frozen-clock,
    step-budgeted checks may be memoised under this key.
    """
    canonical = repr((name, max_steps, seed, sample_count,
                      max_exhaustive, repr(config))).encode()
    return hashlib.blake2b(canonical, digest_size=16).hexdigest()


def check_pure_hardened(model, name, *, max_steps=None, max_seconds=None,
                        seed=0, sample_count=128, max_exhaustive=4096,
                        clock=None) -> CheckReport:
    """Check one pure corpus function through the degradation chain.

    Never raises for budget reasons and never hangs: a verdict (possibly
    ``completed=False`` with whatever the last engine managed) always
    comes back, with the taken path recorded on the report.
    """
    pool = _BudgetPool(max_steps=max_steps, max_seconds=max_seconds,
                       clock=clock)
    domains = default_domains(name, model.config)
    reference = pure_reference(name, model.config, model.layout)
    params = model.program.functions[name].params
    degradations = []
    solver_before = solver_stats()

    def degrade(engine, reason):
        degradations.append(f"{engine}: {reason}")
        _trace.event("degradation", name=name, engine=engine,
                     reason=str(reason))

    def finish(engine, checked, failures, completed=True):
        pool.settle()
        _trace.event("verdict", name=name, engine=engine,
                     checked=checked, failures=len(failures),
                     completed=completed)
        return CheckReport(name=name, checked=checked, failures=failures,
                           engine=engine, degradations=degradations,
                           budget_spent=pool.spent(), completed=completed,
                           solver_stats=stats_delta(solver_before))

    with _trace.span("check.pure", name=name):
        # -- engine 1: symbolic (keep 40% of the pool for fallbacks) -------
        budget = pool.slice(0.6)
        try:
            with _trace.span("engine.symbolic", name=name):
                failures = []
                ok, assertion_failures = verify_assertions(
                    model.program, name, domains, budget=budget)
                if not ok:
                    failures.extend(RefinementFailure(
                        f"assertion can fail: {ob.message} with {witness}",
                        counterexample=witness)
                        for ob, witness in assertion_failures)
                mismatches, stats = check_equivalence(
                    model.program, name, reference, domains, budget=budget)
                failures.extend(RefinementFailure(
                    f"mismatch at {witness}: mir={mv} ref={rv}",
                    counterexample=witness)
                    for witness, mv, rv in mismatches[:5])
                return finish(ENGINE_SYMBOLIC, stats["cells"], failures)
        except (CheckBudgetExceeded, SymbolicUnsupported) as exc:
            degrade(ENGINE_SYMBOLIC, exc)
            pool.settle()

        # -- engine 2: exhaustive-bounded concrete enumeration -------------
        impl = mir_impl(model.program, name, trusted=model.trusted)
        state = model.initial_absstate()
        value_lists = [domains.of(param) for param in params]
        space = 1
        for values in value_lists:
            space *= max(len(values), 1)
        if space > max_exhaustive:
            degrade(ENGINE_EXHAUSTIVE,
                    f"domain too large ({space} inputs > cap "
                    f"{max_exhaustive})")
        elif pool.exhausted:
            degrade(ENGINE_EXHAUSTIVE, "no budget left")
        else:
            budget = pool.slice(0.7)
            failures, checked = [], 0
            try:
                with _trace.span("engine.exhaustive", name=name):
                    for combo in itertools.product(*value_lists):
                        budget.spend(1, what=f"exhaustive input of {name}")
                        args = tuple(_wrap(v) for v in combo)
                        _run_concrete(impl, state, reference, args,
                                      failures)
                        checked += 1
                    return finish(ENGINE_EXHAUSTIVE, checked, failures)
            except CheckBudgetExceeded as exc:
                degrade(ENGINE_EXHAUSTIVE, exc)
                pool.settle()

        # -- engine 3: property sampling (last resort, partial on cutoff) --
        rng = random.Random(f"{name}:{seed}")
        budget = pool.slice()
        failures, checked, completed = [], 0, True
        with _trace.span("engine.sampling", name=name):
            try:
                for _ in range(sample_count):
                    budget.spend(1, what=f"sampled input of {name}")
                    combo = [rng.choice(values) if values else 0
                             for values in value_lists]
                    args = tuple(_wrap(v) for v in combo)
                    _run_concrete(impl, state, reference, args, failures)
                    checked += 1
            except CheckBudgetExceeded as exc:
                degrade(ENGINE_SAMPLING, exc)
                completed = False
            return finish(ENGINE_SAMPLING, checked, failures,
                          completed=completed)


def check_stateful_hardened(model, name, *, max_steps=None,
                            max_seconds=None, seed=0, count=24,
                            min_checked=1, max_reseeds=2,
                            clock=None) -> CheckReport:
    """Co-simulate one stateful function under budget, reseeding boundedly.

    A sampled campaign is only evidence if enough samples land inside
    the spec's precondition; when fewer than ``min_checked`` do, the
    generator is reseeded and the campaign rerun — at most
    ``max_reseeds`` times, each retry charged against the same budget.
    Budget exhaustion mid-campaign returns ``completed=False`` instead
    of raising, so a caller sweeping the whole corpus cannot be hung or
    crashed by one hostile function.
    """
    from repro.verification.code_proofs import (
        _mir_args_setup, low_spec_for, sample_states,
    )

    pool = _BudgetPool(max_steps=max_steps, max_seconds=max_seconds,
                       clock=clock)
    solver_before = solver_stats()
    spec = low_spec_for(model, name)
    impl = mir_impl(model.program, name, trusted=model.trusted,
                    setup=_mir_args_setup(model, name))
    checker = CoSimChecker(name=name, impl=impl, spec=spec)
    degradations = []
    last = None
    with _trace.span("check.stateful", name=name):
        for attempt in range(max_reseeds + 1):
            if pool.exhausted and attempt:
                degradations.append(
                    f"reseed {attempt}: no budget left, stopping retries")
                _trace.event("reseed", name=name, attempt=attempt,
                             reason="no budget left")
                break
            budget = pool.slice()
            samples = sample_states(model, name, seed=seed + attempt,
                                    count=count)
            try:
                last = checker.check(samples, budget=budget)
            except CheckBudgetExceeded as exc:
                pool.settle()
                degradations.append(
                    f"cosim (seed {seed + attempt}): {exc}")
                _trace.event("degradation", name=name, engine="cosim",
                             reason=str(exc))
                _trace.event("verdict", name=name, engine="cosim",
                             checked=0, failures=0, completed=False)
                return CheckReport(
                    name=name, checked=0, failures=[], engine="cosim",
                    degradations=degradations, budget_spent=pool.spent(),
                    seed_retries=attempt, completed=False,
                    solver_stats=stats_delta(solver_before))
            pool.settle()
            if last.checked >= min_checked or last.failures:
                break
            degradations.append(
                f"reseed {attempt + 1}: only {last.checked} of {count} "
                f"samples inside the precondition (seed {seed + attempt})")
            _trace.event("reseed", name=name, attempt=attempt + 1,
                         checked=last.checked)
        retries = sum(1 for d in degradations if d.startswith("reseed"))
        _trace.event("verdict", name=name, engine="cosim",
                     checked=last.checked if last else 0,
                     failures=len(last.failures) if last else 0,
                     completed=True)
        return CheckReport(
            name=name, checked=last.checked if last else 0,
            skipped=last.skipped if last else 0,
            failures=last.failures if last else [],
            engine="cosim", degradations=degradations,
            budget_spent=pool.spent(), seed_retries=retries,
            completed=True, solver_stats=stats_delta(solver_before))
