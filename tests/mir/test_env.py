"""Temporary environments and activation frames."""

import pytest

from repro.errors import MirRuntimeError
from repro.mir.builder import FunctionBuilder
from repro.mir.env import Frame, TempEnv
from repro.mir.value import mk_u64


def sample_function():
    fb = FunctionBuilder("f", ["a"])
    fb.assign("x", 1)
    fb.goto("bb1")
    fb.label("bb1")
    fb.ret("x")
    return fb.finish()


class TestTempEnv:
    def test_write_read(self):
        env = TempEnv()
        env.write("x", mk_u64(5))
        assert env.read("x").value == 5
        assert "x" in env and env.is_bound("x")

    def test_uninitialised_read_rejected(self):
        with pytest.raises(MirRuntimeError, match="uninitialised"):
            TempEnv().read("ghost")

    def test_non_value_rejected(self):
        with pytest.raises(MirRuntimeError):
            TempEnv().write("x", 42)

    def test_len(self):
        env = TempEnv()
        env.write("x", mk_u64(1))
        env.write("y", mk_u64(2))
        env.write("x", mk_u64(3))  # overwrite, not a new binding
        assert len(env) == 2


class TestFrame:
    def test_starts_at_entry(self):
        frame = Frame(function=sample_function(), frame_id=0)
        assert frame.block == "bb0"
        assert frame.stmt_index == 0
        assert not frame.at_terminator()

    def test_statement_progression(self):
        frame = Frame(function=sample_function(), frame_id=0)
        assert frame.current_statement() is not None
        frame.stmt_index += 1
        assert frame.at_terminator()

    def test_jump(self):
        frame = Frame(function=sample_function(), frame_id=0)
        frame.stmt_index = 1
        frame.jump("bb1")
        assert frame.block == "bb1"
        assert frame.stmt_index == 0

    def test_jump_to_unknown_block_rejected(self):
        frame = Frame(function=sample_function(), frame_id=0)
        with pytest.raises(MirRuntimeError, match="unknown block"):
            frame.jump("bb99")
