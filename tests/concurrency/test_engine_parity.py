"""Continuation ↔ threads engine parity, driven by Hypothesis.

The continuation engine's one hard guarantee: for any ``Schedule`` —
seed, preemption set, crash point — the run it produces is
**byte-identical** (``repr``-equal, covering every Decision and
YieldPoint field) to the legacy threaded engine's, with the same final
state fingerprint and the same noninterference verdicts.  The threaded
engine stays in the tree exactly so this suite (and the CI digest gate)
can keep holding the new engine to it.

Directed cases pin the hairiest corners: a crash delivered mid-
hypercall (journal rollback, then the crashed vCPU's parked
``hc.return``), and snapshot-cache runs under forced eviction at
capacity 0 and 1 on both engines.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.concurrency.scheduler import ENV_ENGINE, Schedule
from repro.concurrency.snapshot import SnapshotTree, reset_process_tree
from repro.engine.campaigns import parallel_interleaving_campaign
from repro.engine.fingerprint import state_fingerprint
from repro.faults.campaign import (
    build_interleaved_world,
    execute_interleaved,
    make_interleaved_run,
)
from repro.hyperenclave.monitor import HOST_ID
from repro.security.noninterference import check_schedule_noninterference


@contextmanager
def engine(name):
    saved = os.environ.get(ENV_ENGINE)
    os.environ[ENV_ENGINE] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(ENV_ENGINE, None)
        else:
            os.environ[ENV_ENGINE] = saved


def _run(engine_name, schedule):
    with engine(engine_name):
        state, ctx = build_interleaved_world()
        state, result = execute_interleaved(state, ctx, schedule)
        return result, state_fingerprint(state)


SCHEDULES = st.builds(
    Schedule,
    seed=st.integers(0, 7),
    preemptions=st.lists(
        st.tuples(st.integers(0, 1), st.integers(1, 20)),
        max_size=2).map(tuple),
    crash=st.one_of(st.none(),
                    st.tuples(st.integers(0, 1), st.integers(1, 16))))


@given(schedule=SCHEDULES)
@settings(max_examples=25, deadline=None)
def test_random_schedules_run_byte_identically(schedule):
    """Random (seed, preemptions, crash): identical RunResult reprs
    and identical final state fingerprints on both engines."""
    result_t, fp_t = _run("threads", schedule)
    result_c, fp_c = _run("continuation", schedule)
    assert repr(result_c) == repr(result_t)
    assert fp_c == fp_t


@given(data=st.data())
@settings(max_examples=5, deadline=None)
def test_ni_verdicts_match_across_engines(data):
    """The schedule-NI re-run (two worlds, both engines) returns the
    same verdict strings."""
    schedule = data.draw(SCHEDULES, label="schedule")
    verdicts = {}
    for name in ("threads", "continuation"):
        with engine(name):
            run_world = make_interleaved_run()
            verdicts[name] = [str(v) for v in
                              check_schedule_noninterference(
                                  run_world, schedule, [HOST_ID])]
    assert verdicts["continuation"] == verdicts["threads"]


@pytest.mark.parametrize("crash", [(0, 7), (1, 3), (0, 15)])
def test_mid_hypercall_crash_rolls_back_identically(crash):
    """A crash inside a hypercall (open transaction journal) must roll
    back and park the vCPU identically: the crashed task's trailing
    ``hc.return`` yield is recorded on both engines, and the rolled-
    back state fingerprints agree."""
    schedule = Schedule(seed=0, preemptions=(), crash=crash)
    result_t, fp_t = _run("threads", schedule)
    result_c, fp_c = _run("continuation", schedule)
    assert repr(result_c) == repr(result_t)
    assert fp_c == fp_t
    assert crash[0] in result_c.parked


@pytest.mark.parametrize("tree_kwargs", [
    {"budget_bytes": 0}, {"max_nodes": 1}])
def test_forced_eviction_parity(tree_kwargs):
    """Snapshot-cache campaigns under forced eviction (capacity 0 and
    a 1-node LRU) produce engine-independent results."""
    grid = dict(seed=0, preemption_bound=1, max_schedules=10,
                check_ni=False, workers=1, prefix_cache=True)
    reports = {}
    try:
        for name in ("threads", "continuation"):
            reset_process_tree(SnapshotTree(**tree_kwargs))
            with engine(name):
                reports[name] = repr(parallel_interleaving_campaign(**grid))
    finally:
        reset_process_tree(None)
    assert reports["continuation"] == reports["threads"]
