"""Campaign drivers: sweep every fault site × every step of every hypercall.

The crash-step campaign is the executable form of the robustness claim:
*a hypercall that fails at any step leaves the monitor exactly where it
started, with all Sec. 5.2 invariant families intact*.  The driver

1. dry-runs each hypercall of a workload under a record-only
   :class:`~repro.faults.plane.FaultPlane` to count how often each
   injection site is reached (the injectable step indices),
2. then, for every ``(hypercall, site, step)`` triple, rebuilds the
   world deterministically, arms one fault, runs the hypercall, and
   checks three things: the typed abort surfaced
   (:class:`~repro.errors.HypercallAborted`), the state digest equals
   the pre-hypercall digest (rollback), and
   :func:`repro.security.invariants.check_all_invariants` is all green.

Running the same campaign against the deliberately broken
``NonTransactionalMonitor`` produces failures — which is what makes the
all-green run on the real monitor evidence rather than vacuity.

The bit-flip campaign is the other half of hostile-environment
robustness: arbitrary single-bit corruption of *untrusted* memory must
never disturb any invariant family, because no secure state is ever
derived from untrusted bytes.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjected, HypercallAborted, ReproError
from repro.obs import trace as _trace
from repro.faults.plane import (
    EXHAUST,
    RAISE,
    SITE_EPCM_ALLOC,
    SITE_FRAME_ALLOC,
    SITE_PHYS_WRITE,
    FaultPlane,
    installed,
)

DEFAULT_SITES = (SITE_FRAME_ALLOC, SITE_EPCM_ALLOC, SITE_PHYS_WRITE)

# Allocator sites are injected as typed exhaustion (the organic failure
# they model); everything else as a raw injected fault.
_KIND_FOR_SITE = {SITE_FRAME_ALLOC: EXHAUST, SITE_EPCM_ALLOC: EXHAUST}


def hypercall_site(name: str) -> str:
    """The crash-point site name of hypercall ``name`` (e.g. ``add_page``)."""
    return f"hc.{name}"


@dataclass
class RunRecord:
    """One faulted execution of one hypercall."""

    hypercall: str
    site: str
    step: int
    kind: str
    outcome: str                      # aborted | completed | escaped:<type>
    fired: bool
    rolled_back: Optional[bool]       # None when rollback is not expected
    invariants_ok: bool
    detail: str = ""
    fired_faults: Tuple = ()          # the plane's FiredFault trace

    @property
    def ok(self) -> bool:
        """Did this run behave exactly as the robustness claim demands?"""
        if not self.invariants_ok:
            return False
        if not self.fired:
            return self.outcome == "completed"
        if self.rolled_back is None:
            # Injections without abort semantics (bit flips): green means
            # the run completed and the sweep stayed clean.
            return self.outcome == "completed"
        return self.outcome == "aborted" and self.rolled_back


@dataclass
class CampaignReport:
    """Aggregate of a fault campaign."""

    seed: int = 0
    runs: List[RunRecord] = field(default_factory=list)

    @property
    def faults_injected(self):
        return sum(1 for run in self.runs if run.fired)

    @property
    def rollbacks_verified(self):
        return sum(1 for run in self.runs if run.fired and run.rolled_back)

    @property
    def invariant_sweeps_passed(self):
        return sum(1 for run in self.runs if run.invariants_ok)

    def failures(self) -> List[RunRecord]:
        return [run for run in self.runs if not run.ok]

    @property
    def ok(self):
        return not self.failures()

    def by_hypercall_site(self) -> Dict[Tuple[str, str], List[RunRecord]]:
        """Runs grouped by ``(hypercall, site)`` for tabular rendering."""
        grouped: Dict[Tuple[str, str], List[RunRecord]] = {}
        for run in self.runs:
            grouped.setdefault((run.hypercall, run.site), []).append(run)
        return grouped

    def render(self, title="Crash-step fault-injection campaign") -> str:
        """A per-(hypercall, site) table plus one summary line."""
        from repro.reporting import render_table
        rows = []
        for (hypercall, site), runs in sorted(
                self.by_hypercall_site().items()):
            rows.append([
                hypercall, site, len(runs),
                sum(1 for r in runs if r.fired),
                sum(1 for r in runs if r.fired and r.rolled_back),
                sum(1 for r in runs if r.invariants_ok),
                "ok" if all(r.ok for r in runs) else "FAIL",
            ])
        table = render_table(
            ["hypercall", "site", "steps", "injected", "rolled back",
             "sweeps green", "verdict"],
            rows, title=title)
        summary = (f"total: {len(self.runs)} faulted runs, "
                   f"{self.faults_injected} faults injected, "
                   f"{self.rollbacks_verified} rollbacks verified, "
                   f"{self.invariant_sweeps_passed} invariant sweeps "
                   f"passed, {len(self.failures())} failures "
                   f"(seed={self.seed})")
        return table + "\n" + summary


# ---------------------------------------------------------------------------
# Workloads: (name, invoke) pairs over a deterministic world factory
# ---------------------------------------------------------------------------


def default_world_factory(config=None):
    """A deterministic ``() -> (monitor, ctx)`` factory over TINY.

    ``ctx`` carries the workload's shared addresses (mbuf, source page,
    ELRANGE) plus whatever the calls stash (the enclave id).
    """
    from repro.hyperenclave.constants import TINY
    from repro.hyperenclave.monitor import RustMonitor

    config = config or TINY

    def factory():
        monitor = RustMonitor(config)
        primary_os = monitor.primary_os
        page = config.page_size
        ctx = {
            "page": page,
            "mbuf_pa": config.frame_base(primary_os.reserve_data_frame()),
            "src_pa": config.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * page,
        }
        primary_os.gpa_write_word(ctx["src_pa"], 0xDEAD)
        return monitor, ctx

    return factory


def default_workload() -> List[Tuple[str, Callable]]:
    """The full-lifecycle workload: every hypercall appears at least once.

    create → add → remove → add → init → aug → trim → enter → exit →
    destroy, so the sweep exercises every crash point of every hypercall
    from a state where it actually mutates something (the trim removes
    the page the aug just grew, post-init — the SGX2 shrink path).
    """
    def create(monitor, ctx):
        ctx["eid"] = monitor.hc_create(
            elrange_base=ctx["elrange_base"],
            elrange_size=4 * ctx["page"],
            mbuf_va=12 * ctx["page"], mbuf_pa=ctx["mbuf_pa"],
            mbuf_size=ctx["page"])

    return [
        ("create", create),
        ("add_page", lambda m, c: m.hc_add_page(
            c["eid"], c["elrange_base"], c["src_pa"])),
        ("remove_page", lambda m, c: m.hc_remove_page(
            c["eid"], c["elrange_base"])),
        ("add_page", lambda m, c: m.hc_add_page(
            c["eid"], c["elrange_base"], c["src_pa"])),
        ("init", lambda m, c: m.hc_init(c["eid"])),
        ("aug_page", lambda m, c: m.hc_aug_page(
            c["eid"], c["elrange_base"] + c["page"])),
        ("trim_page", lambda m, c: m.hc_trim_page(
            c["eid"], c["elrange_base"] + c["page"])),
        ("enter", lambda m, c: m.hc_enter(c["eid"])),
        ("exit", lambda m, c: m.hc_exit(c["eid"])),
        ("destroy", lambda m, c: m.hc_destroy(c["eid"])),
    ]


def _world_at(world_factory, calls, upto):
    """A fresh world with ``calls[:upto]`` already applied cleanly."""
    monitor, ctx = world_factory()
    for _name, invoke in calls[:upto]:
        invoke(monitor, ctx)
    return monitor, ctx


def enumerate_injectable_steps(world_factory, calls,
                               sites: Sequence[str] = DEFAULT_SITES
                               ) -> List[Dict[str, int]]:
    """Dry-run each call under a record-only plane; hit counts per site.

    Entry ``i`` of the result maps every reached site (the shared sites
    plus the call's own ``hc.<name>`` crash points) to how many times
    the executing hypercall passed through it — the sweepable step
    indices.
    """
    per_call = []
    for index, (name, invoke) in enumerate(calls):
        monitor, ctx = _world_at(world_factory, calls, index)
        plane = FaultPlane(record_only=True)
        with installed(plane):
            invoke(monitor, ctx)
        reached = {}
        for site in tuple(sites) + (hypercall_site(name),):
            hits = plane.counts.get(site, 0)
            if hits:
                reached[site] = hits
        per_call.append(reached)
    return per_call


def scheduled_runner(invoke, monitor, ctx):
    """Run one hypercall as vCPU 0 of a one-task deterministic schedule.

    The determinism guard: handing ``runner=scheduled_runner`` to
    :func:`crash_step_campaign` must change *nothing* — same fired
    faults, same verdicts — because a single-vCPU schedule has exactly
    one enabled choice at every decision and the concurrency plane's
    journal rollback must be observation-equivalent to the sequential
    whole-monitor snapshot.
    """
    from repro.concurrency import DeterministicScheduler, Schedule

    box = {}

    def task():
        box["result"] = invoke(monitor, ctx)

    scheduler = DeterministicScheduler(monitor, [task], Schedule())
    run = scheduler.run()
    for exc in run.task_errors.values():
        raise exc
    return box.get("result")


def crash_step_units(world_factory, calls,
                     sites: Sequence[str] = DEFAULT_SITES
                     ) -> List[Tuple[int, str, str, int]]:
    """The campaign's work units, in sweep order:
    ``(call index, site, kind, step)`` for every injectable step."""
    step_table = enumerate_injectable_steps(world_factory, calls, sites)
    units = []
    for index, _call in enumerate(calls):
        for site, hits in sorted(step_table[index].items()):
            kind = _KIND_FOR_SITE.get(site, RAISE)
            for step in range(hits):
                units.append((index, site, kind, step))
    return units


def run_crash_step_unit(world_factory, calls, index, site, kind, step, *,
                        seed=0, runner=None) -> RunRecord:
    """One armed ``(hypercall, site, step)`` execution: rebuild the
    world, arm exactly one fault, run, verify rollback and invariants.
    """
    from repro.hyperenclave.txn import monitor_digest
    from repro.security.invariants import check_all_invariants

    name, invoke = calls[index]
    monitor, ctx = _world_at(world_factory, calls, index)
    pre_digest = monitor_digest(monitor)
    plane = FaultPlane(seed=seed)
    plane.arm(site, index=step, kind=kind)
    outcome, detail = "completed", ""
    with installed(plane):
        try:
            if runner is None:
                invoke(monitor, ctx)
            else:
                runner(invoke, monitor, ctx)
        except HypercallAborted as exc:
            outcome, detail = "aborted", str(exc.cause)
        except (FaultInjected, ReproError) as exc:
            # A fault that escapes the transactional wrapper
            # raw — the non-transactional signature.
            outcome = f"escaped:{type(exc).__name__}"
            detail = str(exc)
    rolled_back = monitor_digest(monitor) == pre_digest
    invariants_ok = check_all_invariants(monitor).ok
    return RunRecord(
        hypercall=name, site=site, step=step, kind=kind,
        outcome=outcome, fired=bool(plane.fired),
        rolled_back=rolled_back, invariants_ok=invariants_ok,
        detail=detail, fired_faults=tuple(plane.fired))


def crash_step_campaign(world_factory, calls, *,
                        sites: Sequence[str] = DEFAULT_SITES,
                        seed=0, runner=None) -> CampaignReport:
    """Sweep every fault site × every step index of every hypercall.

    ``world_factory() -> (monitor, ctx)`` must be deterministic;
    ``calls`` is an ordered workload of ``(name, invoke)`` pairs where
    ``invoke(monitor, ctx)`` performs exactly one hypercall.
    ``runner``, if given, wraps each *armed* invocation (the fault-free
    world rebuilding stays direct) — see :func:`scheduled_runner`.
    """
    report = CampaignReport(seed=seed)
    with _trace.span("campaign.crash-step", seed=seed, parallel=False):
        for index, site, kind, step in crash_step_units(
                world_factory, calls, sites):
            report.runs.append(run_crash_step_unit(
                world_factory, calls, index, site, kind, step,
                seed=seed, runner=runner))
    return report


# ---------------------------------------------------------------------------
# Untrusted-memory bit flips
# ---------------------------------------------------------------------------


def bitflip_campaign(world_factory, calls=(), *, flips=64,
                     seed=0) -> CampaignReport:
    """Flip seed-chosen bits in untrusted memory; invariants must hold.

    No Sec. 5.2 invariant family may depend on a single byte of
    untrusted memory, so arbitrary corruption there (rowhammer, a
    hostile OS scribbling over its own RAM) must leave every sweep
    green — and must never crash a checker.  ``calls`` (a workload
    prefix) runs first so the flips land next to a *live* enclave
    rather than an empty monitor.
    """
    monitor, _ctx = _world_at(world_factory, list(calls), len(calls))
    rng = random.Random(f"bitflip:{seed}")
    config = monitor.config
    report = CampaignReport(seed=seed)
    with _trace.span("campaign.bitflip", seed=seed, flips=flips,
                     parallel=False):
        _bitflip_sweep(monitor, rng, config, report, flips)
    return report


def _bitflip_sweep(monitor, rng, config, report, flips):
    from repro.hyperenclave.constants import WORD_BYTES
    from repro.security.invariants import check_all_invariants

    for index in range(flips):
        frame = rng.randrange(monitor.layout.secure_base)
        word = rng.randrange(config.words_per_page)
        bit = rng.randrange(64)
        paddr = config.frame_base(frame) + word * WORD_BYTES
        monitor.phys.write_word(paddr,
                                monitor.phys.read_word(paddr) ^ (1 << bit))
        invariants_ok = check_all_invariants(monitor).ok
        report.runs.append(RunRecord(
            hypercall="-", site="phys.bitflip-untrusted", step=index,
            kind="flip", outcome="completed", fired=True,
            rolled_back=None, invariants_ok=invariants_ok,
            detail=f"frame {frame} word {word} bit {bit}"))


# ---------------------------------------------------------------------------
# Crash-step noninterference
# ---------------------------------------------------------------------------


def default_two_worlds(config=None, secrets=(41, 42)):
    """A deterministic ``() -> (worlds, eid)`` factory for NI campaigns.

    Two booted monitors differing only in one word of an enclave's
    initial memory (the paper's 41-vs-42 construction), each wrapped in
    a :class:`~repro.security.state.SystemState` with a seeded data
    oracle, paired into :class:`~repro.security.noninterference.TwoWorlds`.
    """
    from repro.hyperenclave.constants import TINY
    from repro.hyperenclave.monitor import RustMonitor
    from repro.security.noninterference import TwoWorlds
    from repro.security.oracle import DataOracle
    from repro.security.state import SystemState

    config = config or TINY

    def factory():
        def one(secret):
            monitor = RustMonitor(config)
            primary_os = monitor.primary_os
            primary_os.spawn_app(1)
            page = config.page_size
            mbuf_pa = config.frame_base(primary_os.reserve_data_frame())
            src_pa = config.frame_base(primary_os.reserve_data_frame())
            primary_os.gpa_write_word(src_pa, secret)
            eid = monitor.hc_create(16 * page, 4 * page, 12 * page,
                                    mbuf_pa, page)
            monitor.hc_add_page(eid, 16 * page, src_pa)
            primary_os.gpa_write_word(src_pa, 0)
            monitor.hc_init(eid)
            return SystemState(monitor, DataOracle.seeded(13)), eid
        world_a, eid = one(secrets[0])
        world_b, _eid = one(secrets[1])
        return TwoWorlds(world_a, world_b), eid

    return factory


def default_ni_trace(eid, page_size):
    """An enclave session around every faultable lifecycle hypercall.

    Steps are transition-system :class:`~repro.security.transitions.Step`
    values (or ``(step_a, step_b)`` pairs for secret-touching moves
    inside the enclave); hypercall steps are the fault targets.
    """
    from repro.hyperenclave.monitor import HOST_ID
    from repro.security.transitions import Hypercall, MemLoad

    return [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * page_size, "rax"),
         MemLoad(eid, 16 * page_size, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        Hypercall(HOST_ID, "aug_page", (eid, 17 * page_size)),
        Hypercall(HOST_ID, "enter", (eid,)),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        Hypercall(HOST_ID, "destroy", (eid,)),
    ]


def _split(item):
    if isinstance(item, tuple) and len(item) == 2:
        return item
    return item, item


def _apply_tolerant(state, step):
    """Apply one step; schedule violations after an aborted hypercall
    (e.g. enclave moves after a crashed ``enter``) become no-op skips."""
    from repro.errors import SecurityError
    from repro.security.transitions import apply_step
    try:
        return apply_step(state, step).applied
    except SecurityError:
        return None


def crash_ni_campaign(two_worlds_factory=None, trace=None, *,
                      sites: Sequence[str] = DEFAULT_SITES,
                      observers=None, seed=0) -> CampaignReport:
    """The crash-step noninterference campaign (on top of Lemmas 5.2-5.4).

    The step-wise lemmas quantify over *completed* transitions; this
    campaign quantifies over *crashed* ones: for every hypercall step of
    a two-world trace and every injectable fault site/step index, the
    same fault is injected into both worlds (identical seeded planes,
    one per world so hit counting stays symmetric), and the observers
    must remain unable to distinguish the worlds — right after the
    rolled-back hypercall and through the whole remaining trace.  A
    crash that opened a distinguishing channel (partial mutations
    visible to the host, an asymmetric abort) is a violation.
    """
    from repro.hyperenclave.monitor import HOST_ID

    factory = two_worlds_factory or default_two_worlds()
    worlds_probe, eid = factory()
    observers = list(observers) if observers is not None else [HOST_ID]
    if trace is None:
        trace = default_ni_trace(
            eid, worlds_probe.a.monitor.config.page_size)

    report = CampaignReport(seed=seed)
    with _trace.span("campaign.crash-ni", seed=seed, parallel=False):
        for index in range(len(trace)):
            report.runs.extend(run_crash_ni_index(
                factory, trace, index, sites=sites, observers=observers,
                seed=seed))
    return report


def run_crash_ni_index(two_worlds_factory, trace, index, *,
                       sites: Sequence[str] = DEFAULT_SITES,
                       observers, seed=0) -> List[RunRecord]:
    """All crash-NI runs for one trace step — the campaign's unit of
    work.  Non-hypercall steps have no crash points: empty list."""
    from repro.security.noninterference import (
        indistinguishable as indist)
    from repro.security.transitions import Hypercall

    item = trace[index]
    step_a, _step_b = _split(item)
    if not isinstance(step_a, Hypercall):
        return []
    # Reach the prefix state freshly, then count this step's hits.
    worlds, _eid = two_worlds_factory()
    for prior in trace[:index]:
        pa, pb = _split(prior)
        _apply_tolerant(worlds.a, pa)
        _apply_tolerant(worlds.b, pb)
    probe = worlds.a.clone()
    recorder = FaultPlane(record_only=True)
    with installed(recorder):
        _apply_tolerant(probe, step_a)
    reached = {}
    for site in tuple(sites) + (hypercall_site(step_a.name),):
        if recorder.counts.get(site, 0):
            reached[site] = recorder.counts[site]
    runs = []
    for site, hits in sorted(reached.items()):
        kind = _KIND_FOR_SITE.get(site, RAISE)
        for step in range(hits):
            state_a = worlds.a.clone()
            state_b = worlds.b.clone()
            plane_a = FaultPlane(seed=seed).arm(site, index=step,
                                                kind=kind)
            plane_b = FaultPlane(seed=seed).arm(site, index=step,
                                                kind=kind)
            sa, sb = _split(item)
            with installed(plane_a):
                applied_a = _apply_tolerant(state_a, sa)
            with installed(plane_b):
                applied_b = _apply_tolerant(state_b, sb)
            fired = bool(plane_a.fired)
            symmetric = applied_a == applied_b and \
                bool(plane_a.fired) == bool(plane_b.fired)
            indistinguishable = True
            for observer in observers:
                if not indist(state_a, state_b, observer):
                    indistinguishable = False
            # Drain the rest of the trace; every suffix step must
            # keep the worlds indistinguishable too.
            for later in trace[index + 1:]:
                la, lb = _split(later)
                ra = _apply_tolerant(state_a, la)
                rb = _apply_tolerant(state_b, lb)
                symmetric = symmetric and (ra == rb)
                for observer in observers:
                    if not indist(state_a, state_b, observer):
                        indistinguishable = False
            outcome = "aborted" if fired else "completed"
            runs.append(RunRecord(
                hypercall=step_a.name, site=site, step=step,
                kind=kind, outcome=outcome, fired=fired,
                rolled_back=symmetric if fired else None,
                invariants_ok=indistinguishable,
                detail=f"trace step {index}"))
    return runs


# ---------------------------------------------------------------------------
# Multi-vCPU interleaving campaigns
# ---------------------------------------------------------------------------


def default_concurrent_scripts(ctx):
    """The two racing vCPU step scripts, as plain lists.

    Shared by the legacy closure workloads below and the snapshot
    tree's resumable workloads — both must execute the *identical* step
    sequence for restore-from-snapshot runs to be byte-identical to
    from-scratch ones.
    """
    from repro.hyperenclave.monitor import HOST_ID
    from repro.security.transitions import Hypercall, MemLoad

    page, base = ctx["page"], ctx["elrange_base"]
    host_script = [
        Hypercall(HOST_ID, "create",
                  (base, 4 * page, 12 * page, ctx["mbuf_pa"], page)),
        Hypercall(HOST_ID, "add_page", (1, base, ctx["src_pa"])),
        Hypercall(HOST_ID, "init", (1,)),
        Hypercall(HOST_ID, "trim_page", (1, base)),
    ]
    guest_script = [
        Hypercall(HOST_ID, "enter", (1,)),
        MemLoad(1, base, "rax"),
        MemLoad(1, base, "rbx"),
        Hypercall(1, "exit", (1,)),
    ]
    return [host_script, guest_script]


def default_concurrent_workloads(state, ctx):
    """Two racing vCPU scripts over one shared monitor.

    vCPU 0 (the management core) builds an enclave and then trims its
    only page — the SGX2 shrink path whose TLB shootdown is
    load-bearing.  vCPU 1 (the application core) races an
    enter → load → load → exit session through the same enclave.  Every
    step goes through the transition system (so each is a preemption
    point), and mis-sequenced steps — entering before ``init`` landed,
    loading after a rejected enter — are tolerated skips, which is what
    lets *every* interleaving of the two scripts run to completion.
    """
    host_script, guest_script = default_concurrent_scripts(ctx)

    def script_task(script):
        def run():
            for step in script:
                _apply_tolerant(state, step)
        return run

    return [script_task(host_script), script_task(guest_script)]


class ScriptWorkloads:
    """Script runners whose per-vCPU progress is observable/restorable.

    The snapshot tree needs to know, at a capture point, *where in its
    script* each vCPU is — and needs restored tasks to pick up from an
    arbitrary step.  ``positions[vid]`` is the index of the step the
    vCPU is currently inside (incremented only after the step
    completes), so a task parked at the top-of-step yield restores by
    re-entering exactly that step.  Step-for-step this executes the
    same sequence as the closures above.

    This is also the scheduler's *step-drivable workload protocol*
    (``run_step``/``advance``/``steps_remaining``/``tasks``): handed to
    :class:`~repro.concurrency.DeterministicScheduler` directly, the
    continuation engine drives each script one step at a time from its
    own loop — inline when the scheduling is settled, on a pooled fiber
    otherwise — while the threaded engine falls back to the
    :meth:`tasks` closures.  Both paths execute the identical step
    sequence through these same three methods.
    """

    def __init__(self, state, scripts, positions=None):
        self.state = state
        self.scripts = scripts
        self.positions = (list(positions) if positions is not None
                          else [0] * len(scripts))

    def steps_remaining(self, vid) -> bool:
        return self.positions[vid] < len(self.scripts[vid])

    def run_step(self, vid):
        """Execute vCPU ``vid``'s current step (position unchanged)."""
        _apply_tolerant(self.state, self.scripts[vid][self.positions[vid]])

    def advance(self, vid):
        self.positions[vid] += 1

    def tasks(self):
        return [self._runner(vid) for vid in range(len(self.scripts))]

    def _runner(self, vid):
        def run():
            while self.steps_remaining(vid):
                self.run_step(vid)
                self.advance(vid)
        return run


def build_interleaved_world(monitor_cls=None, config=None, *, secret=41):
    """The interleaved-campaign world, pre-schedule: ``(state, ctx)``.

    A two-vCPU monitor, one app, and a source page holding ``secret``.
    The returned state has executed nothing yet, so it can serve as a
    clean prototype: :meth:`SystemState.clone` of it is exactly the
    world a fresh build would produce (the parallel fabric builds one
    prototype per worker and clones per schedule).
    """
    from repro.hyperenclave.constants import TINY
    from repro.hyperenclave.monitor import RustMonitor
    from repro.security.oracle import DataOracle
    from repro.security.state import SystemState

    config = config or TINY
    cls = monitor_cls or RustMonitor
    monitor = cls(config, num_vcpus=2)
    primary_os = monitor.primary_os
    primary_os.spawn_app(1)
    page = config.page_size
    ctx = {
        "page": page,
        "mbuf_pa": config.frame_base(primary_os.reserve_data_frame()),
        "src_pa": config.frame_base(primary_os.reserve_data_frame()),
        "elrange_base": 16 * page,
    }
    primary_os.gpa_write_word(ctx["src_pa"], secret)
    return SystemState(monitor, DataOracle.seeded(13)), ctx


def execute_interleaved(state, ctx, schedule, *, workloads=None,
                        probe=True, fast_handoff=False):
    """Run ``schedule`` over a :func:`build_interleaved_world` state.

    The vCPU scripts come from ``workloads`` (default
    :func:`default_concurrent_workloads`); the stale-translation
    detector probes after every decision unless ``probe`` is false.
    ``fast_handoff`` enables the scheduler's inline-decision path (used
    by the parallel fabric's workers; byte-identical results either
    way).
    """
    from repro.concurrency import DeterministicScheduler
    from repro.concurrency.shootdown import detect_stale_translations

    if workloads is None:
        # the default scripts go in step-drivable form so the
        # continuation engine can run them inline (custom ``workloads``
        # builders keep the legacy list-of-callables contract)
        built = ScriptWorkloads(state, default_concurrent_scripts(ctx))
    else:
        built = workloads(state, ctx)
    scheduler = DeterministicScheduler(
        state.monitor, built, schedule,
        probe=detect_stale_translations if probe else None,
        fast_handoff=fast_handoff)
    result = scheduler.run()
    # Scrub the source page the harness used to seed the secret —
    # the concurrent analogue of :func:`default_two_worlds` zeroing
    # it right after ``hc_add_page``.  Once inside the enclave the
    # secret is exactly what noninterference must hide; the staging
    # copy in host memory is a harness artifact, not a channel.
    state.monitor.primary_os.gpa_write_word(ctx["src_pa"], 0)
    return state, result


def execute_interleaved_cached(prototype, ctx, schedule, *, tree,
                               world_key, probe=True,
                               fast_handoff=True):
    """:func:`execute_interleaved`, restored from the snapshot tree.

    Looks up the deepest cached ancestor of ``schedule``'s predicted
    trace prefix in ``tree``; on a hit the run starts from a clone of
    the node's frozen state with the cached prefix records pre-seeded,
    on a miss it starts from a clone of ``prototype``.  Either way a
    :class:`~repro.concurrency.snapshot.SnapshotPlan` captures new
    nodes at snapshot-safe decisions, and the finished trace is
    recorded so children of this schedule can predict their prefixes.
    Results are byte-identical to :func:`execute_interleaved` — the
    equivalence suite pins this, including under forced eviction.
    """
    from repro.concurrency import DeterministicScheduler
    from repro.concurrency.shootdown import detect_stale_translations
    from repro.concurrency.snapshot import SnapshotPlan

    scripts = default_concurrent_scripts(ctx)
    node = tree.lookup(world_key, schedule)
    if node is not None:
        state = node.state.clone()
        workloads = ScriptWorkloads(state, scripts, node.positions())
    else:
        state = prototype.clone()
        workloads = ScriptWorkloads(state, scripts)
    scheduler = DeterministicScheduler(
        state.monitor, workloads, schedule,
        probe=detect_stale_translations if probe else None,
        fast_handoff=fast_handoff)
    if node is not None:
        node.apply_to(scheduler)
    scheduler.snapshots = SnapshotPlan(tree, world_key, state,
                                       workloads, schedule,
                                       resumed_from=node)
    result = scheduler.run()
    tree.record_trace(world_key, schedule, result.trace)
    # Same post-run scrub as execute_interleaved (see there).  Nodes
    # are captured mid-run, pre-scrub — exactly the state a from-
    # scratch run holds at the same point.
    state.monitor.primary_os.gpa_write_word(ctx["src_pa"], 0)
    return state, result


def make_interleaved_run(monitor_cls=None, config=None, *,
                         workloads=None, probe=True, amortize=True,
                         fast_handoff=False):
    """A ``run_world(secret, schedule) -> (state, RunResult)`` factory.

    With ``amortize`` (the default) each distinct ``secret``'s world is
    built once and cloned per call — :func:`build_interleaved_world`'s
    clean-prototype contract, the same idiom the parallel fabric's
    workers use — so a campaign pays the assembly cost twice, not per
    schedule.  ``amortize=False`` rebuilds every world from scratch
    (the stateless-model-checking baseline the fixed-cost bench prices
    the amortisation against).  Results are byte-identical either way:
    a clone of the untouched prototype *is* a fresh build.
    """
    prototypes = {}

    def run_world(secret, schedule):
        if amortize:
            proto = prototypes.get(secret)
            if proto is None:
                proto = prototypes[secret] = build_interleaved_world(
                    monitor_cls, config, secret=secret)
            state, ctx = proto[0].clone(), dict(proto[1])
        else:
            state, ctx = build_interleaved_world(monitor_cls, config,
                                                 secret=secret)
        return execute_interleaved(state, ctx, schedule,
                                   workloads=workloads, probe=probe,
                                   fast_handoff=fast_handoff)

    return run_world


def interleaving_campaign(monitor_cls=None, *, preemption_bound=2,
                          max_schedules=600, seed=0, check_ni=True,
                          crash=None, config=None, observers=None,
                          amortize=True):
    """The systematic interleaving sweep — the concurrency tentpole.

    Bounded-preemption exploration over the racing-vCPU workload, with
    the full verification battery applied to *every* explored schedule:
    the run's own findings (lock-discipline violations, stale
    translations, vCPU errors), all Sec. 5.2 invariant families plus
    the per-vCPU consistency check on the final state, and (with
    ``check_ni``) the two-world noninterference re-run — the same
    schedule executed in a secret-41 and a secret-42 world must produce
    the identical scheduler trace and observer-indistinguishable final
    states.  Returns the explorer's
    :class:`~repro.concurrency.explorer.ExplorationResult`; every
    violation carries its replayable ``(seed, schedule)``.

    ``amortize`` (default) retires the per-schedule fixed costs the
    parallel fabric's workers never paid: worlds clone from cached
    prototypes, the scheduler uses the inline-handoff fast path, the
    noninterference check reuses the already-executed secret-41 state
    (``check_schedule_noninterference_prepared``) instead of running a
    third world, and final-state diffs go through a campaign-local
    :class:`~repro.engine.memo.CheckMemo` digest tier.  Every one of
    these is byte-identical to the naive path (``amortize=False``,
    kept as the fixed-cost bench's baseline).
    """
    from repro.concurrency import explore
    from repro.engine.memo import CheckMemo
    from repro.hyperenclave.monitor import HOST_ID
    from repro.security.invariants import (
        check_all_invariants,
        check_vcpu_consistency,
    )
    from repro.security.noninterference import (
        check_schedule_noninterference,
        check_schedule_noninterference_prepared,
    )

    run_world = make_interleaved_run(monitor_cls, config,
                                     amortize=amortize,
                                     fast_handoff=amortize)
    memo = CheckMemo() if amortize else None
    holder = {}

    def run_schedule(schedule):
        state, result = run_world(41, schedule)
        holder["state"] = state
        holder["result"] = result
        return result

    watchers = list(observers) if observers is not None else [HOST_ID]

    def check(schedule, result):
        findings = []
        monitor = holder["state"].monitor
        report = check_all_invariants(monitor)
        for family in report.violated_families():
            for item in report.violations[family]:
                findings.append(("invariant", f"[{family}] {item}"))
        for item in check_vcpu_consistency(monitor):
            findings.append(("vcpu-consistency", item))
        if check_ni:
            if amortize:
                violations = check_schedule_noninterference_prepared(
                    holder["state"], holder["result"], run_world,
                    schedule, watchers, diff=memo.final_state_diff)
            else:
                violations = check_schedule_noninterference(
                    run_world, schedule, watchers)
            for violation in violations:
                findings.append(("noninterference", str(violation)))
        return findings

    with _trace.span("campaign.interleaving", seed=seed,
                     preemption_bound=preemption_bound, parallel=False):
        return explore(run_schedule, seed=seed,
                       preemption_bound=preemption_bound,
                       max_schedules=max_schedules, crash=crash,
                       check=check)


@dataclass
class CrashRecord:
    """One vCPU crash delivered at one critical-section yield point."""

    vid: int
    yield_index: int
    kind: str
    detail: Optional[str]
    locks_held: Tuple[str, ...]
    parked: bool
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Did the monitor absorb this mid-critical-section crash?"""
        return not self.violations


@dataclass
class CrashCampaignReport:
    """Aggregate of a crash-in-critical-section sweep."""

    monitor: str
    critical_yields: int = 0
    records: List[CrashRecord] = field(default_factory=list)

    def failures(self) -> List[CrashRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def ok(self):
        return not self.failures()

    def render(self, title="Crash-in-critical-section campaign") -> str:
        """A per-(vid, yield-kind) table plus one summary line."""
        from repro.reporting import render_table
        grouped: Dict[Tuple[int, str], List[CrashRecord]] = {}
        for record in self.records:
            grouped.setdefault((record.vid, record.kind),
                               []).append(record)
        rows = []
        for (vid, kind), records in sorted(grouped.items()):
            rows.append([
                f"vcpu{vid}", kind, len(records),
                max(len(r.locks_held) for r in records),
                sum(1 for r in records if r.parked),
                "ok" if all(r.ok for r in records) else "FAIL",
            ])
        table = render_table(
            ["vcpu", "crashed at", "crashes", "max locks held",
             "parked", "verdict"],
            rows, title=f"{title} — {self.monitor}")
        summary = (f"total: {self.critical_yields} critical-section yield "
                   f"points, {len(self.records)} crashes delivered, "
                   f"{len(self.failures())} failures")
        return table + "\n" + summary


def crash_in_critical_section_campaign(monitor_cls=None, *, seed=0,
                                       config=None) -> CrashCampaignReport:
    """Kill a vCPU at every yield point inside a critical section.

    This is PR 1's crash model composed with the concurrency plane:
    first the root schedule runs cleanly and every yield taken while
    the yielding vCPU held locks is collected; then, for each such
    ``(vid, yield_index)``, the same schedule re-runs with the crash
    armed.  The dying vCPU's transactional scope must roll its partial
    hypercall back and release its locks (a dead vCPU may strand its
    own work, never a lock), the other vCPU must run to completion, and
    the final state must pass every invariant family plus the per-vCPU
    consistency check.
    """
    from repro.concurrency import Schedule, result_violations
    from repro.hyperenclave.monitor import RustMonitor
    from repro.security.invariants import (
        check_all_invariants,
        check_vcpu_consistency,
    )

    cls = monitor_cls or RustMonitor
    run_world = make_interleaved_run(monitor_cls, config)
    _state, baseline = run_world(41, Schedule(seed=seed))
    points = baseline.critical_yields()
    report = CrashCampaignReport(monitor=cls.__name__,
                                 critical_yields=len(points))
    with _trace.span("campaign.crash-critical-section", seed=seed,
                     points=len(points), parallel=False):
        for point in points:
            report.records.append(crash_point_record(run_world, point,
                                                     seed=seed))
    return report


def crash_point_record(run_world, point, *, seed=0) -> CrashRecord:
    """Deliver one crash at one critical-section yield point — the
    crash-in-critical-section campaign's unit of work."""
    from repro.concurrency import Schedule, result_violations
    from repro.security.invariants import (
        check_all_invariants,
        check_vcpu_consistency,
    )

    schedule = Schedule(seed=seed, crash=(point.vid, point.yield_index))
    state, result = run_world(41, schedule)
    found = [str(v) for v in result_violations(schedule, result)]
    monitor = state.monitor
    invariants = check_all_invariants(monitor)
    for family in invariants.violated_families():
        for item in invariants.violations[family]:
            found.append(f"[invariant:{family}] {item} "
                         f"(replay: {schedule.describe()})")
    for item in check_vcpu_consistency(monitor):
        found.append(f"[vcpu-consistency] {item} "
                     f"(replay: {schedule.describe()})")
    return CrashRecord(
        vid=point.vid, yield_index=point.yield_index,
        kind=point.kind, detail=point.detail,
        locks_held=point.locks_held,
        parked=point.vid in result.parked,
        violations=tuple(found))
