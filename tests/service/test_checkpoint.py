"""Checkpoint framing: atomic save, verified load, spec identity."""

import os

import pytest

from repro.errors import CheckpointMismatch, CorruptArtifact
from repro.service.checkpoint import (
    CHECKPOINT_MAGIC,
    CampaignCheckpoint,
    spec_digest,
)

SPEC = {"kind": "interleaving", "seed": 0, "preemption_bound": 2,
        "max_schedules": 40, "check_ni": True, "monitor": None,
        "observers": None}


def saved(tmp_path, **overrides):
    fields = dict(spec=SPEC, state={"frontier": [1, 2, 3]}, waves=2,
                  done=False, stats={"vcpu": {"hits": 1, "misses": 2}})
    fields.update(overrides)
    checkpoint = CampaignCheckpoint(**fields)
    path = str(tmp_path / "checkpoint.bin")
    checkpoint.save(path)
    return checkpoint, path


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        original, path = saved(tmp_path)
        loaded = CampaignCheckpoint.load(path)
        assert loaded.spec == SPEC
        assert loaded.state == {"frontier": [1, 2, 3]}
        assert loaded.waves == 2
        assert not loaded.done
        assert loaded.stats == original.stats
        assert loaded.digest == original.digest

    def test_save_is_atomic_replace(self, tmp_path):
        _, path = saved(tmp_path, waves=1)
        saved(tmp_path, waves=7)
        assert CampaignCheckpoint.load(path).waves == 7
        assert os.listdir(tmp_path) == ["checkpoint.bin"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignCheckpoint.load(str(tmp_path / "nope.bin"))


class TestCorruption:
    def test_truncated_file(self, tmp_path):
        _, path = saved(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 10)
        with pytest.raises(CorruptArtifact) as excinfo:
            CampaignCheckpoint.load(path)
        assert "CRC" in str(excinfo.value)

    def test_too_short(self, tmp_path):
        path = str(tmp_path / "checkpoint.bin")
        with open(path, "wb") as fh:
            fh.write(CHECKPOINT_MAGIC[:4])
        with pytest.raises(CorruptArtifact) as excinfo:
            CampaignCheckpoint.load(path)
        assert "too short" in str(excinfo.value)

    def test_foreign_magic(self, tmp_path):
        path = str(tmp_path / "checkpoint.bin")
        with open(path, "wb") as fh:
            fh.write(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(CorruptArtifact) as excinfo:
            CampaignCheckpoint.load(path)
        assert "magic" in str(excinfo.value)

    def test_flipped_payload_byte(self, tmp_path):
        _, path = saved(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(len(CHECKPOINT_MAGIC) + 4 + 5)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptArtifact):
            CampaignCheckpoint.load(path)


class TestSpecIdentity:
    def test_digest_ignores_item_order(self):
        assert spec_digest({"a": 1, "b": 2}) == spec_digest({"b": 2,
                                                            "a": 1})

    def test_digest_distinguishes_values(self):
        assert spec_digest({"seed": 0}) != spec_digest({"seed": 1})

    def test_expected_digest_mismatch(self, tmp_path):
        _, path = saved(tmp_path)
        other = spec_digest({**SPEC, "seed": 99})
        with pytest.raises(CheckpointMismatch) as excinfo:
            CampaignCheckpoint.load(path, expected_digest=other)
        assert excinfo.value.expected == other
        assert excinfo.value.found == spec_digest(SPEC)

    def test_matching_digest_loads(self, tmp_path):
        _, path = saved(tmp_path)
        assert CampaignCheckpoint.load(
            path, expected_digest=spec_digest(SPEC)).waves == 2
