"""The interleaving campaign: the tentpole acceptance criteria.

``RustMonitor`` must survive the full bounded-preemption sweep —
invariant families, per-vCPU consistency, two-world noninterference —
while each planted concurrency bug is caught, with every violation
carrying a standalone-replayable ``(seed, schedule)``.
"""

import pytest

from repro.concurrency import Schedule, replay
from repro.faults import interleaving_campaign, make_interleaved_run
from repro.hyperenclave import buggy


@pytest.fixture(scope="module")
def missing_lock_result():
    return interleaving_campaign(buggy.MissingLockMonitor, check_ni=False)


@pytest.fixture(scope="module")
def no_shootdown_result():
    return interleaving_campaign(buggy.NoShootdownMonitor, check_ni=False)


class TestRustMonitorSweep:
    def test_full_sweep_is_green(self):
        """Invariants + vCPU consistency + NI over every schedule."""
        result = interleaving_campaign(check_ni=True)
        assert result.ok, result.summary()
        assert result.preemption_bound >= 2
        assert result.schedules_run > 100
        assert not result.truncated

    def test_exploration_is_deterministic(self):
        first = interleaving_campaign(check_ni=False)
        second = interleaving_campaign(check_ni=False)
        assert [s for s, _r in first.runs] == [s for s, _r in second.runs]
        assert [r.trace for _s, r in first.runs] == \
            [r.trace for _s, r in second.runs]


class TestBuggyVariantsCaught:
    def test_missing_lock_monitor_is_caught(self, missing_lock_result):
        assert not missing_lock_result.ok
        kinds = missing_lock_result.by_kind()
        assert "lock-protocol" in kinds
        assert any("unlocked-mutation" in v.detail
                   for v in kinds["lock-protocol"])

    def test_no_shootdown_monitor_is_caught(self, no_shootdown_result):
        assert not no_shootdown_result.ok
        assert "stale-translation" in no_shootdown_result.by_kind()

    def test_shootdown_bug_needs_a_preemption(self, no_shootdown_result):
        """The race is real concurrency: absent from the root schedule."""
        for violation in no_shootdown_result.by_kind()["stale-translation"]:
            assert violation.schedule.preemptions

    def test_every_violation_carries_its_schedule(self, missing_lock_result,
                                                  no_shootdown_result):
        for result in (missing_lock_result, no_shootdown_result):
            for violation in result.violations:
                assert isinstance(violation.schedule, Schedule)
                assert "seed=" in violation.schedule.describe()
                assert "replay:" in str(violation)

    def test_stale_violation_replays_standalone(self, no_shootdown_result):
        violation = no_shootdown_result.by_kind()["stale-translation"][0]
        run_world = make_interleaved_run(buggy.NoShootdownMonitor)
        rerun = replay(lambda schedule: run_world(41, schedule)[1],
                       violation.schedule)
        assert rerun.stale_translations


class TestNonTransactionalDeadlock:
    def test_missing_release_deadlocks_the_scheduler(self):
        """Without the transactional wrapper no hypercall ever releases
        its locks — under the scheduler that is a detected deadlock,
        not a hang."""
        run_world = make_interleaved_run(buggy.NonTransactionalMonitor)
        with pytest.raises(RuntimeError, match="deadlock"):
            run_world(41, Schedule())
