#!/usr/bin/env python3
"""The threat model in action (Sec. 2.2).

A malicious primary OS exercises both of its capabilities — arbitrary
memory access / DMA, and hostile hypercall sequences — against a victim
enclave, first on the correct monitor (everything contained), then on two
buggy variants (specific attacks break through and the matching checker
names the hole).

Run:  python examples/attack_simulation.py
"""

from repro.hyperenclave import RustMonitor
from repro.hyperenclave.buggy import AliasingMonitor, OutsideElrangeMonitor
from repro.hyperenclave.constants import TINY
from repro.security import check_all_invariants
from repro.security.attacks import (
    hypercall_fuzz, run_standard_attack_suite,
)

PAGE = TINY.page_size


def build_victim(monitor):
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x5EC12E7)     # the victim's secret
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src)
    primary_os.gpa_write_word(src, 0)             # scrub the staging copy
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 4 * PAGE, mbuf)
    return app, eid


def main():
    print("== correct monitor: the full attack suite ==")
    monitor = RustMonitor(TINY)
    app, eid = build_victim(monitor)
    for name, outcome in run_standard_attack_suite(monitor, app, eid,
                                                   seed=7).items():
        print(f"   {outcome}")
    report = check_all_invariants(monitor)
    print(f"   invariants after the campaign: "
          f"{'all hold' if report.ok else report}")

    print("\n== AliasingMonitor: dedup 'optimisation' ==")
    buggy = AliasingMonitor(TINY)
    primary_os = buggy.primary_os
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x5EC)
    mbuf_a = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf_b = TINY.frame_base(primary_os.reserve_data_frame())
    victim = buggy.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_a, PAGE)
    buggy.hc_add_page(victim, 16 * PAGE, src)
    # The attacker creates an enclave with *identical* page content, so
    # the dedup shortcut hands it the victim's physical frame.
    spy = buggy.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_b, PAGE)
    buggy.hc_add_page(spy, 32 * PAGE, src)
    buggy.hc_init(victim)
    buggy.hc_init(spy)
    shared = (buggy.enclave_translate(victim, 16 * PAGE)
              == buggy.enclave_translate(spy, 32 * PAGE))
    print(f"   attacker enclave shares the victim's EPC frame: {shared}")
    report = check_all_invariants(buggy)
    print(f"   checker verdict: {sorted(report.violated_families())}")

    print("\n== OutsideElrangeMonitor: fuzzing finds the hole ==")
    buggy2 = OutsideElrangeMonitor(TINY)
    build_victim(buggy2)
    for seed in range(8):
        outcome = hypercall_fuzz(buggy2, seed=seed, rounds=150)
        if not outcome.contained:
            print(f"   seed {seed}: {outcome.leaked[0]}")
            break
    else:
        print("   fuzzing did not trigger the planted bug "
              "(try more seeds)")


if __name__ == "__main__":
    main()
