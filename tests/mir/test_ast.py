"""AST structure tests, including the paper's constructor census."""

import pytest

from repro.mir import ast
from repro.mir.ast import (
    EXPRESSION_CONSTRUCTORS, STATEMENT_CONSTRUCTORS, BinOp, Place, place,
)
from repro.mir.builder import ProgramBuilder
from repro.mir.types import U64, UNIT


class TestConstructorCensus:
    def test_28_expression_constructors(self):
        """Sec. 3.1: '28 types of expressions ... are supported'."""
        assert len(EXPRESSION_CONSTRUCTORS) == 28
        assert len(set(EXPRESSION_CONSTRUCTORS)) == 28

    def test_11_statement_constructors(self):
        """Sec. 3.1: '... and 11 statements/terminators'."""
        assert len(STATEMENT_CONSTRUCTORS) == 11
        statements = [c for c in STATEMENT_CONSTRUCTORS
                      if issubclass(c, ast.Statement)]
        terminators = [c for c in STATEMENT_CONSTRUCTORS
                       if issubclass(c, ast.Terminator)]
        assert len(statements) == 5
        assert len(terminators) == 6


class TestPlace:
    def test_projection_chaining(self):
        p = place("x").deref().field(1).index_const(2).downcast(0)
        kinds = [type(proj) for proj in p.projections]
        assert kinds == [ast.Deref, ast.FieldProj, ast.ConstantIndex,
                         ast.Downcast]

    def test_is_bare(self):
        assert place("x").is_bare
        assert not place("x").field(0).is_bare

    def test_str_deref(self):
        assert str(place("p").deref().field(0)) == "(*p).0"

    def test_index_by_variable(self):
        p = place("arr").index_by("i")
        assert str(p) == "arr[i]"


class TestFunctionIntrospection:
    def build_calling(self):
        pb = ProgramBuilder()
        fb = pb.function("callee", [], UNIT)
        fb.ret()
        fb.finish()
        fb = pb.function("caller", [], U64)
        fb.call("_1", "callee", [])
        fb.call("_2", "callee", [])
        fb.ret(1)
        fb.finish()
        return pb.build()

    def test_called_functions(self):
        program = self.build_calling()
        assert program.function("caller").called_functions() == [
            "callee", "callee"]
        assert program.function("callee").called_functions() == []

    def test_statement_count_includes_terminators(self):
        program = self.build_calling()
        callee = program.function("callee")
        assert callee.statement_count() == 1  # just Return

    def test_duplicate_function_rejected(self):
        program = self.build_calling()
        with pytest.raises(ValueError):
            program.add_function(program.function("callee"))

    def test_merged_with(self):
        program = self.build_calling()
        pb = ProgramBuilder()
        fb = pb.function("extra", [], UNIT)
        fb.ret()
        fb.finish()
        merged = program.merged_with(pb.build())
        assert set(merged.functions) == {"caller", "callee", "extra"}
        # originals untouched
        assert "extra" not in program.functions


class TestSwitchIntShape:
    def test_targets_and_otherwise(self):
        term = ast.SwitchInt(ast.ConstBool(True), ((0, "bb1"),), "bb2")
        assert term.targets == ((0, "bb1"),)
        assert term.otherwise == "bb2"
