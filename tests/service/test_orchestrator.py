"""The durable orchestrator: crash, resume, warm reuse, the CLI.

The central property — a campaign killed with ``SIGKILL`` at *any*
checkpoint and resumed produces a result repr-identical to an
uninterrupted run — is exercised for real: the campaign runs in a
subprocess, the chaos hook (``REPRO_CHAOS_KILL_AFTER``) delivers an
actual ``kill -9`` right after the n-th checkpoint commit, and the
test resumes from whatever the dead process left on disk.
"""

import os
import shutil
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.engine.campaigns import parallel_interleaving_campaign
from repro.errors import CheckpointMismatch, ShardQuarantined
from repro.service import (
    CampaignSpec,
    CampaignStore,
    ResilientExecutor,
    resume_campaign,
    run_durable_campaign,
)
from repro.service.orchestrator import warm_pure_check_grid

SCHEDULES = 24          # enough for 3 waves of the TINY geometry
_CLEAN = {}             # max_schedules -> repr of the uninterrupted run


def spec_for(max_schedules=SCHEDULES):
    return CampaignSpec(max_schedules=max_schedules, preemption_bound=2)


def clean_repr(tmp_path_factory, max_schedules=SCHEDULES):
    if max_schedules not in _CLEAN:
        store = str(tmp_path_factory.mktemp("clean"))
        result = run_durable_campaign(spec_for(max_schedules), store,
                                      workers=2)
        _CLEAN[max_schedules] = repr(result)
    return _CLEAN[max_schedules]


class TestDurableEqualsPlain:
    def test_matches_parallel_campaign(self, tmp_path):
        result = run_durable_campaign(spec_for(), str(tmp_path),
                                      workers=2)
        plain = parallel_interleaving_campaign(
            max_schedules=SCHEDULES, preemption_bound=2, workers=2)
        assert repr(result) == repr(plain)

    def test_finished_store_is_idempotent(self, tmp_path):
        first = run_durable_campaign(spec_for(), str(tmp_path),
                                     workers=2)
        store = CampaignStore(str(tmp_path))
        checkpoint = store.load_checkpoint()
        assert checkpoint.done
        again = run_durable_campaign(spec_for(), store)
        assert repr(again) == repr(first)

    def test_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError):
            run_durable_campaign(CampaignSpec(kind="martian"),
                                 str(tmp_path))

    def test_different_spec_same_store_is_a_mismatch(self, tmp_path):
        run_durable_campaign(spec_for(), str(tmp_path), workers=1)
        with pytest.raises(CheckpointMismatch):
            run_durable_campaign(CampaignSpec(max_schedules=7,
                                              preemption_bound=1),
                                 str(tmp_path))


class TestCrashAndResume:
    def run_killed_campaign(self, store, kill_after, max_schedules):
        """A campaign in a subprocess, SIGKILLed after a checkpoint."""
        script = (
            "from repro.service import CampaignSpec, "
            "run_durable_campaign\n"
            f"spec = CampaignSpec(max_schedules={max_schedules}, "
            "preemption_bound=2)\n"
            f"run_durable_campaign(spec, {store!r}, workers=2)\n"
            "print('survived')\n")
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(sys.path),
                   REPRO_CHAOS_KILL_AFTER=str(kill_after))
        return subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True,
                              timeout=120)

    @settings(max_examples=4, deadline=None)
    @given(kill_after=st.integers(min_value=1, max_value=3))
    def test_sigkill_then_resume_is_identical(self, kill_after,
                                              tmp_path_factory):
        store = str(tmp_path_factory.mktemp("killed"))
        proc = self.run_killed_campaign(store, kill_after, SCHEDULES)
        if proc.returncode == 0:
            # The campaign finished in fewer checkpoints than the kill
            # threshold; nothing was interrupted, so just compare.
            assert "survived" in proc.stdout
        else:
            assert proc.returncode == -9, proc.stderr
            checkpoint = CampaignStore(store).load_checkpoint()
            assert not checkpoint.done
        resumed = resume_campaign(store, workers=2)
        assert repr(resumed) == clean_repr(tmp_path_factory)

    def test_resume_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resume_campaign(str(tmp_path / "void"))

    def test_interrupt_flushes_resumable_checkpoint(self, tmp_path,
                                                    tmp_path_factory):
        class Interrupting(ResilientExecutor):
            calls = 0

            def map(self, fn_path, units, *, keys=None):
                type(self).calls += 1
                if type(self).calls == 2:
                    raise KeyboardInterrupt
                return super().map(fn_path, units, keys=keys)

        with pytest.raises(KeyboardInterrupt):
            run_durable_campaign(spec_for(), str(tmp_path),
                                 executor=Interrupting(1))
        checkpoint = CampaignStore(str(tmp_path)).load_checkpoint()
        assert checkpoint is not None and not checkpoint.done
        # The interrupted wave went back on the frontier: resuming
        # continues from the pre-wave state to the identical verdict.
        resumed = resume_campaign(str(tmp_path), workers=2)
        assert repr(resumed) == clean_repr(tmp_path_factory)


class TestCorruptStoreFallback:
    def test_corrupt_checkpoint_cold_starts_with_warning(
            self, tmp_path, tmp_path_factory):
        store = str(tmp_path)
        run_durable_campaign(spec_for(), store, workers=1)
        with open(os.path.join(store, "checkpoint.bin"), "wb") as fh:
            fh.write(b"GARBAGE!" * 8)
        with pytest.warns(RuntimeWarning, match="cold-starting"):
            result = run_durable_campaign(spec_for(), store, workers=2)
        assert repr(result) == clean_repr(tmp_path_factory)

    def test_explicit_resume_of_corrupt_checkpoint_fails_loudly(
            self, tmp_path):
        from repro.errors import CorruptArtifact
        store = str(tmp_path)
        run_durable_campaign(spec_for(), store, workers=1)
        with open(os.path.join(store, "checkpoint.bin"), "r+b") as fh:
            fh.truncate(20)
        with pytest.raises(CorruptArtifact):
            resume_campaign(store)


@pytest.fixture
def fresh_memo(monkeypatch):
    """A cold worker memo: earlier tests in this process warm the
    module-global one, and a fully warm memo journals nothing."""
    from repro.engine import workers
    from repro.engine.memo import CheckMemo
    monkeypatch.setattr(workers, "MEMO", CheckMemo())


class TestWarmMemoReuse:
    def test_memo_log_is_populated_and_preloads(self, tmp_path,
                                                fresh_memo):
        store = CampaignStore(str(tmp_path))
        run_durable_campaign(spec_for(), store, workers=2)
        tables = store.memo.stats()
        assert any(table.startswith("invariants:") for table in tables)
        assert "vcpu" in tables

    def test_warm_store_gives_identical_result(self, tmp_path,
                                               tmp_path_factory,
                                               fresh_memo):
        first = CampaignStore(str(tmp_path / "one"))
        run_durable_campaign(spec_for(), first, workers=2)
        warmed = str(tmp_path / "two")
        os.makedirs(warmed)
        shutil.copy(first.memo.path,
                    os.path.join(warmed, "memo.log"))
        result = run_durable_campaign(spec_for(), warmed, workers=2)
        assert repr(result) == clean_repr(tmp_path_factory)


class TestQuarantinedShards:
    def test_quarantine_becomes_a_violation_not_a_crash(self, tmp_path):
        class Poisoning(ResilientExecutor):
            def map(self, fn_path, units, *, keys=None):
                merged = super().map(fn_path, units, keys=keys)
                if len(merged) > 1:
                    merged[1] = ShardQuarantined(0, 3, "worker died")
                return merged

        result = run_durable_campaign(spec_for(), str(tmp_path),
                                      executor=Poisoning(1))
        kinds = {violation.kind for violation in result.violations}
        assert "shard-quarantined" in kinds
        assert len(result.runs) == SCHEDULES   # campaign still completed


class TestWarmPureCheckGrid:
    NAMES = ["pte_new", "pte_addr", "pte_flags", "pte_is_present"]

    def test_cold_matches_plain_grid_and_warm_matches_cold(
            self, tmp_path, model):
        from repro.engine.campaigns import parallel_pure_check_grid
        store = str(tmp_path)
        cold = warm_pure_check_grid(self.NAMES, store,
                                    total_steps=40000, workers=2)
        plain = parallel_pure_check_grid(self.NAMES, total_steps=40000,
                                         workers=2, fake_clock=True)
        assert repr(cold) == repr(plain)
        warm = warm_pure_check_grid(self.NAMES, store,
                                    total_steps=40000, workers=2)
        assert repr(warm) == repr(cold)
        tables = CampaignStore(store).memo.stats()
        assert tables.get("pure-verdict") == len(self.NAMES)

    def test_changed_budget_is_a_different_key(self, tmp_path, model):
        store = str(tmp_path)
        warm_pure_check_grid(self.NAMES[:2], store, total_steps=40000,
                             workers=1)
        warm_pure_check_grid(self.NAMES[:2], store, total_steps=20000,
                             workers=1)
        tables = CampaignStore(store).memo.stats()
        assert tables["pure-verdict"] == 4


class TestStoreContextManager:
    def test_with_block_closes_store(self, tmp_path):
        with CampaignStore(str(tmp_path)) as store:
            run_durable_campaign(spec_for(8), store, workers=1)
            assert not store.closed
        assert store.closed

    def test_close_is_idempotent(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.close()
        store.close()              # double-close must not raise
        assert store.closed

    def test_closed_store_reopens_lazily(self, tmp_path,
                                         tmp_path_factory):
        store = CampaignStore(str(tmp_path))
        run_durable_campaign(spec_for(), store, workers=1)
        store.close()
        # Closing releases the file handle, not the on-disk state:
        # the same object keeps serving checkpoints and memo reads.
        checkpoint = store.load_checkpoint()
        assert checkpoint is not None and checkpoint.done
        assert repr(checkpoint.state.result()) \
            == clean_repr(tmp_path_factory)

    def test_reentry_resets_closed_flag(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        with store:
            pass
        assert store.closed
        with store:
            assert not store.closed
        assert store.closed


class TestCli:
    def test_campaign_then_resume_exit_zero(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "--store", store, "--max-schedules",
                     "8", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "schedules explored" in out and "resume" in out
        assert main(["resume", store, "--workers", "1"]) == 0
        assert "schedules explored" in capsys.readouterr().out

    def test_resume_nothing_is_a_usage_error(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "void")]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_interrupt_exits_130(self, tmp_path, monkeypatch, capsys):
        import repro.service as service

        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(service, "run_durable_campaign", interrupted)
        code = main(["campaign", "--store", str(tmp_path / "s")])
        assert code == 130
        assert "checkpoint flushed" in capsys.readouterr().err
