"""The mirlightgen substitute: print→parse→print must be a fixpoint."""

import pytest

from repro.errors import MirParseError
from repro.mir import ast
from repro.mir.interp import Interpreter
from repro.mir.parser import parse_function, parse_program
from repro.mir.printer import print_function, print_program
from repro.mir.types import U64, ArrayTy, RefTy, TupleTy, UNIT
from repro.mir.value import mk_u64


class TestRoundtrip:
    def test_corpus_roundtrip_fixpoint(self, model):
        """Every corpus function survives print→parse→print unchanged —
        our analog of 'we are verifying the same MIR code that the Rust
        compiler is operating on' (Sec. 3.3)."""
        text = print_program(model.program)
        reparsed = parse_program(text)
        assert print_program(reparsed) == text
        assert set(reparsed.functions) == set(model.program.functions)

    def test_reparsed_corpus_executes_identically(self, model):
        reparsed = parse_program(print_program(model.program))
        interp = Interpreter(reparsed)
        result = interp.call("pte_new", [mk_u64(0x1200), mk_u64(7)])
        direct = model.make_interpreter().call(
            "pte_new", [mk_u64(0x1200), mk_u64(7)])
        assert result.value == direct.value

    def test_locals_recomputed_identically(self, model):
        reparsed = parse_program(print_program(model.program))
        for name, function in model.program.functions.items():
            assert reparsed.functions[name].locals_ == function.locals_

    def test_layers_and_attrs_roundtrip(self, model):
        reparsed = parse_program(print_program(model.program))
        for name, function in model.program.functions.items():
            assert reparsed.functions[name].layer == function.layer
            assert reparsed.functions[name].attrs == function.attrs


SAMPLE = """
fn classify(a, b) -> u64 @layer(Demo) @attrs(sample) {
    let big: [u64; 4];
    bb0: {
        _1 = copy a == copy b;
        switchInt(copy _1) [0 -> bb1, otherwise -> bb2];
    }
    bb1: {
        _2 = Checked(copy a + copy b);
        _3 = copy _2.0;
        assert(copy _2.1 == false, "overflow") -> bb3;
    }
    bb2: {
        _0 = const 7_u64;
        return;
    }
    bb3: {
        _0 = copy _3;
        return;
    }
}
"""


class TestParsing:
    def test_sample_parses_and_runs(self):
        function = parse_function(SAMPLE)
        assert function.name == "classify"
        assert function.layer == "Demo"
        assert function.attrs == ("sample",)
        assert function.var_tys["big"] == ArrayTy(U64, 4)
        program = ast.Program({function.name: function})
        interp = Interpreter(program)
        assert interp.call("classify",
                           [mk_u64(2), mk_u64(2)]).value.value == 7
        assert interp.call("classify",
                           [mk_u64(2), mk_u64(3)]).value.value == 5

    def test_parse_statics(self):
        program = parse_program('static G = 5_u64;\n')
        assert program.globals_["G"].value == 5

    def test_parse_aggregate_constant(self):
        program = parse_program("static P = #1(3_u64, true);\n")
        value = program.globals_["P"]
        assert value.discriminant == 1
        assert value.fields[0].value == 3
        assert value.fields[1].value is True

    @pytest.mark.parametrize("source", [
        "fn f() -> u64 { }",                 # no entry block
        "fn f() -> u64 { bb0: { } }",        # no terminator
        "fn f( -> u64 { bb0: { return; } }",
        "fn f() -> u64 { bb0: { x = ; return; } }",
        "static G = ;",
        "wibble",
    ])
    def test_malformed_sources_rejected(self, source):
        with pytest.raises(MirParseError):
            parse_program(source)

    def test_duplicate_block_rejected(self):
        bad = ("fn f() -> () { bb0: { return; } bb0: { return; } }")
        with pytest.raises(MirParseError, match="duplicate"):
            parse_function(bad)

    def test_type_grammar(self):
        src = ("fn f() -> () {\n"
               "    let a: &mut u64;\n"
               "    let b: *const u64;\n"
               "    let c: (u64, bool);\n"
               "    bb0: { return; }\n"
               "}")
        function = parse_function(src)
        assert function.var_tys["a"] == RefTy(U64, True)
        assert function.var_tys["c"] == TupleTy((U64,
                                                 parse_bool_ty()))


def parse_bool_ty():
    from repro.mir.types import BOOL
    return BOOL


class TestPrinting:
    def test_prints_sorted_and_labelled(self, model):
        text = print_program(model.program)
        assert text.index("fn align_page_down") < text.index("fn pte_new")
        assert "bb0:" in text

    def test_downcast_printed_parenthesised(self):
        from repro.mir.ast import place, Use, Copy
        from repro.mir.builder import FunctionBuilder
        fb = FunctionBuilder("f", ["o"])
        fb.assign("_0", Use(Copy(place("o").downcast(1).field(0))))
        fb.ret()
        text = print_function(fb.finish())
        assert "(o as v1).0" in text
        roundtripped = parse_function(text)
        assert print_function(roundtripped) == text
