"""Canonical 64-bit fingerprints over the mutable monitor state.

A fingerprint is a :func:`hashlib.blake2b` digest (8 bytes) over a
canonical byte encoding of one lock-guarded structure's value.  Two
properties matter:

* **Cross-process stability.**  Python's builtin ``hash`` is salted per
  process and useless as a cache key that workers and the parent both
  compute; blake2b over ``repr`` of primitive tuples is identical
  everywhere.  (The one exception is the enclave ``measurement``, a toy
  accumulator built on salted ``hash`` — stable across *forked* workers,
  which is why the sharded executor pins the ``fork`` start method.)
* **Soundness for memoisation.**  Every input the memoised checkers
  read is covered by some structure fingerprint: the invariant families
  read ``phys``/``enclaves``/``epcm``/``frames`` (page tables live in
  physical memory, so walks are functions of ``phys``), the vCPU
  consistency check and the observation function additionally read
  ``cpus``.  TLB *entries* are included; TLB flush counts are telemetry
  (as in :func:`repro.hyperenclave.txn.monitor_digest`) and no memoised
  checker reads them.  The fingerprint-soundness property test pins
  this: any mutation through ``phys.write`` or a lock-structure path
  changes the combined fingerprint.

The granularity — one fingerprint per lock-guarded structure — is what
makes dirty tracking possible: a terminal state whose ``epcm``
fingerprint matches an already-certified state's need not re-run the
EPCM family even if its ``cpus`` changed.
"""

import hashlib
from typing import Dict

# One fingerprint per lock-guarded mutable structure of the monitor.
STRUCTURES = ("phys", "frames", "epcm", "enclaves", "cpus")


def content_fingerprint(*parts) -> int:
    """Canonical blake2b-64 over ``repr`` of primitive parts.

    The one fingerprint primitive of the engine: stable across processes
    (unlike salted builtin ``hash``), cheap, and collision-resistant
    enough for memo keys.  The monitor-state fingerprints below and the
    solver-verdict memo (:mod:`repro.symbolic.solver`) both build on it.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


_fp = content_fingerprint


def phys_fingerprint(monitor) -> int:
    """Physical memory — transitively every page table's entries.

    Dirty-only and batched: :meth:`PhysMemory.frame_digests` re-hashes
    just the frames written since the last fingerprint (the store keeps
    the per-frame digest table up to date through every mutator,
    including transactional undo), and this function folds the table
    into one blake2b in frame order.  Equal contents give equal frame
    tables give equal digests, so the value is as canonical as the old
    whole-snapshot ``repr`` encoding — only the encoding changed, which
    is why this fingerprint (and everything keyed on it) is not
    comparable across engine versions, exactly like any other memo-key
    schema change.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(b"phys")
    frame_fps = monitor.phys.frame_digests()
    for frame in sorted(frame_fps):
        digest.update(frame.to_bytes(8, "big"))
        digest.update(frame_fps[frame])
    return int.from_bytes(digest.digest(), "big")


def frames_fingerprint(monitor) -> int:
    """The page-table frame allocator bitmap."""
    return _fp("frames", monitor.pt_allocator.base,
               monitor.pt_allocator.snapshot())


def epcm_fingerprint(monitor) -> int:
    """The EPCM entry array."""
    return _fp("epcm", monitor.epcm.snapshot())


def enclaves_fingerprint(monitor) -> int:
    """Per-enclave metadata plus the eid counter."""
    return _fp("enclaves", monitor._next_eid, tuple(sorted(
        (eid, enclave.state.value, enclave.elrange_base,
         enclave.elrange_size,
         (enclave.mbuf.va_base, enclave.mbuf.pa_base, enclave.mbuf.size)
         if enclave.mbuf is not None else None,
         enclave.gpa_base, enclave.gpt.root_frame,
         enclave.ept.root_frame, enclave.measurement,
         enclave.saved_context)
        for eid, enclave in monitor.enclaves.items())))


def cpus_fingerprint(monitor) -> int:
    """Every per-core state: registers, roots, active principal, parked
    host context, live TLB entries (flush counts excluded — telemetry).

    The OS EPT root rides along because the vCPU consistency check
    compares installed roots against it; it is allocated at boot and
    never moves, but covering it keeps the memo key honest.
    """
    return _fp("cpus", monitor.os_ept.root_frame, tuple(
        (cpu.active, cpu.saved_host_context, cpu.vcpu.context(),
         cpu.vcpu.gpt_root, cpu.vcpu.ept_root, cpu.tlb.snapshot()[0])
        for cpu in monitor.cpus))


_FINGERPRINTS = {
    "phys": phys_fingerprint,
    "frames": frames_fingerprint,
    "epcm": epcm_fingerprint,
    "enclaves": enclaves_fingerprint,
    "cpus": cpus_fingerprint,
}

# Structures carrying a monotone ``_version`` mutation counter (bumped
# by every mutating method and preserved by ``clone``).  For these, an
# unchanged (object-lineage, version) pair implies unchanged contents,
# so their fingerprints can be cached on the monitor and survive clones
# instead of re-hashing a clean structure from scratch.  ``enclaves``
# and ``cpus`` have mutable fields poked from several modules and stay
# uncached — they are also the two cheapest to hash.
_VERSIONED = {
    "phys": lambda monitor: monitor.phys._version,
    "frames": lambda monitor: monitor.pt_allocator._version,
    "epcm": lambda monitor: monitor.epcm._version,
}


def structure_versions(monitor) -> Dict[str, int]:
    """Current mutation-counter values of the version-counted
    structures (used by the snapshot tree's copy-on-write sharing)."""
    return {name: read for name, read in
            ((name, fn(monitor)) for name, fn in _VERSIONED.items())}


def structure_fingerprints(monitor) -> Dict[str, int]:
    """All per-structure fingerprints, keyed by :data:`STRUCTURES`.

    Version-counted structures consult the monitor's ``_fp_cache``
    (``name -> (version, fingerprint)``): a hit at the current version
    returns the cached digest, a miss recomputes and refreshes the
    entry.  The cache is copied by ``RustMonitor.clone``, so a clone of
    a fingerprinted monitor re-hashes nothing until it mutates.
    """
    cache = getattr(monitor, "_fp_cache", None)
    fps = {}
    for name in STRUCTURES:
        version_of = _VERSIONED.get(name)
        if cache is None or version_of is None:
            fps[name] = _FINGERPRINTS[name](monitor)
            continue
        version = version_of(monitor)
        entry = cache.get(name)
        if entry is not None and entry[0] == version:
            fps[name] = entry[1]
        else:
            fps[name] = _FINGERPRINTS[name](monitor)
            cache[name] = (version, fps[name])
    return fps


def fingerprint(monitor, fps: Dict[str, int] = None) -> int:
    """The combined 64-bit monitor fingerprint."""
    fps = fps or structure_fingerprints(monitor)
    return _fp("monitor", tuple(fps[name] for name in STRUCTURES))


def state_fingerprint(state) -> int:
    """Fingerprint of a whole :class:`~repro.security.state.SystemState`
    (monitor plus the model bookkeeping: oracle cursor, step counter,
    walk mode)."""
    oracle = state.oracle
    oracle_key = None if oracle is None else (
        type(oracle).__name__, getattr(oracle, "position", None))
    return _fp("state", fingerprint(state.monitor), oracle_key,
               state.step_count, state.use_spec_walk)


def dirty_structures(before: Dict[str, int],
                     after: Dict[str, int]) -> tuple:
    """Which structures changed between two fingerprint dicts."""
    return tuple(name for name in STRUCTURES
                 if before.get(name) != after.get(name))
