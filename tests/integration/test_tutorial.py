"""docs/TUTORIAL.md must actually work — every step, executed."""

import pytest

from repro.hyperenclave.mir_model import build_model
from repro.mir.ast import BinOp
from repro.mir.builder import ProgramBuilder
from repro.mir.interp import Interpreter
from repro.mir.retrofit import check_function
from repro.mir.types import U64
from repro.mir.value import mk_u64
from repro.symbolic import Domains, check_equivalence, verify_assertions
from repro.verification import synthesize_spec


@pytest.fixture(scope="module")
def tutorial_program(model):
    pb = ProgramBuilder()
    fb = pb.function("span_end", ["va", "level"], U64, layer="PtLevel")
    fb.call("s", "level_span", ["level"])
    fb.binop("t", BinOp.ADD, "va", "s")
    fb.binop("_0", BinOp.SUB, "t", 1)
    fb.ret()
    fb.finish()
    return model.program.merged_with(pb.build())


class TestTutorialSteps:
    def test_step2_layer_discipline(self, model, tutorial_program):
        layer_map = dict(model.layer_map)
        layer_map["span_end"] = "PtLevel"
        assert model.stack.check_call_order(tutorial_program,
                                            layer_map) == []

    def test_step3_retrofit_clean(self, tutorial_program):
        assert check_function(
            tutorial_program.functions["span_end"]) == []

    def test_step4_execution_and_lifting(self, tutorial_program):
        interp = Interpreter(tutorial_program)
        result = interp.call("span_end", [mk_u64(0x1000), mk_u64(2)])
        assert result.value.value == 0x13FF
        assert interp.memory.write_count == 0

    def test_step5_symbolic_verification(self, model, tutorial_program):
        domains = Domains({"va": range(0, 0x4000, 0x100),
                           "level": range(1, model.config.levels + 1)})
        ok, failures = verify_assertions(tutorial_program, "span_end",
                                         domains)
        assert ok, failures

        def reference(va, lvl):
            return mk_u64(va.value
                          + model.config.level_span(lvl.value) - 1)

        mismatches, stats = check_equivalence(tutorial_program,
                                              "span_end", reference,
                                              domains)
        assert mismatches == []
        assert stats["cells"] == 64 * model.config.levels

    def test_step5b_spec_synthesis(self, model, tutorial_program):
        domains = Domains({"va": range(0, 0x4000, 0x100),
                           "level": range(1, model.config.levels + 1)})
        spec = synthesize_spec(tutorial_program, "span_end", domains)
        assert len(spec) == model.config.levels
        assert spec.evaluate(mk_u64(0x1000), mk_u64(2)).value == 0x13FF
        assert "spec span_end(va, level)" in spec.pretty()
