"""Figure 4 — the three pointer disciplines, censused over the corpus.

The paper's figure classifies pointers into (1) arguments to lower
layers, (2) trusted pointers from the bottom layer, (3) RData handles
from middle layers.  The bench counts each case statically over the
corpus and additionally *exercises* the semantics of each kind.  The
benchmark times the static classification.
"""

import pytest

from repro.ccal.pointers import (
    PointerCase, classify_pointer_flows, count_by_case,
)
from repro.errors import EncapsulationViolation
from repro.mir.builder import ProgramBuilder
from repro.mir.types import U64
from repro.reporting import fig4_pointer_cases


def _augmented_program(model):
    """The corpus plus one explicit case-1 caller (a &local passed down),
    so all three flows appear in the census like in the figure."""
    pb = ProgramBuilder()
    fb = pb.function("demo_case1", [], U64, layer="PtMap")
    fb.assign("x", 0)
    fb.ref("p", "x")
    fb.call("_1", "read_entry", [0, 0])  # downward call
    fb.call("_2", "demo_reader", ["p"])
    fb.ret("_2")
    fb.finish()
    fb = pb.function("demo_reader", ["ptr"], U64, layer="PtEntryIo")
    fb.ret(0)
    fb.finish()
    # A case-3 client: a hypercall-layer function receiving an opaque
    # AddrSpace handle from the middle layer.
    fb = pb.function("demo_case3", [], U64, layer="Hypercalls")
    fb.call("h", "as_new", [])
    fb.call("_0", "as_root", ["h"])
    fb.ret()
    fb.finish()
    program = model.program.merged_with(pb.build())
    layer_map = dict(model.layer_map)
    layer_map["demo_case1"] = "PtMap"
    layer_map["demo_reader"] = "PtEntryIo"
    layer_map["demo_case3"] = "Hypercalls"
    return program, layer_map


def test_bench_fig4(benchmark, model, emit):
    program, layer_map = _augmented_program(model)

    flows = benchmark(classify_pointer_flows, program, layer_map,
                      model.stack)
    counts = count_by_case(flows)
    emit("fig4_pointer_classification", fig4_pointer_cases(flows))

    # Shape: all three disciplines are present in a realistic corpus.
    assert counts[PointerCase.ARG_TO_LOWER] >= 1
    assert counts[PointerCase.TRUSTED_FROM_BOTTOM] >= 3
    assert counts[PointerCase.RDATA_FROM_MIDDLE] >= 1

    # Dynamic semantics of case 3: an RData handle dereferenced outside
    # its owner layer must raise (the encapsulation guarantee).
    from repro.mir.ast import Copy, Use, place
    from repro.mir.value import RDataPtr
    pb = ProgramBuilder()
    fb = pb.function("intruder", ["h"], U64, layer="Hypercalls")
    fb.assign("_0", Use(Copy(place("h").deref())))
    fb.ret()
    fb.finish()
    from repro.mir.interp import Interpreter
    interp = Interpreter(pb.build())
    with pytest.raises(EncapsulationViolation):
        interp.call("intruder", [RDataPtr("AddrSpace", "as", (0,))])
