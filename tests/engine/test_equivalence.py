"""Sequential ↔ parallel byte-identity, campaign by campaign.

The fabric's one hard guarantee: for every checking campaign, the
merged parallel report is **byte-identical** (``repr``-equal, which
covers every field of every record) to the sequential run — worker
count, shard assignment, and completion order must not be observable.
Each test here runs both sides of one campaign on a small grid and
compares the full reports, including the campaigns where the planted
concurrency bugs actually fire (violations must merge identically,
not just clean runs).
"""

from repro.engine import (
    parallel_bitflip_campaigns,
    parallel_crash_in_critical_section_campaign,
    parallel_crash_ni_campaign,
    parallel_crash_step_campaign,
    parallel_interleaving_campaign,
    parallel_pure_check_grid,
    sequential_pure_check_grid,
)
from repro.faults.campaign import (
    bitflip_campaign,
    crash_in_critical_section_campaign,
    crash_ni_campaign,
    crash_step_campaign,
    default_workload,
    default_world_factory,
    interleaving_campaign,
)
from repro.hyperenclave.buggy import MissingLockMonitor, NoShootdownMonitor


def test_interleaving_equivalence(pool):
    seq = interleaving_campaign(max_schedules=40)
    par = parallel_interleaving_campaign(max_schedules=40, executor=pool)
    assert repr(par) == repr(seq)


def test_interleaving_equivalence_with_crash(pool):
    seq = interleaving_campaign(max_schedules=24, check_ni=False,
                                crash=(1, 3))
    par = parallel_interleaving_campaign(max_schedules=24,
                                         check_ni=False, crash=(1, 3),
                                         executor=pool)
    assert repr(par) == repr(seq)


def test_interleaving_equivalence_missing_lock(pool):
    """Violating runs (lock-protocol findings) must merge identically."""
    seq = interleaving_campaign(MissingLockMonitor, max_schedules=30,
                                check_ni=False)
    par = parallel_interleaving_campaign(MissingLockMonitor,
                                         max_schedules=30,
                                         check_ni=False, executor=pool)
    assert not seq.ok
    assert repr(par) == repr(seq)


def test_interleaving_equivalence_no_shootdown(pool):
    seq = interleaving_campaign(NoShootdownMonitor, max_schedules=150,
                                check_ni=False)
    par = parallel_interleaving_campaign(NoShootdownMonitor,
                                         max_schedules=150,
                                         check_ni=False, executor=pool)
    assert not seq.ok
    assert repr(par) == repr(seq)


def test_crash_step_equivalence(pool):
    seq = crash_step_campaign(default_world_factory(),
                              default_workload())
    par = parallel_crash_step_campaign(executor=pool)
    assert seq.runs and repr(par) == repr(seq)


def test_bitflip_equivalence(pool):
    factory = default_world_factory()
    seeds = [0, 1, 2]
    seq = [bitflip_campaign(factory, flips=24, seed=s) for s in seeds]
    par = parallel_bitflip_campaigns(seeds, flips=24, executor=pool)
    assert repr(par) == repr(seq)


def test_crash_ni_equivalence(pool):
    seq = crash_ni_campaign()
    par = parallel_crash_ni_campaign(executor=pool)
    assert seq.runs and repr(par) == repr(seq)


def test_crash_in_critical_section_equivalence(pool):
    seq = crash_in_critical_section_campaign()
    par = parallel_crash_in_critical_section_campaign(executor=pool)
    assert seq.records and repr(par) == repr(seq)


def test_pure_check_grid_equivalence(pool):
    """With frozen worker clocks even ``budget_spent`` merges equal."""
    names = ["entry_index", "pte_is_present", "pte_frame",
             "align_page_down"]
    kw = dict(total_steps=4000, seed=7, sample_count=32,
              fake_clock=True)
    seq = sequential_pure_check_grid(names, **kw)
    par = parallel_pure_check_grid(names, **kw, executor=pool)
    assert [r.name for r in seq] == names
    assert repr(par) == repr(seq)


def test_stats_out_reports_worker_memoisation(pool):
    stats = {}
    parallel_interleaving_campaign(max_schedules=40, executor=pool,
                                   stats_out=stats)
    assert stats["invariants"]["hits"] + stats["invariants"]["misses"] > 0
