"""Deadline-aware client for the checking service.

A thin, dependency-free (``urllib.request``) wrapper over the daemon's
JSON API that turns transport noise into the repo's typed verdicts:

* Connection refusals, resets and HTTP 5xx responses are retried with
  the same deterministic-jitter exponential backoff the supervisor
  uses for shard retries (:func:`~repro.service.supervisor
  .backoff_delay` keyed by URL) — no clock-seeded randomness, so a
  client's retry trace is reproducible.
* 429 backpressure verdicts honour the server's ``retry_after`` hint
  and keep retrying while the deadline allows; retrying a ``POST
  /campaigns`` is safe because submission is idempotent by campaign id.
* Every operation takes an optional ``deadline`` (seconds); running
  out raises :class:`~repro.errors.DeadlineExceeded` carrying the last
  transport failure as ``cause`` rather than looping forever against a
  dead daemon.
"""

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.errors import (AdmissionRefused, CampaignNotFound,
                          DeadlineExceeded, ServiceError)
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY
from repro.service.scheduler import (CANCELLED, DONE, FAILED,
                                     INTERRUPTED)
from repro.service.supervisor import backoff_delay

#: Campaign states the daemon will not advance further.
TERMINAL_STATES = (DONE, FAILED, CANCELLED, INTERRUPTED)


class ServiceUnavailable(ServiceError):
    """The daemon kept failing at the transport level until the
    deadline (or retry budget) ran out."""

    _CTOR_ATTRS = ("url", "detail")

    def __init__(self, url: str, detail: str):
        super().__init__(f"checking service at {url} unavailable: "
                         f"{detail}")
        self.url = url
        self.detail = detail


class ServiceClient:
    """One daemon endpoint; all verbs retry transient failures.

    ``deadline`` (per call, seconds) bounds the *total* time spent
    including backoff sleeps; ``max_attempts`` bounds retries when no
    deadline is given.  ``sleep`` and ``clock`` are injectable so
    tests exercise retry schedules without real waiting.
    """

    def __init__(self, url: str, *, max_attempts: int = 5,
                 backoff: float = 0.1, backoff_cap: float = 2.0,
                 sleep=time.sleep, clock=time.monotonic):
        self.url = url.rstrip("/")
        self.max_attempts = max(1, max_attempts)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._clock = clock

    # -- transport ----------------------------------------------------------

    #: Per-request socket timeout ceiling; a caller deadline clamps it
    #: further so a black-holed server cannot outlive the deadline.
    REQUEST_TIMEOUT = 30.0

    def _once(self, method: str, path: str, body: Optional[Dict],
              timeout: float = REQUEST_TIMEOUT) -> Dict:
        """One HTTP exchange; typed service errors raise, transport
        errors raise ``urllib.error.URLError``/``OSError``."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            payload = self._error_payload(exc)
            if exc.code in (429, 503) \
                    and payload.get("error") == "backpressure":
                raise AdmissionRefused(payload.get("reason", "busy"),
                                       retry_after=payload.get(
                                           "retry_after")) from None
            if exc.code == 404:
                raise CampaignNotFound(
                    payload.get("campaign")
                    or payload.get("path", path)) from None
            if exc.code >= 500:
                # Server-side trouble: let the retry loop handle it.
                raise
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: "
                f"{payload.get('detail', payload)}") from None

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> Dict:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return {}

    def _request(self, method: str, path: str, *,
                 body: Optional[Dict] = None,
                 deadline: Optional[float] = None) -> Dict:
        """The retry loop: transport errors and 429/503 verdicts back
        off (deterministic jitter keyed by the request path) until the
        deadline or attempt budget runs out."""
        started = self._clock()
        attempt = 0
        last_error: Optional[BaseException] = None
        operation = f"{method} {path}"
        with _trace.span("service.client", operation=operation):
            while True:
                attempt += 1
                REGISTRY.inc("service.client_requests")
                timeout = self.REQUEST_TIMEOUT
                if deadline is not None:
                    remaining = deadline - (self._clock() - started)
                    if remaining <= 0:
                        raise DeadlineExceeded(operation, deadline,
                                               cause=last_error)
                    # The socket timeout never exceeds what is left of
                    # the deadline — deadline=5 against a black-holed
                    # server must fail in ~5s, not ~30s.
                    timeout = min(timeout, remaining)
                try:
                    return self._once(method, path, body, timeout)
                except (CampaignNotFound, ServiceError) as exc:
                    if not isinstance(exc, AdmissionRefused):
                        raise
                    # Backpressure: the server said when to come back.
                    if exc.retry_after is None and deadline is None:
                        raise   # draining and no deadline: give up now
                    last_error = exc
                    delay = exc.retry_after if exc.retry_after \
                        is not None else backoff_delay(
                            path, 0, attempt, base=self.backoff,
                            cap=self.backoff_cap)
                except (urllib.error.URLError, OSError,
                        ConnectionError) as exc:
                    last_error = exc
                    delay = backoff_delay(path, 0, attempt,
                                          base=self.backoff,
                                          cap=self.backoff_cap)
                REGISTRY.inc("service.client_retries")
                if deadline is not None:
                    remaining = deadline - (self._clock() - started)
                    if remaining <= delay:
                        raise DeadlineExceeded(operation, deadline,
                                               cause=last_error)
                elif attempt >= self.max_attempts:
                    if isinstance(last_error, AdmissionRefused):
                        raise last_error
                    raise ServiceUnavailable(
                        self.url, f"{operation} failed after "
                        f"{attempt} attempts: {last_error}")
                _trace.event("service.client-retry",
                             operation=operation, attempt=attempt,
                             delay=delay, error=str(last_error))
                self._sleep(delay)

    # -- verbs --------------------------------------------------------------

    def submit(self, payload: Dict, *,
               deadline: Optional[float] = None) -> Dict:
        """``POST /campaigns`` — idempotent when ``payload['id']``
        is set, which makes the retry loop safe on lost responses."""
        return self._request("POST", "/campaigns", body=payload,
                             deadline=deadline)

    def status(self, campaign_id: str, *,
               deadline: Optional[float] = None) -> Dict:
        return self._request("GET", f"/campaigns/{campaign_id}",
                             deadline=deadline)

    def list_campaigns(self, *,
                       deadline: Optional[float] = None) -> List[Dict]:
        return self._request("GET", "/campaigns",
                             deadline=deadline)["campaigns"]

    def artifacts(self, campaign_id: str, *,
                  deadline: Optional[float] = None) -> List[Dict]:
        return self._request(
            "GET", f"/campaigns/{campaign_id}/artifacts",
            deadline=deadline)["artifacts"]

    def cancel(self, campaign_id: str, *,
               deadline: Optional[float] = None) -> Dict:
        return self._request("POST",
                             f"/campaigns/{campaign_id}/cancel",
                             deadline=deadline)

    def healthz(self, *, deadline: Optional[float] = None) -> Dict:
        return self._request("GET", "/healthz", deadline=deadline)

    def wait(self, campaign_id: str, *,
             deadline: Optional[float] = None,
             poll: float = 0.1) -> Dict:
        """Poll until the campaign reaches a terminal state; returns
        its final status payload."""
        started = self._clock()
        last_state = "unknown"
        while True:
            remaining = None if deadline is None \
                else deadline - (self._clock() - started)
            if remaining is not None and remaining <= 0:
                raise DeadlineExceeded(
                    f"wait {campaign_id}", deadline,
                    cause=f"campaign still {last_state}")
            status = self.status(campaign_id, deadline=remaining)
            last_state = status["status"]
            if last_state in TERMINAL_STATES:
                return status
            self._sleep(poll)
