"""Deterministic cooperative multi-vCPU scheduler — two engines, one
record format.

Instrumented code inside the monitor calls :func:`yield_point` at every
lock acquire, lock release (hypercall return), physical-memory write,
shootdown IPI, and security-model step; each such call hands control to
the scheduler, which picks the next vCPU.  Because the *only*
scheduling freedom in the whole system is that choice at each decision
point, an execution is fully determined by its :class:`Schedule` — a
seed, a tuple of preemptions, and an optional vCPU crash — which is
what makes every explored interleaving replayable from a single small
value.

Two interchangeable engines execute a schedule
(``REPRO_SCHED_ENGINE``, or the ``engine=`` argument):

* ``continuation`` (default) — every vCPU is driven as a generator
  continuation by one plain-Python loop on the calling thread.  A step
  whose scheduling is already settled — no forced preemption pending,
  no lock held anywhere — is a plain function call (its yields resolve
  inline, see ``_ContinuationEngine``); a step that might genuinely
  context-switch mid-stack borrows a pooled fiber from
  :mod:`repro.concurrency.arena`.  No thread is created or joined per
  run, and the common case does zero ``Event`` handoffs.
* ``threads`` — the legacy engine and parity reference: one OS thread
  per vCPU, strict token passing through per-task events (the CHESS
  execution model).  CI gates the two engines byte-identical on the
  full buggy-monitor matrix.

The module doubles as the instrumentation plane (mirroring
``repro.faults.plane``): all hooks are module-level functions that
no-op unless a scheduler is installed *and* the caller is executing one
of its vCPU tasks.  Monitor code can therefore call them
unconditionally; sequential callers pay nothing.
"""

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.concurrency.arena import process_arena
from repro.concurrency.locks import LockManager
from repro.errors import ConfigError, FaultInjected
from repro.obs.metrics import REGISTRY

#: Yield kinds at which the interleaving explorer considers preempting.
#: Anything else (plain ``phys.write`` under an owning lock) cannot be
#: the first action of a conflict, per the persistent-set argument in
#: :mod:`repro.concurrency.explorer`.
BRANCH_KINDS = frozenset(
    {"task.start", "step", "lock.acquire", "shootdown.ipi", "hc.return"})

#: Synthetic fault site used when a schedule crashes a vCPU.
VCPU_CRASH_SITE = "vcpu.crash"

#: Engine selection knob (``continuation`` is the default).
ENV_ENGINE = "REPRO_SCHED_ENGINE"

#: Scheduler-engine telemetry, surfaced through ``/metrics`` next to
#: the ``snapshot_cache.*`` family.  ``handoffs`` counts cross-thread
#: wakeup pairs (Event round trips on either engine); the continuation
#: engine's inline path does none.
SCHED_STATS = REGISTRY.counter_group(
    "sched", ("handoffs", "inline_decisions", "arena_reuses",
              "fiber_steps", "runs_continuation", "runs_threads"))


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve the engine name: explicit value, else ``REPRO_SCHED_ENGINE``
    (unset or empty means ``continuation``)."""
    raw = explicit if explicit is not None else os.environ.get(ENV_ENGINE)
    if raw is None or not raw.strip():
        return "continuation"
    name = raw.strip().lower()
    if name in ("threads", "thread", "threaded"):
        return "threads"
    if name in ("continuation", "continuations"):
        return "continuation"
    raise ConfigError(ENV_ENGINE, raw,
                      "expected 'continuation' or 'threads'")


class _VCpuParked(BaseException):
    """Unwinds a crashed vCPU's continuation.

    A ``BaseException`` on purpose: after a crash is delivered the task
    must stop for good, and no ``except ReproError``/``except
    Exception`` in monitor or workload code may resurrect it.
    """


@dataclass(frozen=True)
class Schedule:
    """A complete, replayable description of one interleaving.

    ``preemptions`` maps decision indices to the vCPU forced at that
    decision; at every other decision the scheduler continues the
    previously running vCPU (or the lowest enabled one).  ``crash``, if
    set, kills vCPU ``crash[0]`` at its ``crash[1]``-th yield point
    with a :class:`~repro.errors.FaultInjected` at site ``vcpu.crash``.
    """

    seed: int = 0
    preemptions: Tuple[Tuple[int, int], ...] = ()
    crash: Optional[Tuple[int, int]] = None

    def describe(self) -> str:
        """The human-readable replay string printed with violations."""
        parts = [f"seed={self.seed}"]
        if self.preemptions:
            parts.append("preempt=" + ",".join(
                f"@{i}->vcpu{v}" for i, v in self.preemptions))
        if self.crash is not None:
            parts.append(f"crash=vcpu{self.crash[0]}@yield{self.crash[1]}")
        return " ".join(parts)


@dataclass(frozen=True)
class Decision:
    """One scheduling decision: who ran, who else could have."""

    index: int
    chosen: int
    chosen_kind: str
    enabled: Tuple[int, ...]
    kinds: Tuple[Tuple[int, str], ...]   # (vid, parked-at kind) per enabled


@dataclass(frozen=True)
class YieldPoint:
    """One executed yield: where a vCPU handed control back."""

    vid: int
    yield_index: int       # 1-based, per vCPU
    kind: str
    detail: Optional[str]
    locks_held: Tuple[str, ...]

    @property
    def in_critical_section(self) -> bool:
        return bool(self.locks_held)


@dataclass
class Task:
    """One vCPU's workload and its cooperative-scheduling state.

    Pure scheduling state: how the task *executes* (an OS thread, a
    generator continuation, a pooled fiber) is the installed engine's
    private business and deliberately not represented here.
    """

    vid: int
    fn: Callable[[], None]
    pending_kind: str = "task.start"
    pending_detail: Optional[str] = None
    yield_index: int = 0
    waiting_lock: Optional[str] = None
    crashed: bool = False
    parked: bool = False
    done: bool = False
    exc: Optional[BaseException] = None
    txn_scope: Optional[object] = None
    # Set by a snapshot-tree restore: the task is parked *inside* its
    # current script step, so the first ``resume_swallow`` yields it
    # re-executes were already recorded (and crash-checked) in the
    # cached prefix and are silently consumed instead of being recorded
    # again (1 for a ``step`` park, 2 for a ``lock.acquire`` park —
    # the step yield plus the acquire yield).
    resume_swallow: int = 0
    # Also set by a restore, for a task parked at ``hc.return``: its
    # script position was seeded *post-advance* (the next step to run),
    # unlike a live park where the position still names the step in
    # flight.  Snapshot capture consults this so it doesn't advance the
    # position a second time; cleared the moment the task records a new
    # yield of its own.
    restored_return: bool = False


@dataclass
class RunResult:
    """Everything one scheduled execution produced."""

    schedule: Schedule
    decisions: Tuple[Decision, ...]
    yields: Tuple[YieldPoint, ...]
    trace: Tuple[int, ...]                 # chosen vid per decision
    lock_violations: tuple
    stale_translations: tuple
    task_errors: Dict[int, BaseException]
    parked: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return (not self.lock_violations and not self.stale_translations
                and not self.task_errors)

    def critical_yields(self) -> Tuple[YieldPoint, ...]:
        """Yield points taken while the yielding vCPU held locks."""
        return tuple(y for y in self.yields if y.in_critical_section)


class DeterministicScheduler:
    """Runs one :class:`Schedule` over a set of vCPU workloads.

    ``workloads`` is either a list of callables (``workloads[i]``
    becomes vCPU ``i``'s task) or a step-drivable workload object
    exposing ``scripts``/``positions``/``run_step``/``advance``/
    ``steps_remaining``/``tasks`` (see
    :class:`~repro.faults.campaign.ScriptWorkloads`) — the latter lets
    the continuation engine drive scripts step by step and the snapshot
    tree park/restore tasks between steps.  ``probe``, if given, is
    called with the monitor after every decision — outside any task, so
    it must not hit any yield points — and returns an iterable of
    findings (the stale-translation detector).
    """

    def __init__(self, monitor, workloads, schedule=None, *,
                 lock_manager=None, probe=None, timeout=60.0,
                 fast_handoff=False, engine=None):
        self.monitor = monitor
        self.schedule = schedule if schedule is not None else Schedule()
        self.locks = lock_manager if lock_manager is not None else LockManager()
        self.probe = probe
        self.timeout = timeout
        self.fast_handoff = fast_handoff
        self.engine_name = resolve_engine(engine)
        if hasattr(workloads, "run_step"):
            self.script_workloads = workloads
            fns = workloads.tasks()
        else:
            self.script_workloads = None
            fns = list(workloads)
        self.tasks = [Task(vid=vid, fn=fn) for vid, fn in enumerate(fns)]
        self.decisions: List[Decision] = []
        self.yields: List[YieldPoint] = []
        self.stale: List[object] = []
        self._preempt = dict(self.schedule.preemptions)
        self._max_forced = max(self._preempt, default=-1)
        self._last: Optional[int] = None
        self._ran = False
        # Optional snapshot-tree capture hook (repro.concurrency
        # .snapshot.SnapshotPlan).  Offered the frozen world right
        # before each scheduling decision; None costs one ``is None``
        # test per decision and keeps this the exact legacy path.
        self.snapshots = None
        self._engine = (_ThreadsEngine(self) if self.engine_name == "threads"
                        else _ContinuationEngine(self))

    # -- the run ----------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the schedule to completion and return the record."""
        if self._ran:
            raise RuntimeError("a DeterministicScheduler is single-use; "
                               "build a fresh one to replay")
        self._ran = True
        SCHED_STATS["runs_" + self.engine_name] += 1
        # label-style gauge: lets /metrics readers see which engine the
        # process last ran without diffing the runs_* counters
        REGISTRY.set_gauge("sched.engine", self.engine_name)
        with installed(self):
            self._engine.run()
        return self.result()

    def result(self) -> RunResult:
        return RunResult(
            schedule=self.schedule,
            decisions=tuple(self.decisions),
            yields=tuple(self.yields),
            trace=tuple(d.chosen for d in self.decisions),
            lock_violations=tuple(self.locks.violations),
            stale_translations=tuple(self.stale),
            task_errors={t.vid: t.exc for t in self.tasks
                         if t.exc is not None},
            parked=tuple(t.vid for t in self.tasks if t.parked),
        )

    # -- scheduling policy ------------------------------------------------------

    def _runnable(self, task) -> bool:
        return task.waiting_lock is None or \
            not self.locks.would_block(task.vid, task.waiting_lock)

    def _pick(self, enabled):
        forced = self._preempt.get(len(self.decisions))
        if forced is not None:
            for task in enabled:
                if task.vid == forced:
                    return task
        if self._last is not None:
            for task in enabled:
                if task.vid == self._last:
                    return task
        return min(enabled, key=lambda t: t.vid)

    # -- decision machinery (shared by both engines) ----------------------------

    def _loop_decide(self) -> Optional[Task]:
        """One scheduling decision made from the loop; returns the
        chosen task, or None once every task is done."""
        live = [t for t in self.tasks if not t.done]
        if not live:
            return None
        enabled = [t for t in live if self._runnable(t)]
        if not enabled:
            raise RuntimeError(
                "scheduler deadlock: "
                + "; ".join(f"vcpu{t.vid} waits on "
                            f"{t.waiting_lock!r}" for t in live))
        if self.snapshots is not None:
            self.snapshots.offer(self)
        chosen = self._pick(enabled)
        self.decisions.append(Decision(
            index=len(self.decisions),
            chosen=chosen.vid,
            chosen_kind=chosen.pending_kind,
            enabled=tuple(t.vid for t in enabled),
            kinds=tuple((t.vid, t.pending_kind) for t in enabled)))
        self._last = chosen.vid
        return chosen

    def _record_yield(self, task, kind, detail) -> bool:
        """The front half of every yield: the record, the crash check,
        the pending-kind update.  Returns True when the yield was a
        snapshot-restore swallow (execution just continues)."""
        if task.resume_swallow:
            # Snapshot restore: this yield is the cached prefix's park
            # point being re-reached; everything about it — the yield
            # record, the crash check, the scheduling decision — is
            # already seeded.  Consume it and keep executing.
            task.resume_swallow -= 1
            return True
        task.restored_return = False
        task.yield_index += 1
        self.yields.append(YieldPoint(
            vid=task.vid, yield_index=task.yield_index, kind=kind,
            detail=detail, locks_held=self.locks.held_by(task.vid)))
        if (not task.crashed and self.schedule.crash is not None
                and self.schedule.crash == (task.vid, task.yield_index)):
            task.crashed = True
            raise FaultInjected(VCPU_CRASH_SITE,
                                hit=task.yield_index, label=kind)
        if task.crashed:
            # the crash already fired; the vCPU must not execute further
            raise _VCpuParked()
        task.pending_kind = kind
        task.pending_detail = detail
        return False

    def _decide_inline(self, task) -> bool:
        """Decide the next step from inside the yielding task itself.

        Strict token passing means the parked world is frozen while
        this vCPU runs, so the yielding task can evaluate exactly the
        pick the loop would make.  When that pick is the yielding vCPU
        itself — the overwhelmingly common case under a small
        preemption bound, where every non-preempted decision just
        continues the running vCPU — the decision, its record, and the
        probe all happen inline and no control transfer occurs.  Any
        other pick (a preemption, a lock handover, a finished task)
        falls back to the engine's suspension path, so the recorded
        :class:`RunResult` is byte-identical either way.
        """
        live = [t for t in self.tasks if not t.done]
        enabled = [t for t in live if self._runnable(t)]
        if not enabled or self._pick(enabled) is not task:
            return False
        if self.snapshots is not None:
            self.snapshots.offer(self)
        self.decisions.append(Decision(
            index=len(self.decisions),
            chosen=task.vid,
            chosen_kind=task.pending_kind,
            enabled=tuple(t.vid for t in enabled),
            kinds=tuple((t.vid, t.pending_kind) for t in enabled)))
        self._last = task.vid
        SCHED_STATS["inline_decisions"] += 1
        if self.probe is not None:
            # The probe normally runs outside any task, where
            # instrumentation hooks no-op; ``suspended`` gives it the
            # same hook-free environment inside one.
            with suspended():
                self.stale.extend(self.probe(self.monitor) or ())
        return True

    def _probe_now(self):
        if self.probe is not None:
            self.stale.extend(self.probe(self.monitor) or ())


class _ThreadsEngine:
    """The legacy execution engine: one OS thread per vCPU task, strict
    token passing through per-task events.  Kept as the parity
    reference (``REPRO_SCHED_ENGINE=threads``); its thread/event/ident
    plumbing is private to this class, not part of :class:`Task`.
    """

    def __init__(self, sched):
        self.sched = sched
        self._by_ident: Dict[int, Task] = {}
        self._events: Dict[int, threading.Event] = {
            task.vid: threading.Event() for task in sched.tasks}
        self._threads: Dict[int, threading.Thread] = {}
        self._control = threading.Event()

    def run(self):
        """Spawn one OS thread per live task and referee the handoffs."""
        sched = self.sched
        for task in sched.tasks:
            if task.done:
                # pre-completed by a snapshot restore: its whole
                # script ran inside the cached prefix
                continue
            thread = threading.Thread(
                target=self._runner, args=(task,),
                name=f"vcpu-{task.vid}", daemon=True)
            self._threads[task.vid] = thread
            thread.start()
        while True:
            chosen = sched._loop_decide()
            if chosen is None:
                break
            self._control.clear()
            self._events[chosen.vid].set()
            SCHED_STATS["handoffs"] += 1
            if not self._control.wait(sched.timeout):
                raise RuntimeError(
                    f"vcpu{chosen.vid} did not yield within "
                    f"{sched.timeout}s")
            sched._probe_now()
        for thread in self._threads.values():
            thread.join(sched.timeout)

    # -- hook dispatch ----------------------------------------------------------

    def hook_task(self) -> Optional[Task]:
        return self._by_ident.get(threading.get_ident())

    def task_yield(self, task, kind, detail):
        """Park ``task`` at a yield point until the referee resumes it."""
        sched = self.sched
        if sched._record_yield(task, kind, detail):
            return
        if sched.fast_handoff and sched._decide_inline(task):
            return
        self._control.set()
        event = self._events[task.vid]
        SCHED_STATS["handoffs"] += 1
        if not event.wait(sched.timeout):
            raise RuntimeError(f"vcpu{task.vid} was never rescheduled")
        event.clear()

    def release_locks(self, task, where):
        """Drop every lock ``task`` holds and emit the hc.return yield."""
        sched = self.sched
        released = sched.locks.release_all(task.vid)
        try:
            if not _suspended():
                self.task_yield(task, "hc.return", where)
        finally:
            sched.locks.check_none_held(task.vid, f"return from {where}")
        return released

    # -- task side --------------------------------------------------------------

    def _runner(self, task):
        self._by_ident[threading.get_ident()] = task
        event = self._events[task.vid]
        event.wait()
        event.clear()
        try:
            task.fn()
        except _VCpuParked:
            task.parked = True
        except FaultInjected as exc:
            if exc.site == VCPU_CRASH_SITE:
                # crash delivered outside any hypercall: the vCPU just
                # stops, with nothing to roll back
                task.parked = True
            else:
                task.exc = exc
        except BaseException as exc:          # noqa: BLE001 - report, don't die
            task.exc = exc
        finally:
            task.done = True
            self._control.set()


class _ContinuationEngine:
    """Generator-continuation engine: the default.

    Every not-done task gets a *driver generator* (:meth:`_drive`) and
    the loop simply ``next()``s the chosen task's driver at each
    decision.  The driver suspends (``yield``) exactly when a decision
    must be made by the loop — i.e. when the pick at a yield point is
    *not* the yielding task itself.

    The load-bearing dichotomy is decided at each step boundary
    (:meth:`_can_inline`): once every forced preemption index is behind
    ``len(decisions)`` (monotone — decisions only grow) and no lock is
    held anywhere, a step's every yield must pick the running task
    itself: ``_pick`` falls through *forced* (none pending) to *last*
    (the running task), and the running task can never be lock-blocked
    because only its own locks exist.  Such a step is executed as a
    plain function call — its yields resolve through
    ``_decide_inline`` with zero control transfers.  A step that cannot
    be proven settled runs on a pooled fiber
    (:mod:`repro.concurrency.arena`), which can suspend mid-stack with
    exactly the legacy engine's semantics.

    For step-drivable workloads the ``hc.return`` yield is *hoisted* to
    the driver: :meth:`release_locks` releases the locks and defers the
    yield, and the driver emits it after the step's stack has fully
    unwound — which is what makes tasks parked at ``hc.return``
    capture-eligible for the snapshot tree (no stack to clone).
    Nothing observable runs between the in-stack site and the hoisted
    one: the post-release tail of a hypercall is pure bookkeeping
    (``check_none_held`` after ``release_all`` cannot fire, and a
    rejected ``StepOutcome`` is returned to a caller that discards it).
    """

    def __init__(self, sched):
        self.sched = sched
        self._current: Optional[Task] = None
        self._gens: Dict[int, object] = {}
        self._fiber_of: Dict[int, object] = {}
        self._deferred: Dict[int, str] = {}

    def run(self):
        """Drive every live task as a continuation from one loop."""
        sched = self.sched
        for task in sched.tasks:
            if not task.done:
                self._gens[task.vid] = self._drive(task)
        while True:
            chosen = sched._loop_decide()
            if chosen is None:
                break
            self._advance(chosen)
            sched._probe_now()

    def _advance(self, task):
        gen = self._gens[task.vid]
        self._current = task
        try:
            next(gen)
        except StopIteration:
            pass
        finally:
            self._current = None

    # -- hook dispatch ----------------------------------------------------------

    def hook_task(self) -> Optional[Task]:
        return self._current

    def task_yield(self, task, kind, detail):
        """Record the yield; decide inline or park the task's fiber."""
        sched = self.sched
        if sched._record_yield(task, kind, detail):
            return
        if sched._decide_inline(task):
            return
        fiber = self._fiber_of.get(task.vid)
        if fiber is None:
            raise RuntimeError(
                f"continuation engine invariant violated: vcpu{task.vid} "
                f"needed a context switch at {kind!r} inside an inline "
                f"step")
        fiber.park(sched.timeout)

    def release_locks(self, task, where):
        """Drop the task's locks; defer the hc.return yield if scripted."""
        sched = self.sched
        released = sched.locks.release_all(task.vid)
        if sched.script_workloads is not None and not _suspended():
            # hoisted: the driver emits the hc.return yield once the
            # step's stack has unwound (see class docstring)
            self._deferred[task.vid] = where
            return released
        try:
            if not _suspended():
                self.task_yield(task, "hc.return", where)
        finally:
            sched.locks.check_none_held(task.vid, f"return from {where}")
        return released

    # -- the inline/fiber dichotomy ---------------------------------------------

    def _can_inline(self) -> bool:
        sched = self.sched
        return (len(sched.decisions) > sched._max_forced
                and not sched.locks.any_held())

    # -- drivers ----------------------------------------------------------------

    def _drive(self, task):
        """The driver generator: one per task, same terminal semantics
        as the threaded engine's ``_runner``."""
        try:
            if self.sched.script_workloads is not None:
                yield from self._script_body(task)
            else:
                yield from self._callable_body(task)
        except _VCpuParked:
            task.parked = True
        except FaultInjected as exc:
            if exc.site == VCPU_CRASH_SITE:
                # crash delivered outside any hypercall: the vCPU just
                # stops, with nothing to roll back
                task.parked = True
            else:
                task.exc = exc
        except BaseException as exc:          # noqa: BLE001 - report, don't die
            task.exc = exc
        finally:
            task.done = True

    def _script_body(self, task):
        sched = self.sched
        workloads = sched.script_workloads
        vid = task.vid
        while workloads.steps_remaining(vid):
            try:
                if self._can_inline():
                    workloads.run_step(vid)
                else:
                    yield from self._fiber_step(
                        task, lambda: workloads.run_step(vid))
            finally:
                # Emit a deferred hc.return even while an exception
                # unwinds the step (a crashed vCPU's _VCpuParked): the
                # legacy engine records that yield from inside the
                # hypercall wrapper's finally, so parity demands it.
                where = self._deferred.pop(vid, None)
                if where is not None:
                    try:
                        yield from self._emit(task, "hc.return", where)
                    finally:
                        sched.locks.check_none_held(
                            vid, f"return from {where}")
            workloads.advance(vid)

    def _callable_body(self, task):
        # An opaque callable is one indivisible "step": the inline
        # conditions, monotone for the whole run once true, make every
        # yield inside it pick the task itself.
        if self._can_inline():
            task.fn()
        else:
            yield from self._fiber_step(task, task.fn)

    def _emit(self, task, kind, detail):
        """A driver-level yield point (empty stack below it)."""
        if self.sched._record_yield(task, kind, detail):
            return
        if self.sched._decide_inline(task):
            return
        yield

    def _fiber_step(self, task, fn):
        """Run one step on a pooled fiber, yielding to the loop at
        every suspension until the step completes."""
        sched = self.sched
        fiber, reused = process_arena().lease()
        if reused:
            SCHED_STATS["arena_reuses"] += 1
        SCHED_STATS["fiber_steps"] += 1
        self._fiber_of[task.vid] = fiber
        try:
            SCHED_STATS["handoffs"] += 1
            status, exc = fiber.start(fn, sched.timeout)
            while status == "parked":
                yield
                SCHED_STATS["handoffs"] += 1
                status, exc = fiber.resume(sched.timeout)
        finally:
            self._fiber_of.pop(task.vid, None)
            process_arena().release(fiber)
        if exc is not None:
            raise exc


# ---------------------------------------------------------------------------
# Module-level instrumentation plane (mirrors repro.faults.plane)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[DeterministicScheduler] = None
_TLS = threading.local()


def active_scheduler() -> Optional[DeterministicScheduler]:
    return _ACTIVE


@contextmanager
def installed(scheduler):
    """Install ``scheduler`` as the process-wide plane for one run."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a scheduler is already installed")
    _ACTIVE = scheduler
    try:
        yield scheduler
    finally:
        _ACTIVE = None


def current_task() -> Optional[Task]:
    """The executing :class:`Task`, or None outside any vCPU task."""
    sched = _ACTIVE
    if sched is None:
        return None
    return sched._engine.hook_task()


def current_vid() -> Optional[int]:
    """The executing vCPU id, or None outside any scheduled task."""
    task = current_task()
    return None if task is None else task.vid


def _suspended() -> bool:
    return getattr(_TLS, "depth", 0) > 0


@contextmanager
def suspended():
    """Silence all hooks on this thread (rollback must not re-enter)."""
    _TLS.depth = getattr(_TLS, "depth", 0) + 1
    try:
        yield
    finally:
        _TLS.depth -= 1


def yield_point(kind, detail=None):
    """A potential context switch; no-op outside a scheduled task."""
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._engine.hook_task()
    if task is None:
        return
    sched._engine.task_yield(task, kind, detail)


def acquire_locks(monitor, names):
    """Pre-acquire ``names`` in global order (strict 2PL entry).

    Blocks (by parking at a ``lock.acquire`` yield that the scheduler
    only resumes once the lock is free) rather than spinning, so the
    enabled-set the explorer sees is exact.
    """
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._engine.hook_task()
    if task is None:
        return
    from repro.concurrency.locks import order_locks
    for name in order_locks(names):
        task.waiting_lock = name
        sched._engine.task_yield(task, "lock.acquire", name)
        task.waiting_lock = None
        sched.locks.acquire(task.vid, name)
        scope = task.txn_scope
        if scope is not None:
            scope.snapshot_structure(monitor, name)


def release_locks(where):
    """Release every lock of the current vCPU (hypercall return)."""
    sched = _ACTIVE
    if sched is None:
        return ()
    task = sched._engine.hook_task()
    if task is None:
        return ()
    return sched._engine.release_locks(task, where)


def guard_mutation(name):
    """Rule-3 checkpoint: a ``name``-guarded structure is being written."""
    sched = _ACTIVE
    if sched is None or _suspended():
        return
    task = sched._engine.hook_task()
    if task is None:
        return
    sched.locks.check_mutation(task.vid, name)


def record_phys_write(index, old_value):
    """Journal a physical-memory word about to be overwritten."""
    if _suspended():
        return
    task = current_task()
    if task is None or task.txn_scope is None:
        return
    task.txn_scope.record_word(index, old_value)
