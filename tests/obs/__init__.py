"""Observability plane tests: tracing, metrics, provenance."""
