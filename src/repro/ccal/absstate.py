"""Immutable abstract states.

"[CCAL] extended the C semantics to add a user-defined abstract state of
the system undergoing verification, and views function executions as
relations between abstract states."  (Sec. 3.4)

An :class:`AbsState` is an immutable record of named fields.  Updates are
functional (:meth:`set` returns a new state), equality is structural, and
a state remembers which *layer* owns each field so the layer machinery
can check encapsulation: only specifications of the owning layer may
update a field.

Field values should themselves be immutable (ints, tuples, frozen
dataclasses, :class:`~repro.ccal.zmap.ZMap`); the class does not deep-copy.
"""

from repro.errors import LayerError


class AbsState:
    """An immutable record of named abstract-state fields."""

    __slots__ = ("_fields", "_owners")

    def __init__(self, fields=None, owners=None):
        object.__setattr__(self, "_fields", dict(fields) if fields else {})
        object.__setattr__(self, "_owners", dict(owners) if owners else {})

    # -- reads ----------------------------------------------------------------

    def get(self, name):
        try:
            return self._fields[name]
        except KeyError:
            raise LayerError(f"abstract state has no field {name!r}")

    __getitem__ = get

    def has(self, name):
        return name in self._fields

    def fields(self):
        return sorted(self._fields)

    def owner_of(self, name):
        return self._owners.get(name)

    # -- functional updates ------------------------------------------------------

    def set(self, name, value, _writer_layer=None):
        """Return a new state with ``name`` bound to ``value``.

        If an owner is declared for the field and ``_writer_layer`` is
        given, the write is permitted only from the owning layer — the
        data-encapsulation rule of layered proofs.
        """
        if name not in self._fields:
            raise LayerError(
                f"abstract state has no field {name!r}; declare it with "
                f"with_field() first"
            )
        owner = self._owners.get(name)
        if owner is not None and _writer_layer is not None \
                and _writer_layer != owner:
            raise LayerError(
                f"layer {_writer_layer!r} wrote field {name!r} owned by "
                f"layer {owner!r}"
            )
        fields = dict(self._fields)
        fields[name] = value
        new = AbsState.__new__(AbsState)
        object.__setattr__(new, "_fields", fields)
        object.__setattr__(new, "_owners", self._owners)
        return new

    def update(self, **updates):
        """Functional multi-field update (no ownership check; test sugar)."""
        state = self
        for name, value in updates.items():
            state = state.set(name, value)
        return state

    def with_field(self, name, value, owner=None):
        """Return a new state with an additional field (layer assembly)."""
        if name in self._fields:
            raise LayerError(f"abstract-state field {name!r} already exists")
        fields = dict(self._fields)
        fields[name] = value
        owners = dict(self._owners)
        if owner is not None:
            owners[name] = owner
        new = AbsState.__new__(AbsState)
        object.__setattr__(new, "_fields", fields)
        object.__setattr__(new, "_owners", owners)
        return new

    # -- comparison ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, AbsState):
            return NotImplemented
        return self._fields == other._fields

    def equal_on(self, other, names):
        """Structural equality restricted to ``names`` — the building
        block of observation functions and refinement relations."""
        return all(self._fields.get(n) == other._fields.get(n) for n in names)

    def __repr__(self):
        inner = ", ".join(f"{k}={self._fields[k]!r}" for k in self.fields())
        return f"AbsState({inner})"
