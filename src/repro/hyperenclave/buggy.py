"""Deliberately broken RustMonitor variants.

Verification work is only convincing if the checkers *fail* on broken
designs; each class here deletes exactly one validation rule or takes
one tempting shortcut, reproducing the paper's negative examples:

* :class:`ShallowCopyMonitor` — the real-world bug of Sec. 4.1
  ("Malformed Page Tables in the Wild"): enclave page tables are
  initialised by shallow-copying the top level of the guest's tables, so
  they contain pointers to tables stored in guest-controlled memory.
* :class:`AliasingMonitor` — Fig. 5 case (1): a content-dedup
  "optimisation" shares one EPC frame between enclaves.
* :class:`OutsideElrangeMonitor` — Fig. 5 case (2): a VA outside the
  ELRANGE gets mapped to an EPC page, fooling the enclave into
  corrupting its own secure memory.
* :class:`NoEpcmRecordMonitor` — maps EPC pages without recording them
  (covert mappings; breaks the EPCM invariant).
* :class:`HugePageMonitor` — builds enclave tables with huge pages
  (breaks the no-huge-pages enclave invariant).
* :class:`MbufOverlapMonitor` — allows the marshalling buffer to overlap
  the ELRANGE (breaks the disjointness enclave invariant).
* :class:`SecureMbufMonitor` — allows the marshalling buffer to be
  backed by secure memory, aliasing EPC into the untrusted world.
* :class:`LeakyExitMonitor` — forgets to restore the host register
  context on exit, leaking enclave registers (noninterference, not a
  page-table invariant: shows the security theorem catches what the
  structural invariants cannot).
* :class:`NoScrubMonitor` — destroys enclaves without scrubbing their
  EPC pages, leaking secrets to the next owner.
* :class:`NonTransactionalMonitor` — runs every hypercall without the
  snapshot-rollback transaction, so a mid-hypercall failure strands
  partial mutations (the pre-transactional monitor; caught by the
  crash-step fault campaign rather than by any single invariant).
* :class:`MissingLockMonitor` — drops the strict-2PL lock acquisition
  while keeping every hypercall body; invisible to all sequential
  checks, convicted by the interleaving explorer's lock-discipline
  rules.
* :class:`NoShootdownMonitor` — replaces the TLB shootdown protocol
  with a local-only flush; convicted by the stale-translation detector
  when another vCPU races a ``hc_trim_page``.

All variants keep the full hypercall surface so identical workloads run
against them.
"""

from repro.errors import HypercallError, TranslationFault
from repro.hyperenclave import pte
from repro.hyperenclave.constants import WORD_BYTES
from repro.hyperenclave.enclave import Enclave, EnclaveState
from repro.hyperenclave.epcm import PageState
from repro.hyperenclave.mbuf import MarshallingBuffer
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.hyperenclave.paging import PageTable

ALL_BUGGY_MONITORS = []


def _register(cls):
    ALL_BUGGY_MONITORS.append(cls)
    return cls


@_register
class ShallowCopyMonitor(RustMonitor):
    """Sec. 4.1: enclave GPTs start as a shallow copy of an app's GPT.

    "The copy selected the relevant address ranges from the level-4 page
    table, but otherwise copied the existing entries. This is not secure,
    because HyperEnclave's page tables would then contain pointers to
    level-3 tables that are stored in physical memory controlled by the
    guest."

    ``hc_create_from_app`` performs the insecure initialisation; the
    refinement relation R (which requires every intermediate table to
    live in the monitor's frame area) is unprovable for the result, and
    the page-table-residency invariant catches it.
    """

    BUG = "shallow-copy-page-tables"

    def hc_create_from_app(self, app, elrange_base, elrange_size,
                           mbuf_va, mbuf_pa, mbuf_size) -> int:
        """The insecure initialisation: create, then shallow-copy the app's top-level GPT entries into the enclave's root."""
        eid = self.hc_create(elrange_base, elrange_size, mbuf_va,
                             mbuf_pa, mbuf_size)
        enclave = self.enclaves[eid]
        config = self.config
        # Shallow copy: lift the app's top-level entries (which point at
        # next-level tables in *guest* memory) straight into the
        # enclave's root, for every top-level slot the ELRANGE touches.
        app_root_frame = config.frame_of(app.gpt_root_gpa)
        top = config.levels
        first = config.entry_index(elrange_base, top)
        last = config.entry_index(elrange_base + elrange_size - 1, top)
        for index in range(first, last + 1):
            guest_entry = self.phys.read_word(
                config.frame_base(app_root_frame) + index * WORD_BYTES)
            if config.arch.is_present(guest_entry):
                enclave.gpt.write_entry(enclave.gpt.root_frame, index,
                                        guest_entry)
        return eid


@_register
class AliasingMonitor(RustMonitor):
    """Fig. 5 case (1): EPC page deduplication across enclaves.

    When an added page's content matches a page already in the EPC, the
    existing frame is shared instead of copied — so two enclaves gain
    access to the same physical EPC page, violating ELRANGE isolation.
    """

    BUG = "cross-enclave-page-alias"

    def hc_add_page(self, eid, va, src_gpa) -> int:
        """EADD with the dedup shortcut: identical content shares the existing EPC frame across enclaves."""
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED)
        config = self.config
        self._require_page_aligned(va, "va")
        self._require_page_aligned(src_gpa, "src_gpa")
        if not enclave.in_elrange(va):
            raise HypercallError("va outside ELRANGE")
        if enclave.gpt.query(va) is not None:
            raise HypercallError("va already added")
        src_hpa = self.os_ept.translate(src_gpa, write=False)
        src_words = self.phys.frame_words(config.frame_of(src_hpa))
        # The "optimisation": reuse any EPC frame with identical content.
        shared = None
        for frame, entry in self.epcm.entries():
            if entry.state is PageState.REG and \
                    self.phys.frame_words(frame) == src_words:
                shared = frame
                break
        if shared is None:
            frame = self.epcm.allocate(eid, PageState.REG, va=va)
            self.phys.copy_frame(frame, config.frame_of(src_hpa))
        else:
            frame = shared  # no copy, no ownership transfer — the bug
        gpa = enclave.elrange_gpa(va)
        enclave.gpt.map_page(va, gpa, self.config.arch.leaf_flags())
        enclave.ept.map_page(gpa, config.frame_base(frame),
                             self.config.arch.leaf_flags())
        enclave.absorb_measurement(va, src_words)
        return frame


@_register
class OutsideElrangeMonitor(RustMonitor):
    """Fig. 5 case (2): the ELRANGE membership check is missing.

    A cooperating-but-confused kernel module can then map a "scratch" VA
    outside the ELRANGE onto an EPC page; the enclave believes that VA is
    normal memory and can be fooled into corrupting its own secure pages.
    """

    BUG = "mapping-outside-elrange"

    def hc_add_page(self, eid, va, src_gpa) -> int:
        """EADD with the ELRANGE membership check deleted."""
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED)
        config = self.config
        self._require_page_aligned(va, "va")
        self._require_page_aligned(src_gpa, "src_gpa")
        # BUG: no in_elrange(va) validation.
        if enclave.gpt.query(va) is not None:
            raise HypercallError("va already added")
        src_hpa = self.os_ept.translate(src_gpa, write=False)
        frame = self.epcm.allocate(eid, PageState.REG, va=va)
        self.phys.copy_frame(frame, config.frame_of(src_hpa))
        # GPA chosen linearly from the ELRANGE base even for outside VAs.
        gpa = enclave.gpa_base + (va - enclave.elrange_base) \
            % enclave.elrange_size
        if enclave.ept.query(gpa) is not None:
            gpa = enclave.gpa_base + enclave.elrange_size
        enclave.gpt.map_page(va, gpa, self.config.arch.leaf_flags())
        enclave.ept.map_page(gpa, config.frame_base(frame),
                             self.config.arch.leaf_flags())
        return frame


@_register
class NoEpcmRecordMonitor(RustMonitor):
    """Maps EPC pages without recording them in the EPCM.

    "All the page mappings in the page tables of enclaves correspond to
    an entry in the HyperEnclave's EPCM list ... This rules out covert
    mappings." (Sec. 5.2) — this monitor creates exactly such covert
    mappings.
    """

    BUG = "covert-mapping-no-epcm"

    def hc_add_page(self, eid, va, src_gpa) -> int:
        """EADD that maps the page but releases its EPCM record."""
        frame = super().hc_add_page(eid, va, src_gpa)
        # BUG: bookkeeping "optimised away" — release the record but
        # keep the mapping live.
        self.epcm.release(frame, eid)
        return frame


@_register
class HugePageMonitor(RustMonitor):
    """Builds enclave page tables that use huge pages.

    The enclave invariants forbid huge pages in enclave tables
    (Sec. 5.2): a huge mapping spans EPC and non-EPC frames far too
    easily and defeats per-page EPCM accounting.
    """

    BUG = "huge-pages-in-enclave-tables"

    def hc_create(self, elrange_base, elrange_size, mbuf_va, mbuf_pa,
                  mbuf_size) -> int:
        """ECREATE that additionally installs a huge EPT mapping over the EPC."""
        eid = super().hc_create(elrange_base, elrange_size, mbuf_va,
                                mbuf_pa, mbuf_size)
        enclave = self.enclaves[eid]
        enclave.ept.allow_huge = True   # the deleted restriction
        config = self.config
        span = config.level_span(2)
        gpa = (enclave.gpa_base + enclave.elrange_size + span - 1) \
            // span * span
        # One huge EPT mapping covering a whole level-2 span of physical
        # memory starting inside the EPC (span-aligned).
        frames_per_span = span // config.page_size
        base_frame = -(-self.layout.epc_base // frames_per_span) \
            * frames_per_span
        enclave.ept.map_huge(gpa, config.frame_base(base_frame), 2,
                             self.config.arch.leaf_flags())
        return eid


@_register
class MbufOverlapMonitor(RustMonitor):
    """Allows the marshalling buffer to overlap the ELRANGE.

    Breaks "the ELRANGE and the range of marshalling buffer are
    disjoint" (Sec. 5.2): an ELRANGE VA then resolves into shared
    untrusted memory, so "secure" stores are host-visible.
    """

    BUG = "mbuf-overlaps-elrange"

    def hc_create(self, elrange_base, elrange_size, mbuf_va, mbuf_pa,
                  mbuf_size) -> int:
        """ECREATE with the mbuf/ELRANGE disjointness validation bypassed."""
        config = self.config
        self._require_page_aligned(elrange_base, "elrange_base")
        self._require_page_aligned(mbuf_va, "mbuf_va")
        self._require_page_aligned(mbuf_pa, "mbuf_pa")
        mbuf = MarshallingBuffer(va_base=mbuf_va, pa_base=mbuf_pa,
                                 size=mbuf_size)
        eid = self._next_eid
        self._next_eid += 1
        gpt = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-gpt")
        ept = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-ept")
        enclave = Enclave.__new__(Enclave)  # skip the overlap validation
        enclave.eid = eid
        enclave.elrange_base = elrange_base
        enclave.elrange_size = elrange_size
        enclave.mbuf = mbuf
        enclave.gpt = gpt
        enclave.ept = ept
        enclave.gpa_base = elrange_base
        enclave.state = EnclaveState.CREATED
        enclave.saved_context = None
        enclave.measurement = 0
        self.epcm.allocate(eid, PageState.SECS)
        for va_page, pa_page in mbuf.pages(config):
            gpt.map_page(va_page, pa_page, self.config.arch.leaf_flags())
            if ept.query(pa_page) is None:
                ept.map_page(pa_page, pa_page, self.config.arch.leaf_flags())
        self.enclaves[eid] = enclave
        return eid

    def hc_add_page(self, eid, va, src_gpa) -> int:
        """EADD tolerating VAs already claimed by the overlapping mbuf."""
        enclave = self._enclave(eid)
        if enclave.gpt.query(va) is not None:
            # overlapping mbuf page already holds this VA — skip the add
            # silently, like the buggy validation would.
            return -1
        return super().hc_add_page(eid, va, src_gpa)


@_register
class SecureMbufMonitor(RustMonitor):
    """Accepts a marshalling buffer backed by secure (EPC) memory.

    The untrusted-backing check is the only thing keeping EPC frames out
    of the shared channel; without it the buffer aliases secure memory
    into a window the host also expects to map.
    """

    BUG = "mbuf-backed-by-secure-memory"

    def hc_create(self, elrange_base, elrange_size, mbuf_va, mbuf_pa,
                  mbuf_size) -> int:
        """ECREATE with the untrusted-backing check on the mbuf deleted."""
        config = self.config
        self._require_page_aligned(elrange_base, "elrange_base")
        self._require_page_aligned(mbuf_va, "mbuf_va")
        self._require_page_aligned(mbuf_pa, "mbuf_pa")
        if elrange_size <= 0 or elrange_size % config.page_size:
            raise HypercallError("ELRANGE size must be whole pages")
        mbuf = MarshallingBuffer(va_base=mbuf_va, pa_base=mbuf_pa,
                                 size=mbuf_size)
        # BUG: no is_untrusted() validation of the backing pages.
        eid = self._next_eid
        self._next_eid += 1
        gpt = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-gpt")
        ept = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-ept")
        enclave = Enclave(eid=eid, elrange_base=elrange_base,
                          elrange_size=elrange_size, mbuf=mbuf,
                          gpt=gpt, ept=ept, gpa_base=elrange_base)
        self.epcm.allocate(eid, PageState.SECS)
        for va_page, pa_page in mbuf.pages(config):
            gpt.map_page(va_page, pa_page, self.config.arch.leaf_flags())
            if ept.query(pa_page) is None:
                ept.map_page(pa_page, pa_page, self.config.arch.leaf_flags())
        self.enclaves[eid] = enclave
        return eid


@_register
class LeakyExitMonitor(RustMonitor):
    """Forgets to restore the host context on enclave exit.

    The enclave's general registers remain live in the vCPU when the
    host resumes — a direct confidentiality leak that the register part
    of the observation function (Sec. 5.3) detects even though every
    page-table invariant still holds.
    """

    BUG = "registers-leak-on-exit"

    def hc_exit(self, eid):
        """Exit without restoring the host register context."""
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.RUNNING)
        if self.active != eid:
            raise HypercallError("exit from a non-active enclave")
        enclave.saved_context = self.vcpu.context()
        # BUG: self.vcpu.restore(self.saved_host_context) is missing.
        self.saved_host_context = None
        self.vcpu.gpt_root = None
        self.vcpu.ept_root = self.os_ept.root_frame
        self.tlb.flush_all()
        enclave.state = EnclaveState.INITIALIZED
        self.active = HOST_ID


@_register
class NoTlbFlushMonitor(RustMonitor):
    """Skips the TLB flush on enclave exit.

    Sec. 2.1: on every transition RustMonitor switches the vCPU mode
    "and also flush[es] the corresponding TLB entries".  Without the
    flush, the enclave's virtual translations survive into the host
    world: an app touching the victim's ELRANGE virtual address hits the
    stale entry and reads EPC memory straight through the cache — no
    page-table invariant is violated, only the flush discipline.
    """

    BUG = "no-tlb-flush-on-exit"

    def hc_exit(self, eid):
        """Exit without flushing the TLB."""
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.RUNNING)
        if self.active != eid:
            raise HypercallError("exit from a non-active enclave")
        enclave.saved_context = self.vcpu.context()
        self.vcpu.restore(self.saved_host_context)
        self.saved_host_context = None
        self.vcpu.gpt_root = None
        self.vcpu.ept_root = self.os_ept.root_frame
        # BUG: self.tlb.flush_all() is missing.
        enclave.state = EnclaveState.INITIALIZED
        self.active = HOST_ID


@_register
class NoScrubMonitor(RustMonitor):
    """Destroys enclaves without scrubbing their EPC pages.

    The next enclave to receive a recycled EPC frame reads the previous
    owner's plaintext — caught by the noninterference checker on
    create-destroy-create traces, invisible to the static invariants.
    """

    BUG = "no-scrub-on-destroy"

    def hc_destroy(self, eid):
        """Destroy without scrubbing the enclave's EPC pages."""
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED,
                              EnclaveState.INITIALIZED)
        # BUG: no phys.zero_frame() over the owned EPC pages.
        self.epcm.release_all(eid)
        for frame in enclave.gpt.table_frames():
            self.phys.zero_frame(frame)
            self.pt_allocator.dealloc(frame)
        for frame in enclave.ept.table_frames():
            self.phys.zero_frame(frame)
            self.pt_allocator.dealloc(frame)
        enclave.state = EnclaveState.DESTROYED
        del self.enclaves[eid]


@_register
class NonTransactionalMonitor(RustMonitor):
    """Runs every hypercall body without the snapshot-rollback wrapper.

    This is the monitor as it was before crash consistency: correct on
    every *successful* hypercall (all structural invariants hold, all
    refinement checks pass), but a failure halfway through ``hc_add_page``
    strands an EPCM entry nothing points at, or a GPT mapping with no
    EPT translation behind it.  No single-state invariant sweep over
    successful traces can see the difference — only the crash-step fault
    campaign does, which is what makes the campaign's all-green run on
    the real monitor evidence rather than vacuity.
    """

    BUG = "no-rollback-on-fault"

    # The undecorated bodies, reachable via functools.wraps.
    hc_create = RustMonitor.hc_create.__wrapped__
    hc_add_page = RustMonitor.hc_add_page.__wrapped__
    hc_aug_page = RustMonitor.hc_aug_page.__wrapped__
    hc_remove_page = RustMonitor.hc_remove_page.__wrapped__
    hc_trim_page = RustMonitor.hc_trim_page.__wrapped__
    hc_init = RustMonitor.hc_init.__wrapped__
    hc_enter = RustMonitor.hc_enter.__wrapped__
    hc_exit = RustMonitor.hc_exit.__wrapped__
    hc_destroy = RustMonitor.hc_destroy.__wrapped__


@_register
class MissingLockMonitor(RustMonitor):
    """Runs every hypercall with no locking discipline at all.

    The hypercall *bodies* are unchanged — only the strict-2PL
    pre-acquisition is dropped, which is exactly the bug a sequential
    test suite can never see: every single-vCPU execution is identical
    to the correct monitor's.  Under the interleaving explorer the
    rule-3 mutation guards convict it on the very first schedule that
    runs two lifecycle hypercalls on different vCPUs (unlocked
    mutations of the EPCM, the frame pool, and the enclave directory),
    and deeper schedules show the downstream damage those races cause.
    """

    BUG = "no-locking-discipline"

    def _plan_locks(self, *names):
        """BUG: acquire nothing; every mutation below runs unlocked."""


@_register
class NoShootdownMonitor(RustMonitor):
    """Skips the remote TLB invalidations when unmapping live pages.

    The tempting "optimisation": IPI round-trips are expensive, and the
    *local* flush keeps the calling vCPU correct, so single-core tests
    all pass.  But ``hc_trim_page`` on a live enclave races enclave
    execution on other vCPUs by design — after the trim releases the
    EPC frame, any other core that entered the enclave still holds the
    dead translation in its TLB and reads a frame the EPCM no longer
    accounts to the enclave.  The interleaving campaign's
    stale-translation detector convicts exactly that window.
    """

    BUG = "no-tlb-shootdown"

    def _tlb_shootdown(self):
        """BUG: flush only the calling vCPU's TLB; no IPIs are sent."""
        self.cpus[self.current_vid].tlb.flush_all()
