"""The deterministic, seed-driven fault-injection plane.

A :class:`FaultPlane` owns a set of *armed* faults keyed by named
injection sites.  Instrumented code in :mod:`repro.hyperenclave`
declares sites by calling the module-level hooks below — which are
no-ops (one ``is None`` test) unless a plane is installed, so the
production paths pay nothing:

* ``crash_point(site, label)`` — declared between the mutation steps of
  every hypercall (``"hc.add_page"``, ...); an armed plane raises
  :class:`~repro.errors.FaultInjected`, modelling a crash at exactly
  that step.
* ``allocation_gate(site, exhaust)`` — declared at the top of every
  allocator (``"frames.alloc"``, ``"epcm.allocate"``); an armed plane
  either raises ``FaultInjected`` or, when armed as ``EXHAUST``, the
  allocator's own typed exhaustion error.
* ``filter_write(paddr, value)`` — threaded through
  ``PhysMemory.write_word``; an armed plane raises (``"phys.write"``, a
  write fault) or silently flips a seed-chosen bit of the value
  (``"phys.flip"``, modelling DRAM corruption).

Arming is by *hit index*: ``plane.arm("frames.alloc", index=2)`` fires
on the third time the site is reached.  A plane built with
``record_only=True`` never fires but still counts hits, which is how
the campaign driver enumerates the injectable steps of a hypercall
before sweeping them.  Everything derives from the integer ``seed``;
two planes with equal seeds and arms behave identically, which the
crash-step noninterference campaign relies on.
"""

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FaultInjected
from repro.obs import trace as _trace

# Arm kinds.
RAISE = "raise"      # raise FaultInjected at the site
EXHAUST = "exhaust"  # raise the site's own typed resource error
FLIP = "flip"        # corrupt the value in flight (write sites only)

# The well-known non-hypercall sites (hypercall sites are "hc.<name>").
SITE_FRAME_ALLOC = "frames.alloc"
SITE_EPCM_ALLOC = "epcm.allocate"
SITE_PHYS_WRITE = "phys.write"
SITE_PHYS_FLIP = "phys.flip"


@dataclass(frozen=True)
class FiredFault:
    """One injection that actually happened."""

    site: str
    hit: int
    kind: str
    label: Optional[str] = None


@dataclass
class _Arm:
    index: int
    kind: str
    flip_bit: int = 0


class FaultPlane:
    """Deterministic fault injector: seed + arms -> reproducible faults."""

    def __init__(self, seed=0, record_only=False):
        self.seed = seed
        self.record_only = record_only
        self._arms: Dict[str, List[_Arm]] = {}
        self.counts: Dict[str, int] = {}
        self.hit_labels: Dict[str, List[Optional[str]]] = {}
        self.fired: List[FiredFault] = []
        self._suspended = 0

    # -- arming -------------------------------------------------------------------

    def arm(self, site, index=0, kind=RAISE):
        """Fire ``kind`` on the ``index``-th hit of ``site`` (0-based)."""
        if kind not in (RAISE, EXHAUST, FLIP):
            raise ValueError(f"unknown fault kind {kind!r}")
        flip_bit = random.Random(
            f"{self.seed}:{site}:{index}").randrange(64)
        self._arms.setdefault(site, []).append(
            _Arm(index=index, kind=kind, flip_bit=flip_bit))
        return self

    def disarm_all(self):
        self._arms.clear()

    def reset_counts(self):
        """Forget hit counters (arms stay) — one sweep run per reset."""
        self.counts.clear()
        self.hit_labels.clear()

    # -- the hit protocol ------------------------------------------------------------

    def _record(self, site, label):
        count = self.counts.get(site, 0)
        self.counts[site] = count + 1
        self.hit_labels.setdefault(site, []).append(label)
        return count

    def hit(self, site, label=None) -> Optional[_Arm]:
        """Register one hit; raise or return the matching non-raising arm."""
        if self._suspended:
            return None
        count = self._record(site, label)
        for arm in self._arms.get(site, ()):
            if arm.index == count:
                self.fired.append(FiredFault(site, count, arm.kind, label))
                _trace.event("fault.fired", site=site, hit=count,
                             kind=arm.kind)
                if arm.kind == RAISE and not self.record_only:
                    raise FaultInjected(site, hit=count, label=label)
                return arm
        return None

    def filter_value(self, site, value, label=None):
        """A hit that carries a value (write sites): may flip one bit."""
        arm = self.hit(site, label=label)
        if arm is not None and arm.kind == FLIP and not self.record_only:
            return value ^ (1 << arm.flip_bit)
        return value

    @contextmanager
    def suspend(self):
        """No injection inside the block (used during rollback)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def __repr__(self):
        return (f"FaultPlane(seed={self.seed}, arms="
                f"{ {s: [(a.index, a.kind) for a in arms] for s, arms in self._arms.items()} }, "
                f"fired={len(self.fired)})")


# ---------------------------------------------------------------------------
# The installed plane (module-global so instrumented code needs no plumbing)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlane] = None


def active_plane() -> Optional[FaultPlane]:
    return _ACTIVE


@contextmanager
def installed(plane: FaultPlane):
    """Make ``plane`` the active plane for the dynamic extent."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plane
    try:
        yield plane
    finally:
        _ACTIVE = previous


@contextmanager
def suspended():
    """Suppress the active plane (if any) for the dynamic extent."""
    plane = _ACTIVE
    if plane is None:
        yield
        return
    with plane.suspend():
        yield


# -- the hooks instrumented code calls (cheap when no plane is installed) -----


def crash_point(site, label=None):
    """Declare an abort-at-step-k site (between hypercall mutations)."""
    plane = _ACTIVE
    if plane is not None:
        plane.hit(site, label=label)


def allocation_gate(site, exhaust=None):
    """Declare an allocator entry point; may raise injected exhaustion."""
    plane = _ACTIVE
    if plane is None:
        return
    arm = plane.hit(site)
    if arm is not None and arm.kind == EXHAUST and not plane.record_only:
        raise exhaust() if exhaust is not None else FaultInjected(site)


def filter_write(paddr, value):
    """Declare a physical-memory write; may fault or corrupt the value."""
    plane = _ACTIVE
    if plane is None:
        return value
    plane.hit(SITE_PHYS_WRITE, label=f"paddr={paddr:#x}")
    return plane.filter_value(SITE_PHYS_FLIP, value,
                              label=f"paddr={paddr:#x}")
