"""The metrics registry: named counters, gauges, and histograms.

Before this module, every subsystem kept its own ad-hoc stats dict
(the symbolic solver's ``_STATS``, the per-process memo counters) with
its own snapshot/delta/merge helpers — and the parallel fabric had to
know about each one separately to aggregate worker measurements.  The
registry makes the pattern first-class:

* **counters** are monotonically increasing ints (``inc``);
* **gauges** are last-written floats (``set_gauge``);
* **histograms** are streaming summaries — count / total / min / max —
  cheap enough for hot paths and still mergeable (``observe``);
* a **counter group** is a plain dict registered under a prefix, so an
  existing hot loop (``_STATS["models_enumerated"] += 1``) keeps its
  exact shape and cost while the registry gains visibility of it.

The operation the parallel fabric needs is :meth:`MetricsRegistry.merge`:
a worker process snapshots its registry around a shard, ships the
:meth:`snapshot` (plain dicts, picklable) back with the results, and the
parent merges it — counters add, histograms combine, gauges take the
maximum (the only order-independent choice, so merging is deterministic
regardless of shard completion order).

One process-wide :data:`REGISTRY` serves the whole checking stack; unit
tests build private instances.
"""

from typing import Dict, Iterable, Optional

_EMPTY_HIST = {"count": 0, "total": 0.0, "min": None, "max": None}


class MetricsRegistry:
    """Named counters / gauges / histograms with snapshot + merge."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict] = {}
        self._groups: Dict[str, Dict[str, int]] = {}

    # -- writing ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; returns the new value."""
        value = self.counters.get(name, 0) + amount
        self.counters[name] = value
        return value

    def set_gauge(self, name: str, value: float):
        self.gauges[name] = value

    def observe(self, name: str, value: float):
        """Record one sample of histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = dict(_EMPTY_HIST)
            self.histograms[name] = hist
        hist["count"] += 1
        hist["total"] += value
        hist["min"] = value if hist["min"] is None \
            else min(hist["min"], value)
        hist["max"] = value if hist["max"] is None \
            else max(hist["max"], value)

    def counter_group(self, prefix: str,
                      keys: Iterable[str]) -> Dict[str, int]:
        """A plain zeroed dict the registry snapshots as ``prefix.key``.

        The returned dict is the live storage: hot loops mutate it
        directly with no indirection, which is what lets the solver's
        ``_STATS`` move into the registry without touching its inner
        loops.  Calling again with the same prefix returns the same
        dict (extended with any new keys).
        """
        group = self._groups.setdefault(prefix, {})
        for key in keys:
            group.setdefault(key, 0)
        return group

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as plain nested dicts (picklable, JSON-able);
        counter groups appear flattened as ``prefix.key`` counters."""
        counters = dict(self.counters)
        for prefix, group in self._groups.items():
            for key, value in group.items():
                # *Add* to any same-named plain counter rather than
                # overwrite it: a forked worker inherits the parent's
                # merged totals as plain counters, then registers the
                # group (zeroed) on first use — overwriting would make
                # the worker's shard delta come out as
                # ``group - inherited`` and corrupt the parent's totals
                # on merge.
                name = f"{prefix}.{key}"
                counters[name] = counters.get(name, 0) + value
        return {"counters": counters,
                "gauges": dict(self.gauges),
                "histograms": {name: dict(hist)
                               for name, hist in self.histograms.items()}}

    def delta(self, before: Dict[str, Dict],
              after: Optional[Dict[str, Dict]] = None) -> Dict[str, Dict]:
        """Counter-wise ``after - before`` over two snapshots.

        Gauges and histogram extrema are not subtractable; the delta
        keeps ``after``'s gauges and subtracts histogram counts/totals.
        """
        if after is None:
            after = self.snapshot()
        counters = {name: value - before["counters"].get(name, 0)
                    for name, value in after["counters"].items()}
        histograms = {}
        for name, hist in after["histograms"].items():
            base = before["histograms"].get(name, _EMPTY_HIST)
            histograms[name] = {
                "count": hist["count"] - base["count"],
                "total": hist["total"] - base["total"],
                "min": hist["min"], "max": hist["max"]}
        return {"counters": counters, "gauges": dict(after["gauges"]),
                "histograms": histograms}

    # -- merging (the process-aggregation operation) ------------------------

    def merge(self, snapshot: Dict[str, Dict]):
        """Fold a worker snapshot (or delta) into this registry.

        Counters add — ``prefix.key`` names route back into their
        counter group when one is registered, so the solver's live dict
        sees worker work too.  Histograms combine; gauges keep the
        maximum, the only merge that cannot depend on arrival order.
        """
        for name, value in snapshot.get("counters", {}).items():
            prefix, dot, key = name.rpartition(".")
            group = self._groups.get(prefix) if dot else None
            if group is not None and key in group:
                group[key] += value
            else:
                self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None \
                else max(current, value)
        for name, hist in snapshot.get("histograms", {}).items():
            mine = self.histograms.setdefault(name, dict(_EMPTY_HIST))
            mine["count"] += hist["count"]
            mine["total"] += hist["total"]
            for side, pick in (("min", min), ("max", max)):
                if hist[side] is not None:
                    mine[side] = hist[side] if mine[side] is None \
                        else pick(mine[side], hist[side])

    def reset(self):
        """Zero every metric (counter groups keep their identity)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        for group in self._groups.values():
            for key in group:
                group[key] = 0


#: The process-wide registry the checking stack writes to.
REGISTRY = MetricsRegistry()
