"""The low (flat) specification of the paging functions.

"In principle, we could end up with a single specification that views
the page tables as a unstructured flat array of frames." (Sec. 4.1)

This module *is* that specification: pure functions over a
:class:`FlatPtState` — an immutable value holding the page-table pool as
a word map plus the allocation bitmap.  It mirrors the imperative
implementation in :mod:`repro.hyperenclave.paging` operation-for-
operation, but functionally: every function returns a new state.

The MIR code proofs check code against *this* spec (code -> low spec),
and :mod:`repro.spec.relation` relates it to the tree view (low spec ->
high spec), reproducing the paper's two-step proof structure (Sec. 4.3).
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ccal.zmap import ZMap
from repro.errors import PagingError, SpecError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import WORD_BYTES


@dataclass(frozen=True)
class FlatPtState:
    """Immutable flat view of the page-table pool.

    ``words`` — ZMap from word address (byte addr / 8) to 64-bit value,
    restricted to the pool region; ``bitmap`` — allocation state per pool
    frame; ``pool_base``/``pool_size`` — the pool's frame range.
    """

    config: object
    pool_base: int
    pool_size: int
    words: ZMap
    bitmap: Tuple[bool, ...]

    def in_pool(self, frame):
        return self.pool_base <= frame < self.pool_base + self.pool_size

    def frame_allocated(self, frame):
        return self.in_pool(frame) and self.bitmap[frame - self.pool_base]


def flat_initial_state(config, pool_base, pool_size) -> FlatPtState:
    return FlatPtState(config=config, pool_base=pool_base,
                       pool_size=pool_size, words=ZMap(default=0),
                       bitmap=(False,) * pool_size)


# -- layer 1: frame allocation ------------------------------------------------


def flat_alloc_frame(state) -> Tuple[int, FlatPtState]:
    """First-fit allocation plus zeroing, like the implementation."""
    for offset, used in enumerate(state.bitmap):
        if not used:
            frame = state.pool_base + offset
            bitmap = state.bitmap[:offset] + (True,) \
                + state.bitmap[offset + 1:]
            words = state.words
            base_word = state.config.frame_base(frame) // WORD_BYTES
            for word_offset in range(state.config.words_per_page):
                words = words.unset(base_word + word_offset)
            return frame, FlatPtState(state.config, state.pool_base,
                                      state.pool_size, words, bitmap)
    raise PagingError("flat spec: page-table pool exhausted")


# -- layer 3: entry IO ----------------------------------------------------------


def _entry_word(state, table_frame, index):
    if not state.in_pool(table_frame):
        raise SpecError(
            f"flat spec: table frame {table_frame} escapes the monitor's "
            f"frame area [{state.pool_base}, "
            f"{state.pool_base + state.pool_size})")
    return (state.config.frame_base(table_frame)
            + index * WORD_BYTES) // WORD_BYTES


def flat_read_entry(state, table_frame, index) -> int:
    return state.words.get(_entry_word(state, table_frame, index))


def flat_write_entry(state, table_frame, index, value) -> FlatPtState:
    """Functionally write one page-table entry word."""
    words = state.words.set(_entry_word(state, table_frame, index),
                            value & ((1 << 64) - 1))
    return FlatPtState(state.config, state.pool_base, state.pool_size,
                       words, state.bitmap)


# -- layer 6: table creation -------------------------------------------------------


def flat_new_table(state) -> Tuple[int, FlatPtState]:
    """Allocate a zeroed table frame."""
    return flat_alloc_frame(state)


# -- layers 4-5: walking --------------------------------------------------------------


def flat_walk(state, root_frame, va):
    """``(steps, terminal, huge_level)`` where steps are
    ``(level, frame, index, entry)`` — the flat-view walk."""
    config = state.config
    spec = config.arch
    va = config.canonical_va(va)
    steps = []
    frame = root_frame
    for level in range(config.levels, 0, -1):
        index = config.entry_index(va, level)
        entry = flat_read_entry(state, frame, index)
        steps.append((level, frame, index, entry))
        if not spec.is_present(entry):
            return steps, None, 1
        if level == 1:
            if not spec.is_leaf_valid(entry):
                return steps, None, 1
            return steps, entry, 1
        if spec.is_block(entry, level):
            return steps, entry, level
        frame = pte.pte_frame(entry, config)
    raise SpecError("flat walk fell off the hierarchy")


# -- layer 7: mapping ------------------------------------------------------------------


def flat_map_page(state, root_frame, va, paddr, flags) -> FlatPtState:
    """Install va -> paddr, creating intermediate tables on demand."""
    config = state.config
    va = config.canonical_va(va)
    if config.page_offset(va) or config.page_offset(paddr):
        raise PagingError("flat spec: unaligned mapping")
    spec = config.arch
    frame = root_frame
    for level in range(config.levels, 1, -1):
        index = config.entry_index(va, level)
        entry = flat_read_entry(state, frame, index)
        if spec.is_present(entry):
            if spec.is_block(entry, level):
                raise PagingError("flat spec: huge page blocks mapping")
            frame = pte.pte_frame(entry, config)
            continue
        new_frame, state = flat_new_table(state)
        new_entry = pte.pte_new(config.frame_base(new_frame),
                                spec.table_flags(), config)
        state = flat_write_entry(state, frame, index, new_entry)
        frame = new_frame
    index = config.entry_index(va, 1)
    if spec.is_present(flat_read_entry(state, frame, index)):
        raise PagingError("flat spec: va already mapped")
    return flat_write_entry(state, frame, index,
                            pte.pte_new(paddr, flags, config))


def flat_unmap(state, root_frame, va) -> FlatPtState:
    """Clear the terminal entry covering va."""
    steps, terminal, _ = flat_walk(state, root_frame, va)
    if terminal is None:
        raise PagingError("flat spec: va not mapped")
    level, frame, index, _ = steps[-1]
    return flat_write_entry(state, frame, index, pte.pte_empty())


# -- layer 8: queries -------------------------------------------------------------------


def flat_query(state, root_frame, va) -> Optional[Tuple[int, int]]:
    """(paddr, flags) for va's terminal entry, or None."""
    _, terminal, _ = flat_walk(state, root_frame, va)
    if terminal is None:
        return None
    return (pte.pte_addr(terminal, state.config),
            pte.pte_flags(terminal, state.config))
