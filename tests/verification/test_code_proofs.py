"""The code-proof harness: the corpus verifies, planted bugs do not."""

import pytest

from repro.errors import MirAssertError
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.constants import TINY
from repro.mir.ast import BinOp
from repro.mir.value import mk_u64
from repro.verification import (
    CorpusReport, default_domains, low_spec_for, pure_function_names,
    pure_reference, sample_states, stateful_function_names,
    verify_corpus, verify_pure_function, verify_stateful_function,
)

PAGE = TINY.page_size


class TestCorpusVerifies:
    def test_full_corpus_green(self, model):
        report = verify_corpus(model, cosim_samples=8)
        assert report.ok, report.summary()
        assert len(report.verdicts) == 49

    def test_per_layer_grouping(self, model):
        report = verify_corpus(model, cosim_samples=4)
        by_layer = report.by_layer()
        assert len(by_layer) == 14  # every layer except TrustedLayer
        assert "TrustedLayer" not in by_layer

    def test_function_counts_match_paper_scale(self, model):
        """49 verified functions in 15 layers (Sec. 6)."""
        assert len(model.program.functions) == 49
        assert len(model.stack) == 15


class TestPureProofs:
    @pytest.mark.parametrize("name", [
        "pte_new", "pte_addr", "pte_is_huge", "entry_index",
        "align_page_up", "elrange_contains", "ranges_overlap",
        "pa_in_epc",
    ])
    def test_selected_functions(self, model, name):
        verdict = verify_pure_function(model, name)
        assert verdict.ok, verdict.failures
        assert verdict.checked > 0

    def test_pure_name_list_complete(self, model):
        names = pure_function_names(model.config, model.layout)
        assert len(names) == 26
        assert set(names) & set(stateful_function_names()) == set()

    def test_planted_pure_bug_caught(self, model):
        """Flip one mask bit in pte_addr and the checker must notice."""
        from repro.mir.builder import ProgramBuilder
        pb = ProgramBuilder()
        fb = pb.function("pte_addr", ["e"], layer="PteOps")
        fb.binop("_0", BinOp.BITAND, "e",
                 model.config.addr_mask() | 1)  # PRESENT bit leaks in
        fb.ret()
        fb.finish()
        from repro.symbolic import check_equivalence
        reference = pure_reference("pte_addr", model.config, model.layout)
        mismatches, _ = check_equivalence(
            pb.build(), "pte_addr", reference,
            default_domains("pte_addr", model.config))
        assert mismatches


class TestStatefulProofs:
    @pytest.mark.parametrize("name", [
        "alloc_frame", "read_entry", "write_entry", "walk_terminal",
        "map_page", "unmap_page", "query", "translate_page",
        "epcm_alloc_page", "add_epc_page", "hc_add_page_checked",
        "as_map", "as_query",
    ])
    def test_selected_functions(self, model, name):
        verdict = verify_stateful_function(model, name, seed=1, count=12)
        assert verdict.ok, verdict.failures

    def test_samples_are_deterministic(self, model):
        a = sample_states(model, "map_page", seed=3, count=4)
        b = sample_states(model, "map_page", seed=3, count=4)
        assert [args for args, _ in a] == [args for args, _ in b]

    def test_planted_stateful_bug_caught(self, model):
        """A map_page that forgets the last-level write diverges."""
        import copy
        from repro.ccal.refinement import CoSimChecker, mir_impl
        from repro.mir.builder import ProgramBuilder
        broken_program = copy.copy(model.program)
        broken_program.functions = dict(model.program.functions)
        pb = ProgramBuilder()
        fb = pb.function("map_page", ["root", "va", "pa", "flags"],
                         layer="PtMap")
        fb.ret()  # does absolutely nothing
        broken_program.functions["map_page"] = fb.finish()
        impl = mir_impl(broken_program, "map_page", trusted=model.trusted)
        checker = CoSimChecker("map_page", impl,
                               low_spec_for(model, "map_page"))
        report = checker.check(sample_states(model, "map_page", seed=0,
                                             count=10))
        assert not report.ok

    def test_panics_match_spec_preconditions(self, model):
        """Inputs outside the spec's precondition are exactly the panic
        cases of the MIR code: double-map panics."""
        from repro.mir.value import mk_u64
        interp = model.make_interpreter()
        root = interp.call("alloc_frame").value
        args = [root, mk_u64(16 * PAGE), mk_u64(2 * PAGE), mk_u64(7)]
        interp.call("map_page", args)
        with pytest.raises(MirAssertError, match="already mapped"):
            interp.call("map_page", args)

    def test_unaligned_map_panics(self, model):
        interp = model.make_interpreter()
        root = interp.call("alloc_frame").value
        with pytest.raises(MirAssertError, match="unaligned"):
            interp.call("map_page", [root, mk_u64(5), mk_u64(0),
                                     mk_u64(7)])

    def test_unmap_missing_panics(self, model):
        interp = model.make_interpreter()
        root = interp.call("alloc_frame").value
        with pytest.raises(MirAssertError, match="not mapped"):
            interp.call("unmap_page", [root, mk_u64(0)])


class TestEndToEndMirCorpus:
    def test_mir_map_agrees_with_python_implementation(self, model):
        """Three-way agreement: MIR corpus == flat spec == the executable
        PageTable implementation, on a shared scenario."""
        from repro.hyperenclave.frames import BitmapFrameAllocator
        from repro.hyperenclave.hardware import PhysMemory
        from repro.hyperenclave.paging import PageTable
        from repro.hyperenclave import pte as pteops

        interp = model.make_interpreter()
        root_value = interp.call("alloc_frame").value

        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(
            range(model.pool_base, model.pool_base + model.pool_size))
        table = PageTable(TINY, phys, allocator)
        assert table.root_frame == root_value.value

        scenario = [(0, 3), (1, 4), (17, 5), (63, 6)]
        for page_no, frame in scenario:
            va, pa = page_no * PAGE, frame * PAGE
            interp.call("map_page",
                        [root_value, mk_u64(va), mk_u64(pa), mk_u64(7)])
            table.map_page(va, pa, 7)
        # Identical backing memory word-for-word:
        from repro.hyperenclave.constants import WORD_BYTES
        for frame in range(model.pool_base,
                           model.pool_base + model.pool_size):
            impl_words = phys.frame_words(frame)
            mir_words = tuple(
                interp.absstate.get("pt_words").get(
                    TINY.frame_base(frame) // WORD_BYTES + offset)
                for offset in range(TINY.words_per_page))
            assert impl_words == mir_words, f"frame {frame} differs"

    def test_as_new_verdict(self, model):
        from repro.verification.code_proofs import _verify_as_new
        verdict = _verify_as_new(model)
        assert verdict.ok
