"""Fault-tolerant execution: the sharded executor that survives its pool.

:class:`ResilientExecutor` keeps the
:class:`~repro.engine.executor.ShardedExecutor` contract — stable
sharding, merge by unit index, byte-identical results on the happy
path — and adds the failure half of the story:

* **dead-worker detection + respawn** — a worker killed mid-shard
  breaks the process pool; the executor kills and discards the broken
  pool, forks a fresh one, and resubmits every unfinished shard;
* **per-shard wait budget** — ``shard_timeout`` bounds how long the
  merge loop waits on any one shard before treating it as hung
  (a hung worker cannot be cancelled, only killed with its pool);
* **bounded retry with backoff + deterministic jitter** — a blamed
  shard retries up to ``max_attempts`` times, sleeping
  ``backoff * 2^attempt`` scaled by a blake2b-derived jitter fraction
  (deterministic: no wall-clock or RNG in the decision path);
* **poison-shard quarantine** — a shard still failing at the attempt
  cap is recorded as a typed :class:`~repro.errors.ShardQuarantined`
  result in each of its unit slots instead of sinking the campaign.

Blame is only assigned when it is unambiguous: a pool break during a
*parallel* round names no culprit (any worker may have died), so the
executor degrades to one-shard-at-a-time isolation, where a break or
timeout convicts exactly the running shard.  A task-level exception
(the pool survives, the future carries the error) is attributable in
any mode.  After a successful isolated round the executor returns to
parallel submission.

Retries, respawns, and quarantines are counted on the metrics registry
(``service.shard_retries`` / ``service.worker_respawns`` /
``service.shards_quarantined``) and emitted as trace events, so a
recovered campaign's audit trail shows exactly what it survived.
"""

import hashlib
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from repro.engine.executor import (
    ShardedExecutor,
    _adopt_unit_traces,
    stable_shard,
)
from repro.engine.memo import merge_stats
from repro.errors import ShardQuarantined
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY


def backoff_delay(fn_path: str, shard: int, attempt: int, *,
                  base: float, cap: float) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter fraction comes from blake2b of the (function, shard,
    attempt) triple — different shards desynchronise their retries, yet
    the schedule is a pure function of the inputs (replayable, and no
    seeded RNG to thread through the executor).
    """
    digest = hashlib.blake2b(
        f"{fn_path}\x1f{shard}\x1f{attempt}".encode(),
        digest_size=8).digest()
    fraction = int.from_bytes(digest, "big") / 2 ** 64
    return min(base * (2 ** max(attempt - 1, 0)), cap) * (0.5 + fraction)


class ResilientExecutor(ShardedExecutor):
    """A :class:`ShardedExecutor` with retries, respawn, and quarantine."""

    def __init__(self, workers: Optional[int] = None, *,
                 shard_timeout: Optional[float] = None,
                 max_attempts: int = 3,
                 backoff: float = 0.05,
                 backoff_cap: float = 2.0,
                 sleep=time.sleep):
        super().__init__(workers)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.shard_timeout = shard_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep

    # -- the resilient fan-out ----------------------------------------------

    def map(self, fn_path: str, units: Sequence,
            *, keys: Optional[Sequence[str]] = None) -> List:
        """Base-contract ``map`` that outlives worker deaths.

        Unit slots of a quarantined shard hold
        :class:`~repro.errors.ShardQuarantined` instances; every other
        slot is byte-identical to the plain executor's merge.
        """
        units = list(units)
        if not units:
            return []
        if keys is None:
            keys = [str(index) for index in range(len(units))]
        if len(keys) != len(units):
            raise ValueError("one shard key per unit required")
        if self.workers <= 1:
            # In-process: no pool to lose.  The degenerate fabric is
            # the sequential engine, failures included.
            return super().map(fn_path, units, keys=keys)

        # Same slot-stable partition as the base executor: a key's
        # shard number is its pinned worker process.
        shards = [[] for _ in range(self.workers)]
        for index, (unit, key) in enumerate(zip(units, keys)):
            shards[stable_shard(f"{fn_path}\x1f{key}",
                                self.workers)].append((index, unit))
        pending = {number: shard for number, shard in enumerate(shards)
                   if shard}
        attempts = {number: 0 for number in pending}
        merged = [None] * len(units)
        unit_traces: List = []
        isolating = False

        with _trace.span("executor.resilient-map", fn=fn_path,
                         units=len(units), shards=len(pending)):
            while pending:
                round_shards = sorted(pending)
                if isolating:
                    round_shards = round_shards[:1]
                submitted = [(number,
                              self._submit_shard(number, fn_path,
                                                 pending[number]))
                             for number in round_shards]
                failure = None       # (shard number, cause, pool dead)
                try:
                    for number, future in submitted:
                        try:
                            payload = future.result(
                                timeout=self.shard_timeout)
                        except FutureTimeout:
                            failure = (number,
                                       f"no result within the "
                                       f"{self.shard_timeout}s shard "
                                       f"wait budget", True)
                            break
                        except BrokenProcessPool as exc:
                            failure = (number,
                                       f"worker died mid-shard: {exc}",
                                       True)
                            break
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:   # task-level failure
                            failure = (number,
                                       f"{type(exc).__name__}: {exc}",
                                       False)
                            break
                        results, stats, metrics, traces, journal = payload
                        merge_stats(self.stats, stats)
                        REGISTRY.merge(metrics)
                        self.memo_journal.extend(journal)
                        unit_traces.extend(traces)
                        for index, value in results:
                            merged[index] = value
                        del pending[number]
                except KeyboardInterrupt:
                    self.terminate()
                    raise
                if failure is None:
                    isolating = False
                    continue
                number, cause, pool_dead = failure
                if pool_dead:
                    # Kill whatever is left of the pool and respawn on
                    # the next loop; completed-but-unread shards simply
                    # re-run (units are pure functions of their seeds).
                    self.terminate()
                    REGISTRY.inc("service.worker_respawns")
                    _trace.event("service.respawn", fn=fn_path,
                                 shard=number, cause=cause)
                if pool_dead and not isolating:
                    # A parallel-round pool break names no culprit;
                    # isolate before assigning blame.
                    isolating = True
                    continue
                attempts[number] += 1
                if attempts[number] >= self.max_attempts:
                    quarantined = ShardQuarantined(number,
                                                   attempts[number], cause)
                    for index, _unit in pending.pop(number):
                        merged[index] = quarantined
                    REGISTRY.inc("service.shards_quarantined")
                    _trace.event("service.quarantine", fn=fn_path,
                                 shard=number,
                                 attempts=attempts[number], cause=cause)
                    isolating = False
                    continue
                REGISTRY.inc("service.shard_retries")
                delay = backoff_delay(fn_path, number, attempts[number],
                                      base=self.backoff,
                                      cap=self.backoff_cap)
                _trace.event("service.retry", fn=fn_path, shard=number,
                             attempt=attempts[number], cause=cause,
                             delay=round(delay, 4))
                self._sleep(delay)
            _adopt_unit_traces(unit_traces)
        return merged
