"""Spec synthesis (the Sec. 7 / Spoq direction)."""

import pytest

from repro.errors import SpecError
from repro.mir.value import mk_u64
from repro.verification import default_domains, pure_reference
from repro.verification.autospec import (
    check_synthesized_spec, synthesize_spec,
)


class TestSynthesis:
    def test_branchless_function_yields_one_clause(self, model):
        spec = synthesize_spec(model.program, "pte_addr",
                               default_domains("pte_addr", model.config))
        assert len(spec) == 1
        assert spec.clauses[0].guards == ()

    def test_branching_function_yields_guarded_clauses(self, model):
        domains = default_domains("elrange_contains", model.config)
        spec = synthesize_spec(model.program, "elrange_contains", domains)
        assert len(spec) >= 2  # inside / below / above

    def test_infeasible_paths_pruned(self, model):
        domains = default_domains("entry_index", model.config)
        spec = synthesize_spec(model.program, "entry_index", domains)
        # The out-of-range panic arm is unreachable within level 1..4.
        assert len(spec) == model.config.levels

    def test_pretty_form_is_readable(self, model):
        domains = default_domains("pte_is_present", model.config)
        spec = synthesize_spec(model.program, "pte_is_present", domains)
        text = spec.pretty()
        assert text.startswith("spec pte_is_present(e) :=")
        assert "band" in text

    def test_evaluation_dispatches_on_guards(self, model):
        domains = default_domains("elrange_contains", model.config)
        spec = synthesize_spec(model.program, "elrange_contains", domains)
        inside = spec.evaluate(mk_u64(0x1000), mk_u64(0x400),
                               mk_u64(0x1200))
        outside = spec.evaluate(mk_u64(0x1000), mk_u64(0x400),
                                mk_u64(0x2000))
        assert inside.value is True
        assert outside.value is False

    def test_uncovered_input_raises(self, model):
        domains = default_domains("level_span", model.config)
        spec = synthesize_spec(model.program, "level_span", domains)
        with pytest.raises(SpecError, match="no clause"):
            spec.evaluate(mk_u64(99))  # pruned (infeasible) arm


class TestSynthesizedSpecsMatchReferences:
    @pytest.mark.parametrize("name", [
        "pte_new", "pte_addr", "pte_flags", "pte_is_present",
        "pte_is_huge", "pte_is_unused", "align_page_down",
        "align_page_up", "is_page_aligned", "page_offset_of",
        "elrange_contains", "mbuf_contains", "elrange_gpa_of",
        "ranges_overlap", "pa_in_pool", "pa_in_epc", "entry_index",
        "level_span",
    ])
    def test_generated_spec_equals_handwritten_reference(self, model,
                                                         name):
        """The Spoq check: the auto-derived spec agrees with the
        independently written reference on the whole bounded domain."""
        domains = default_domains(name, model.config)
        spec = synthesize_spec(model.program, name, domains)
        reference = pure_reference(name, model.config, model.layout)
        mismatches, examined = check_synthesized_spec(spec, reference,
                                                      domains)
        assert mismatches == []
        assert examined > 0

    def test_synthesis_exposes_a_planted_bug(self, model):
        """Synthesize from buggy code, check against the true reference:
        the generated spec *faithfully shows the bug*, and the check
        localises it."""
        from repro.mir.ast import BinOp
        from repro.mir.builder import ProgramBuilder
        pb = ProgramBuilder()
        fb = pb.function("is_page_aligned", ["addr"], layer="PtLevel")
        fb.binop("_1", BinOp.BITAND, "addr",
                 model.config.page_size - 2)  # off-by-one mask
        fb.binop("_0", BinOp.EQ, "_1", 0)
        fb.ret()
        fb.finish()
        domains = default_domains("is_page_aligned", model.config)
        spec = synthesize_spec(pb.build(), "is_page_aligned", domains)
        reference = pure_reference("is_page_aligned", model.config,
                                   model.layout)
        mismatches, _ = check_synthesized_spec(spec, reference, domains)
        assert mismatches
        model_dict, got, expected = mismatches[0]
        assert got != expected
