"""One shared worker pool for the whole equivalence suite.

Forking a fresh 4-process pool per test would dominate the suite's
runtime; determinism does not depend on pool lifetime (the merge is
by unit index), so every test borrows this session-scoped executor.
"""

import pytest

from repro.engine import ShardedExecutor


@pytest.fixture(scope="session")
def pool():
    with ShardedExecutor(4) as executor:
        yield executor
