"""The untrusted side: primary OS and its applications (Sec. 2.1-2.2).

The primary OS owns all untrusted memory and — crucially — its own and
its applications' guest page tables, which are plain data in that
memory.  The threat model grants it "(1) arbitrary memory access or
malicious DMA ... and (2) initiating hypercall sequences"; this module
gives the adversary exactly those verbs and nothing else: every one of
its effects flows through guest-physical addresses translated by the
monitor-owned EPT, so the model cannot cheat its way into secure memory.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import HypervisorError, TranslationFault
from repro.hyperenclave import pte
from repro.hyperenclave.constants import WORD_BYTES
from repro.hyperenclave.paging import guest_walk


@dataclass
class App:
    """An untrusted application: a GPT root (in guest memory) plus the
    marshalling-buffer window it shares with its enclave."""

    app_id: int
    gpt_root_gpa: int
    mbuf_va: int = 0
    mbuf_size: int = 0


class PrimaryOS:
    """The untrusted primary OS.

    It builds guest page tables *by writing ordinary memory* — there is
    no privileged interface, just stores to GPAs, exactly like a real
    guest kernel.  A malicious OS uses the same verbs with hostile
    values; the attack generators in :mod:`repro.security.attacks`
    subclass nothing, they simply call these methods with bad inputs.
    """

    def __init__(self, config, phys, ept, layout):
        self.config = config
        self.phys = phys
        self.ept = ept            # the normal VM's EPT (monitor-owned)
        self.layout = layout
        self.apps: Dict[int, App] = {}
        self._next_table_frame = 0  # naive bump allocator over guest frames
        self._reserved_frames: set = set()

    def clone(self, phys, ept):
        """Rebind onto cloned backing stores (the OS's own page tables
        are guest data living in ``phys``, so only the bookkeeping —
        apps, reserved frames, the bump cursor — needs copying)."""
        new = object.__new__(type(self))
        new.config = self.config
        new.phys = phys
        new.ept = ept
        new.layout = self.layout
        new.apps = {app_id: App(app_id=app.app_id,
                                gpt_root_gpa=app.gpt_root_gpa,
                                mbuf_va=app.mbuf_va,
                                mbuf_size=app.mbuf_size)
                    for app_id, app in self.apps.items()}
        new._next_table_frame = self._next_table_frame
        new._reserved_frames = set(self._reserved_frames)
        return new

    # -- raw guest-physical access (adversary verb 1) ---------------------------------

    def gpa_write_word(self, gpa, value):
        """Write guest memory through the EPT (faults on secure memory)."""
        hpa = self.ept.translate(self.config.page_base(gpa), write=True) \
            + self.config.page_offset(gpa)
        self.phys.write_word(hpa, value)

    def gpa_read_word(self, gpa):
        """Read guest memory through the EPT (faults on secure memory)."""
        hpa = self.ept.translate(self.config.page_base(gpa), write=False) \
            + self.config.page_offset(gpa)
        return self.phys.read_word(hpa)

    def dma_write(self, pa, value):
        """Malicious DMA: bypasses the CPU's EPT but not the IOMMU-style
        check the monitor programs — modelled as the same EPT lookup,
        since HyperEnclave protects DMA with the same tables."""
        return self.gpa_write_word(pa, value)

    # -- guest page-table construction (plain memory writes) ------------------------------

    def reserve_table_frame(self) -> int:
        """Pick an untrusted frame to hold a guest page table."""
        while self._next_table_frame in self._reserved_frames:
            self._next_table_frame += 1
        frame = self._next_table_frame
        if not self.layout.is_untrusted(frame):
            raise HypervisorError("untrusted memory exhausted for GPTs")
        self._reserved_frames.add(frame)
        self._next_table_frame += 1
        # zero it through the EPT like any other guest store
        base = self.config.frame_base(frame)
        for offset in range(self.config.words_per_page):
            self.gpa_write_word(base + offset * WORD_BYTES, 0)
        return frame

    def reserve_data_frame(self) -> int:
        """Pick an untrusted frame for application data / mbuf backing."""
        return self.reserve_table_frame()

    def new_gpt(self) -> int:
        """Allocate an empty GPT root; returns its GPA."""
        return self.config.frame_base(self.reserve_table_frame())

    def gpt_map(self, gpt_root_gpa, va, gpa, flags=None):
        """Install ``va -> gpa`` in a guest page table, creating
        intermediate tables in untrusted memory as needed."""
        if flags is None:
            flags = self.config.arch.leaf_flags()
        config = self.config
        table_gpa = gpt_root_gpa
        for level in range(config.levels, 1, -1):
            index = config.entry_index(va, level)
            entry_gpa = config.page_base(table_gpa) + index * WORD_BYTES
            entry = self.gpa_read_word(entry_gpa)
            if not config.arch.is_present(entry):
                new_table = config.frame_base(self.reserve_table_frame())
                entry = pte.pte_new(new_table, config.arch.table_flags(), config)
                self.gpa_write_word(entry_gpa, entry)
            table_gpa = pte.pte_addr(entry, config)
        index = config.entry_index(va, 1)
        entry_gpa = config.page_base(table_gpa) + index * WORD_BYTES
        self.gpa_write_word(entry_gpa,
                            pte.pte_new(config.page_base(gpa), flags, config))

    def gpt_set_raw_entry(self, table_gpa, index, raw_entry):
        """The adversary's scalpel: write an arbitrary 64-bit value into
        any GPT slot it can reach."""
        self.gpa_write_word(
            self.config.page_base(table_gpa) + index * WORD_BYTES,
            raw_entry)

    # -- application management ----------------------------------------------------------------

    def spawn_app(self, app_id) -> App:
        """Create an application with a fresh guest page table."""
        if app_id in self.apps:
            raise HypervisorError(f"app {app_id} already exists")
        app = App(app_id=app_id, gpt_root_gpa=self.new_gpt())
        self.apps[app_id] = app
        return app

    def app_map_data(self, app, va) -> int:
        """Back ``va`` in the app's address space with a fresh untrusted
        frame; returns the frame's GPA."""
        gpa = self.config.frame_base(self.reserve_data_frame())
        self.gpt_map(app.gpt_root_gpa, va, gpa)
        return gpa

    # -- memory access as the running guest ------------------------------------------------------

    def load(self, app, va) -> int:
        """A load executed by app code: nested GPT∘EPT walk."""
        hpa = guest_walk(self.config, self.phys, self.ept,
                         app.gpt_root_gpa, va, write=False)
        return self.phys.read_word(hpa)

    def store(self, app, va, value):
        """A store executed by app code: nested GPT-then-EPT walk."""
        hpa = guest_walk(self.config, self.phys, self.ept,
                         app.gpt_root_gpa, va, write=True)
        self.phys.write_word(hpa, value)

    def probe(self, app, va, write=False):
        """Translate without accessing; None on fault (probe attacks)."""
        try:
            return guest_walk(self.config, self.phys, self.ept,
                              app.gpt_root_gpa, va, write=write)
        except TranslationFault:
            return None
