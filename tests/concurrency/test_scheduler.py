"""The deterministic scheduler: token passing, replay, crashes."""

import pytest

from repro.concurrency import (
    DeterministicScheduler,
    Schedule,
    scheduler as conc,
)


def counting_workloads(log, steps=3):
    """Two tasks that each record ``steps`` labelled yield points."""
    def task(vid):
        def run():
            for n in range(steps):
                log.append((vid, n))
                conc.yield_point("step", f"vcpu{vid}-{n}")
        return run
    return [task(0), task(1)]


def run_with(schedule, steps=3):
    log = []
    scheduler = DeterministicScheduler(object(), counting_workloads(log, steps),
                                       schedule)
    result = scheduler.run()
    return log, result


class TestDeterminism:
    def test_root_schedule_runs_vcpus_in_vid_order(self):
        log, result = run_with(Schedule())
        assert log == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        assert result.ok

    def test_same_schedule_same_trace(self):
        schedule = Schedule(preemptions=((1, 1), (3, 0)))
        log_a, result_a = run_with(schedule)
        log_b, result_b = run_with(schedule)
        assert log_a == log_b
        assert result_a.trace == result_b.trace
        assert result_a.yields == result_b.yields

    def test_preemption_switches_vcpus(self):
        log, result = run_with(Schedule(preemptions=((1, 1),)))
        assert log[:3] == [(0, 0), (1, 0), (1, 1)]
        assert result.trace[1] == 1

    def test_trace_records_one_vid_per_decision(self):
        _log, result = run_with(Schedule())
        assert len(result.trace) == len(result.decisions)
        assert set(result.trace) == {0, 1}

    def test_single_use(self):
        scheduler = DeterministicScheduler(object(),
                                           counting_workloads([], 1))
        scheduler.run()
        with pytest.raises(RuntimeError):
            scheduler.run()


class TestCrash:
    def test_crash_parks_the_vcpu(self):
        log, result = run_with(Schedule(crash=(0, 2)))
        # vCPU 0 dies delivering its 2nd yield; its 3rd step never runs.
        assert (0, 2) not in log
        assert result.parked == (0,)
        assert 0 not in result.task_errors
        assert [entry for entry in log if entry[0] == 1] == \
            [(1, 0), (1, 1), (1, 2)]

    def test_crash_on_missing_yield_index_is_harmless(self):
        log, result = run_with(Schedule(crash=(1, 99)))
        assert len(log) == 6 and not result.parked


class TestInstrumentationPlane:
    def test_hooks_noop_without_scheduler(self):
        assert conc.active_scheduler() is None
        assert conc.current_task() is None
        assert conc.current_vid() is None
        conc.yield_point("step", "outside")          # must not raise
        conc.guard_mutation("epcm")
        conc.record_phys_write(0, 0)
        assert conc.release_locks("outside") == ()

    def test_suspended_silences_yields(self):
        log = []

        def noisy():
            with conc.suspended():
                conc.yield_point("step", "hidden")
            log.append("ran")

        scheduler = DeterministicScheduler(object(), [noisy])
        result = scheduler.run()
        assert log == ["ran"]
        # Only the task.start decision: the suspended yield never parked.
        assert [d.chosen_kind for d in result.decisions] == ["task.start"]

    def test_nested_scheduler_rejected(self):
        outer = DeterministicScheduler(object(), [lambda: None])
        with conc.installed(outer):
            with pytest.raises(RuntimeError):
                DeterministicScheduler(object(), [lambda: None]).run()

    def test_workload_exception_is_reported_not_raised(self):
        def boom():
            raise ValueError("workload bug")

        result = DeterministicScheduler(object(), [boom]).run()
        assert isinstance(result.task_errors[0], ValueError)
        assert not result.ok
