"""The flat (low) and tree (high) page-table specifications."""

import pytest

from repro.errors import PagingError, SpecError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import MemoryLayout, TINY
from repro.spec import (
    FlatPtState, flat_alloc_frame, flat_initial_state, flat_map_page,
    flat_query, flat_read_entry, flat_unmap, flat_walk, flat_write_entry,
    tree_empty, tree_map_page, tree_mappings, tree_query, tree_table_count,
    tree_unmap, tree_walk,
)
from repro.spec.pte_record import PTERecord, TreeTable

PAGE = TINY.page_size
LAYOUT = MemoryLayout.default_for(TINY)
POOL_BASE = LAYOUT.pt_pool_base
POOL_SIZE = LAYOUT.epc_base - LAYOUT.pt_pool_base
LEAF = pte.leaf_flags()


def fresh_flat():
    state = flat_initial_state(TINY, POOL_BASE, POOL_SIZE)
    root, state = flat_alloc_frame(state)
    return root, state


class TestPTERecord:
    def test_unused_inv_rejects_non_present(self):
        """The paper's unused_inv: a materialised record is present."""
        with pytest.raises(SpecError, match="unused_inv"):
            PTERecord(addr=0, flags=0)

    def test_huge_record_cannot_nest(self):
        with pytest.raises(SpecError, match="huge"):
            PTERecord(addr=0, flags=pte.leaf_flags(huge=True),
                      content=TreeTable.empty(1))

    def test_flag_views(self):
        record = PTERecord(addr=PAGE,
                           flags=pte.leaf_flags(writable=False))
        assert record.is_present and not record.is_writable
        assert record.is_terminal

    def test_table_total_with_default_none(self):
        table = TreeTable.empty(2)
        assert table.get(3) is None
        record = PTERecord(addr=0, flags=LEAF)
        assert table.set(3, record).get(3) == record
        assert table.set(3, record).unset(3).get(3) is None


class TestFlatSpec:
    def test_alloc_is_functional_and_zeroing(self):
        state = flat_initial_state(TINY, POOL_BASE, POOL_SIZE)
        state = flat_write_entry(state, POOL_BASE, 0, 0xFF)
        frame, allocated = flat_alloc_frame(state)
        assert frame == POOL_BASE
        assert flat_read_entry(allocated, POOL_BASE, 0) == 0
        # original untouched
        assert flat_read_entry(state, POOL_BASE, 0) == 0xFF
        assert not state.frame_allocated(POOL_BASE)
        assert allocated.frame_allocated(POOL_BASE)

    def test_exhaustion(self):
        state = flat_initial_state(TINY, POOL_BASE, 2)
        _, state = flat_alloc_frame(state)
        _, state = flat_alloc_frame(state)
        with pytest.raises(PagingError, match="exhausted"):
            flat_alloc_frame(state)

    def test_entry_io_outside_pool_rejected(self):
        state = flat_initial_state(TINY, POOL_BASE, POOL_SIZE)
        with pytest.raises(SpecError, match="escapes"):
            flat_read_entry(state, 0, 0)

    def test_map_walk_query_unmap(self):
        root, state = fresh_flat()
        state = flat_map_page(state, root, 5 * PAGE, 9 * PAGE, LEAF)
        assert flat_query(state, root, 5 * PAGE) == (9 * PAGE, LEAF)
        steps, terminal, huge_level = flat_walk(state, root, 5 * PAGE)
        assert terminal is not None and huge_level == 1
        assert len(steps) == TINY.levels
        state = flat_unmap(state, root, 5 * PAGE)
        assert flat_query(state, root, 5 * PAGE) is None

    def test_double_map_rejected(self):
        root, state = fresh_flat()
        state = flat_map_page(state, root, 0, PAGE, LEAF)
        with pytest.raises(PagingError, match="already"):
            flat_map_page(state, root, 0, 2 * PAGE, LEAF)

    def test_unaligned_rejected(self):
        root, state = fresh_flat()
        with pytest.raises(PagingError, match="unaligned"):
            flat_map_page(state, root, 3, PAGE, LEAF)

    def test_unmap_missing_rejected(self):
        root, state = fresh_flat()
        with pytest.raises(PagingError, match="not mapped"):
            flat_unmap(state, root, 0)


class TestTreeSpec:
    def test_map_query_unmap(self):
        tree = tree_empty(TINY)
        tree = tree_map_page(tree, 5 * PAGE, 9 * PAGE, LEAF, TINY)
        assert tree_query(tree, 5 * PAGE, TINY) == (9 * PAGE, LEAF)
        tree = tree_unmap(tree, 5 * PAGE, TINY)
        assert tree_query(tree, 5 * PAGE, TINY) is None

    def test_map_is_functional(self):
        empty = tree_empty(TINY)
        mapped = tree_map_page(empty, 0, PAGE, LEAF, TINY)
        assert tree_query(empty, 0, TINY) is None
        assert tree_query(mapped, 0, TINY) is not None

    def test_double_map_rejected(self):
        tree = tree_map_page(tree_empty(TINY), 0, PAGE, LEAF, TINY)
        with pytest.raises(PagingError, match="already"):
            tree_map_page(tree, 0, 2 * PAGE, LEAF, TINY)

    def test_mappings_enumerates_all(self):
        tree = tree_empty(TINY)
        expected = {}
        for page_no in (0, 1, 7, 40):
            tree = tree_map_page(tree, page_no * PAGE,
                                 (page_no % 5) * PAGE, LEAF, TINY)
            expected[page_no * PAGE] = (page_no % 5) * PAGE
        got = {va: pa for va, pa, _s, _f in tree_mappings(tree, TINY)}
        assert got == expected

    def test_table_count_grows_per_span(self):
        tree = tree_empty(TINY)
        assert tree_table_count(tree) == 1
        tree = tree_map_page(tree, 0, PAGE, LEAF, TINY)
        assert tree_table_count(tree) == TINY.levels
        tree = tree_map_page(tree, PAGE, PAGE, LEAF, TINY)
        assert tree_table_count(tree) == TINY.levels  # shared chain

    def test_walk_records_spine(self):
        tree = tree_map_page(tree_empty(TINY), 0, PAGE, LEAF, TINY)
        records, terminal, huge_level = tree_walk(tree, 0, TINY)
        assert len(records) == TINY.levels
        assert terminal is records[-1]
        assert huge_level == 1

    def test_aliasing_is_unrepresentable(self):
        """The whole point of the tree view (Sec. 4.1): updating one
        mapping can never alter another, because subtables are contained
        values — shown here by the strongest available form: mapping into
        a tree twice from the same base never perturbs other entries."""
        tree = tree_map_page(tree_empty(TINY), 0, PAGE, LEAF, TINY)
        before = tree_query(tree, 0, TINY)
        tree2 = tree_map_page(tree, 63 * PAGE, 3 * PAGE, LEAF, TINY)
        assert tree_query(tree2, 0, TINY) == before

    def test_unmap_missing_rejected(self):
        with pytest.raises(PagingError):
            tree_unmap(tree_empty(TINY), 0, TINY)
