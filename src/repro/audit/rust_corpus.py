"""A synthesized Rust source mirror for the unsafe audit.

The original HyperEnclave tree (2022 snapshot) is not redistributable
here, so the Sec. 6.1 audit runs against a *generated* source corpus
that mirrors the paper's reported distribution exactly:

* 105 unsafe blocks in total,
* 74 indirect calls to unsafe functions (incl. slice construction,
  state-save-area manipulation, and assembly *behind* named unsafe fns),
* 13 raw-pointer dereferences — none involving page-table memory,
* 18 other blocks (direct inline assembly, slice construction,
  transmutes, static-mut accesses).

The generator is deterministic; the bench asserts the scanner recovers
the distribution bit-for-bit, demonstrating that the *audit tooling*
(the reproducible part of a manual audit) is sound on a tree of the
paper's shape.
"""

from repro.audit.unsafe_scan import UnsafeCategory

# category -> count; totals 105, matching Sec. 6.1.
CORPUS_DISTRIBUTION = {
    UnsafeCategory.INDIRECT_CALL: 74,
    UnsafeCategory.RAW_DEREF: 13,
    UnsafeCategory.ASM: 8,
    UnsafeCategory.SLICE: 6,
    UnsafeCategory.TRANSMUTE: 2,
    UnsafeCategory.STATIC_MUT: 2,
}

# Block bodies per category.  Raw derefs deliberately target vCPU
# state-save areas and MSR scratch buffers — never page tables — so
# ``blocks_touching_page_tables`` comes back empty like the paper's audit.
_TEMPLATES = {
    UnsafeCategory.INDIRECT_CALL: (
        "        unsafe {{ vmcs_write(field_{i}, value) }}\n",
        "        unsafe {{ self.save_area.restore_gprs_{i}() }}\n",
        "        unsafe {{ arch::wrmsr(MSR_{i}, low, high) }}\n",
        "        unsafe {{ percpu::current_{i}().activate() }}\n",
    ),
    UnsafeCategory.RAW_DEREF: (
        "        let v = unsafe {{ *(ssa_ptr.add({i})) }};\n",
        "        unsafe {{ *scratch_ptr = seed_{i} }}\n",
    ),
    UnsafeCategory.ASM: (
        '        unsafe {{ asm!("vmlaunch", options(noreturn)) }} // site {i}\n',
    ),
    UnsafeCategory.SLICE: (
        "        let bytes = unsafe {{ core::slice::from_raw_parts"
        "(base_{i}, len) }};\n",
    ),
    UnsafeCategory.TRANSMUTE: (
        "        let header = unsafe {{ core::mem::transmute::<_, "
        "Header{i}>(word) }};\n",
    ),
    UnsafeCategory.STATIC_MUT: (
        "        unsafe {{ BOOT_INFO_{i} = Some(info) }}\n",
    ),
}

_FILES = ("src/arch/vmx.rs", "src/arch/context.rs", "src/enclave/ssa.rs",
          "src/hypercall.rs", "src/percpu.rs", "src/serial.rs")


def generate_rust_corpus():
    """``{filename: source}`` with exactly the Sec. 6.1 distribution."""
    per_file = {name: [f"// synthesized audit mirror: {name}\n"]
                for name in _FILES}
    site = 0
    for category, count in CORPUS_DISTRIBUTION.items():
        templates = _TEMPLATES[category]
        for index in range(count):
            body = templates[index % len(templates)].format(i=site)
            target = _FILES[site % len(_FILES)]
            per_file[target].append(f"fn site_{site}() {{\n{body}}}\n\n")
            site += 1
    return {name: "".join(chunks) for name, chunks in per_file.items()}
