"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel`` package,
so PEP-517 editable installs are unavailable; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``pip install -e .`` on environments with wheel) fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
