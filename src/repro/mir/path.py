"""Path addresses for the object-view memory model.

The paper replaces flat integer addresses with *paths* (Sec. 3.2):

    "A path simply consists of an identifier with a list of integer
     indices, essentially the base object and a list of projections.
     For example the expression foo.bar.1 will be modeled as
     GlobalPath IDENT_foo [OFFSET_bar 1]."

A path is a *base* (either a global variable, or a local variable pinned
to a particular activation frame) plus a tuple of integer projections.
Struct fields and array elements project uniformly by integer index, so a
single :class:`Field`/:class:`Index` pair covers both; we keep the two
constructors distinct because the pretty-printer and the aliasing checker
want to know which kind of projection produced an index.

Paths are immutable and hashable; extending a path returns a new one.
"""

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class GlobalBase:
    """Base of a path rooted at a global (static) variable."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class LocalBase:
    """Base of a path rooted at a stack-allocated local.

    ``frame_id`` pins the local to one activation of its function, so
    recursive calls do not collide.  The paper's semantics never free
    locals (memory safety implies pointer validity, Sec. 3.2), and neither
    do we: a frame's locals simply stay in memory after return.
    """

    frame_id: int
    name: str

    def __str__(self):
        return f"{self.name}@{self.frame_id}"


PathBase = Union[GlobalBase, LocalBase]


@dataclass(frozen=True)
class Field:
    """Projection into field ``index`` of a struct/enum/tuple value."""

    index: int

    def __str__(self):
        return f".{self.index}"


@dataclass(frozen=True)
class Index:
    """Projection into element ``index`` of an array value."""

    index: int

    def __str__(self):
        return f"[{self.index}]"


Projection = Union[Field, Index]


@dataclass(frozen=True)
class Path:
    """A base object plus a list of projections.

    Two paths alias iff one is a prefix of the other — which is exactly
    the property :meth:`overlaps` decides, and the property Rust's
    ownership discipline rules out for simultaneously-live mutable
    pointers.
    """

    base: PathBase
    projections: Tuple[Projection, ...] = ()

    @staticmethod
    def global_(name):
        return Path(GlobalBase(name))

    @staticmethod
    def local(frame_id, name):
        return Path(LocalBase(frame_id, name))

    def field(self, index):
        """Extend with a struct/enum field projection."""
        return Path(self.base, self.projections + (Field(index),))

    def index(self, index):
        """Extend with an array-element projection."""
        return Path(self.base, self.projections + (Index(index),))

    def extend(self, projection):
        return Path(self.base, self.projections + (projection,))

    @property
    def indices(self):
        """The raw integer projection list (the paper's ``list of integer
        indices`` payload)."""
        return tuple(p.index for p in self.projections)

    def is_prefix_of(self, other):
        """True if ``other`` is reachable by projecting from ``self``."""
        if self.base != other.base:
            return False
        if len(self.projections) > len(other.projections):
            return False
        return other.projections[: len(self.projections)] == self.projections

    def overlaps(self, other):
        """True if writing one path could change the value at the other."""
        return self.is_prefix_of(other) or other.is_prefix_of(self)

    def parent(self):
        """The path one projection up, or None at a base object."""
        if not self.projections:
            return None
        return Path(self.base, self.projections[:-1])

    def __str__(self):
        return str(self.base) + "".join(str(p) for p in self.projections)
