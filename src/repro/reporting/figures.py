"""ASCII regenerations of the paper's figures, driven by live state.

The paper's figures are architecture diagrams rather than data plots;
each renderer here reads the *actual* simulated system (or verification
artifacts) and draws the corresponding picture, so the figures are
evidence, not decoration: if the layout or the pointer census changes,
the figure changes.
"""

from repro.ccal.pointers import PointerCase, count_by_case
from repro.hyperenclave.monitor import HOST_ID


def fig1_architecture(monitor) -> str:
    """Figure 1: the HyperEnclave architecture, from a live monitor."""
    config = monitor.config
    layout = monitor.layout
    enclaves = sorted(monitor.enclaves)
    lines = []
    lines.append("Figure 1 — HyperEnclave architecture (live)")
    lines.append("")
    guests = ["Prim. OS"] + [f"Enclave {eid}" for eid in enclaves]
    lines.append("Guest mode : " + " | ".join(
        f"[{name}]" for name in guests))
    pt_row = ["Prim.OS GPT (guest mem)"]
    for eid in enclaves:
        pt_row.append(f"Enc{eid} GPT+EPT (RustMonitor)")
    lines.append("Page tables: " + " | ".join(pt_row))
    lines.append("Host mode  : [RustMonitor] active principal = "
                 + ("Prim. OS" if monitor.active == HOST_ID
                    else f"Enclave {monitor.active}"))
    lines.append("")
    lines.append("Physical memory (frames):")
    lines.append(
        f"  [0..{layout.secure_base}) untrusted (Prim. OS memory)"
        f"   ### secure below ###")
    lines.append(
        f"  [{layout.secure_base}..{layout.pt_pool_base}) RustMonitor "
        f"image")
    used = monitor.pt_allocator.used_count
    lines.append(
        f"  [{layout.pt_pool_base}..{layout.epc_base}) page-table pool "
        f"({used}/{monitor.pt_allocator.size} frames in use)")
    busy = layout.epc_size - monitor.epcm.free_count()
    lines.append(
        f"  [{layout.epc_base}..{config.phys_frames}) EPC "
        f"({busy}/{layout.epc_size} pages recorded in EPCM)")
    for eid in enclaves:
        enclave = monitor.enclaves[eid]
        mbuf = enclave.mbuf
        lines.append(
            f"  enclave {eid}: ELRANGE [{enclave.elrange_base:#x}, "
            f"{enclave.elrange_end:#x})  MBuf va={mbuf.va_base:#x} "
            f"pa={mbuf.pa_base:#x} ({mbuf.size} B)"
            if mbuf else f"  enclave {eid}: no marshalling buffer")
    return "\n".join(lines)


def fig2_translation(monitor, eid, app, sample_vas) -> str:
    """Figure 2: the address-translation view for an app/enclave pair."""
    from repro.errors import TranslationFault
    config = monitor.config
    enclave = monitor.enclaves[eid]
    lines = ["Figure 2 — view of address translation (live)", ""]
    lines.append(f"{'VA':>8}  {'App: GPT∘EPT':>16}  "
                 f"{'Enclave: GPT∘EPT':>18}  note")
    for va in sample_vas:
        app_hpa = monitor.primary_os.probe(app, va)
        try:
            enc_hpa = monitor.enclave_translate(eid, va)
        except TranslationFault:
            enc_hpa = None
        note = ""
        if enclave.in_mbuf(va):
            note = "marshalling buffer (shared, hatched)"
        elif enclave.in_elrange(va):
            note = "ELRANGE -> EPC (secure)"
        app_cell = f"{app_hpa:#x}" if app_hpa is not None else "fault"
        enc_cell = f"{enc_hpa:#x}" if enc_hpa is not None else "fault"
        lines.append(f"{va:#8x}  {app_cell:>16}  {enc_cell:>18}  {note}")
    shared = [va for va in sample_vas
              if monitor.primary_os.probe(app, va) is not None
              and enclave.in_mbuf(va)]
    lines.append("")
    lines.append(f"shared pages (both sides resolve): "
                 f"{[hex(va) for va in shared]} — all inside the mbuf")
    return "\n".join(lines)


def fig3_pipeline(model, retrofit_findings, split_files,
                  mirlight_loc) -> str:
    """Figure 3: the MIRVerif pipeline with per-stage artifact counts."""
    lines = ["Figure 3 — MIRVerif pipeline (live artifact counts)", ""]
    lines.append(f"  HyperEnclave code in Rust  (model: executable Python "
                 f"subsystem)")
    lines.append(f"        | retrofitting   -> {len(retrofit_findings)} "
                 f"lint findings (must be 0)")
    lines.append(f"        v")
    lines.append(f"  mirlight corpus            {len(model.program.functions)} "
                 f"functions, {mirlight_loc.code} code lines")
    lines.append(f"        | split + layering -> {len(split_files)} "
                 f"per-function files, {len(model.stack)} layers")
    lines.append(f"        v")
    lines.append(f"  MIR semantics + CCAL stack ({len(model.trusted)} "
                 f"trusted primitives at layer 0)")
    lines.append(f"        | code proofs (co-simulation + symbolic)")
    lines.append(f"        v")
    lines.append(f"  abstract model -> invariants -> noninterference")
    return "\n".join(lines)


def fig4_pointer_cases(flows) -> str:
    """Figure 4: the three pointer disciplines, with the live census."""
    counts = count_by_case(flows)
    lines = ["Figure 4 — pointer classification (live census)", ""]
    lines.append("(1) argument to lower layer  — concrete path pointers")
    lines.append(f"      {counts[PointerCase.ARG_TO_LOWER]} flows")
    lines.append("(2) return from bottom layer — trusted getter/setter "
                 "pointers")
    lines.append(f"      {counts[PointerCase.TRUSTED_FROM_BOTTOM]} flows")
    lines.append("(3) return from middle layer — opaque RData handles")
    lines.append(f"      {counts[PointerCase.RDATA_FROM_MIDDLE]} flows")
    lines.append("")
    for flow in flows[:12]:
        lines.append(f"  . {flow}")
    if len(flows) > 12:
        lines.append(f"  ... and {len(flows) - 12} more")
    return "\n".join(lines)


def fig5_exploits(case1_report, case2_report) -> str:
    """Figure 5: the two wrong designs and the checker verdicts."""
    lines = ["Figure 5 — exploitable wrong designs (checker verdicts)", ""]
    lines.append("case (1): two enclaves share an EPC page")
    lines.append(f"  invariant checker: "
                 f"{'VIOLATION DETECTED' if not case1_report.ok else 'MISSED (BUG)'}")
    for family in case1_report.violated_families():
        for item in case1_report.violations[family][:3]:
            lines.append(f"    [{family}] {item}")
    lines.append("")
    lines.append("case (2): a VA outside the ELRANGE maps into the EPC")
    lines.append(f"  invariant checker: "
                 f"{'VIOLATION DETECTED' if not case2_report.ok else 'MISSED (BUG)'}")
    for family in case2_report.violated_families():
        for item in case2_report.violations[family][:3]:
            lines.append(f"    [{family}] {item}")
    return "\n".join(lines)
