"""Parallel counterparts of every sequential checking campaign.

Each function here fans a sequential campaign's work units out through
the :class:`~repro.engine.executor.ShardedExecutor` and merges the
results **byte-identically** to the sequential run:

* unit enumeration happens in the parent, in the sequential sweep
  order;
* units are pure functions of their seeds (every worker rebuilds or
  clones its worlds deterministically);
* the merge reassembles results by unit index, so worker count and
  completion order cannot leak into the report.

The speed comes from three places: process parallelism, per-worker
world prototypes (clone instead of reboot), and the
fingerprint-memoised checkers in :mod:`repro.engine.memo` — the
interleaving campaign additionally reuses its own secret-41 execution
as world A of the noninterference re-run, saving one of the three
world executions the sequential campaign pays per schedule.

All functions accept ``workers`` (see
:func:`~repro.engine.executor.resolve_workers`) or a pre-built
``executor`` to share one process pool across campaigns, and
``stats_out`` — a dict that receives the aggregated worker
memoisation counters.
"""

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

from repro.engine.executor import ShardedExecutor
from repro.engine.memo import merge_stats
from repro.obs import trace as _trace

DEFAULT_WORLD_FACTORY = "repro.faults.campaign:default_world_factory"
DEFAULT_WORKLOAD = "repro.faults.campaign:default_workload"
DEFAULT_TWO_WORLDS = "repro.faults.campaign:default_two_worlds"


def callable_path(obj) -> Optional[str]:
    """The ``module:qualname`` path of a class/function (or pass a
    string through) — how monitor classes travel to workers."""
    if obj is None or isinstance(obj, str):
        return obj
    return f"{obj.__module__}:{obj.__qualname__}"


def _executor(executor, workers):
    """An owned-or-borrowed executor as a context manager."""
    if executor is not None:
        return nullcontext(executor)
    return ShardedExecutor(workers)


def _publish_stats(stats_out, executor):
    if stats_out is not None:
        merge_stats(stats_out, executor.stats)


# ---------------------------------------------------------------------------
# Interleaving exploration
# ---------------------------------------------------------------------------


def parallel_interleaving_campaign(monitor_cls=None, *,
                                   preemption_bound=2, max_schedules=600,
                                   seed=0, check_ni=True, crash=None,
                                   config=None, observers=None,
                                   workers=None, executor=None,
                                   stats_out=None, prefix_cache=None):
    """:func:`repro.faults.campaign.interleaving_campaign`, fanned out
    one BFS wavefront at a time; the returned
    :class:`~repro.concurrency.explorer.ExplorationResult` is
    byte-identical to the sequential campaign's.

    ``prefix_cache`` toggles the snapshot-tree execution cache in the
    workers (None resolves ``REPRO_PREFIX_CACHE``; default on).  With
    the cache on, shard keys become prefix-locality keys so each
    preemption subtree lands on one worker; merge order is by unit
    index either way, so results are byte-identical on or off.
    """
    from repro.concurrency import explore_batched
    from repro.concurrency.snapshot import (
        locality_key,
        prefix_cache_enabled,
    )
    from repro.hyperenclave.monitor import HOST_ID

    monitor_path = callable_path(monitor_cls)
    watchers = list(observers) if observers is not None else [HOST_ID]
    use_cache = prefix_cache_enabled(prefix_cache)

    with _trace.span("campaign.interleaving", seed=seed,
                     preemption_bound=preemption_bound, parallel=True), \
            _executor(executor, workers) as pool:
        def run_batch(schedules):
            units = [{"schedule": schedule, "monitor": monitor_path,
                      "config": config, "check_ni": check_ni,
                      "observers": watchers, "prefix_cache": use_cache}
                     for schedule in schedules]
            return pool.map("repro.engine.workers:run_interleaving_unit",
                            units,
                            keys=[locality_key(s) if use_cache
                                  else s.describe() for s in schedules])

        result = explore_batched(run_batch, seed=seed,
                                 preemption_bound=preemption_bound,
                                 max_schedules=max_schedules, crash=crash)
        _publish_stats(stats_out, pool)
    return result


# ---------------------------------------------------------------------------
# Fault campaigns
# ---------------------------------------------------------------------------


def parallel_crash_step_campaign(factory=DEFAULT_WORLD_FACTORY,
                                 workload=DEFAULT_WORKLOAD, *,
                                 factory_args=(), sites=None, seed=0,
                                 runner=None, workers=None,
                                 executor=None, stats_out=None):
    """:func:`repro.faults.campaign.crash_step_campaign` over the
    sharded executor.  ``factory``/``workload``/``runner`` are dotted
    paths (``factory`` names a *maker* called with ``factory_args`` to
    produce the world factory, matching the sequential driver's
    ``default_world_factory(config)`` convention)."""
    from repro.engine.executor import resolve_callable
    from repro.faults.campaign import (
        DEFAULT_SITES,
        CampaignReport,
        crash_step_units,
    )

    sites = tuple(sites) if sites is not None else DEFAULT_SITES
    world_factory = resolve_callable(factory)(*factory_args)
    calls = resolve_callable(workload)()
    units = [{"factory": factory, "factory_args": tuple(factory_args),
              "workload": workload, "index": index, "site": site,
              "kind": kind, "step": step, "seed": seed,
              "runner": callable_path(runner)}
             for index, site, kind, step
             in crash_step_units(world_factory, calls, sites)]
    report = CampaignReport(seed=seed)
    with _trace.span("campaign.crash-step", seed=seed,
                     units=len(units), parallel=True), \
            _executor(executor, workers) as pool:
        report.runs = pool.map("repro.engine.workers:run_crash_step_unit",
                               units,
                               keys=[f"{u['index']}:{u['site']}:{u['step']}"
                                     for u in units])
        _publish_stats(stats_out, pool)
    return report


def parallel_bitflip_campaigns(seeds: Sequence[int],
                               factory=DEFAULT_WORLD_FACTORY,
                               workload=None, *, factory_args=(),
                               flips=64, workers=None, executor=None,
                               stats_out=None):
    """One :func:`repro.faults.campaign.bitflip_campaign` per seed, in
    parallel; returns the reports in seed order.  The per-seed campaign
    stays whole (its flips are cumulative on one monitor), so the unit
    of work is the seed."""
    units = [{"factory": factory, "factory_args": tuple(factory_args),
              "workload": workload, "flips": flips, "seed": s}
             for s in seeds]
    with _trace.span("campaign.bitflip", seeds=len(units),
                     parallel=True), \
            _executor(executor, workers) as pool:
        reports = pool.map("repro.engine.workers:run_bitflip_unit",
                           units, keys=[str(s) for s in seeds])
        _publish_stats(stats_out, pool)
    return reports


def parallel_crash_ni_campaign(factory=DEFAULT_TWO_WORLDS, *,
                               factory_args=(), trace=None, sites=None,
                               observers=None, seed=0, workers=None,
                               executor=None, stats_out=None):
    """:func:`repro.faults.campaign.crash_ni_campaign` with one unit
    per trace step (each unit owns that step's whole site×step sweep,
    including the suffix drain)."""
    from repro.engine.executor import resolve_callable
    from repro.faults.campaign import (
        DEFAULT_SITES,
        CampaignReport,
        default_ni_trace,
    )
    from repro.hyperenclave.monitor import HOST_ID

    sites = tuple(sites) if sites is not None else DEFAULT_SITES
    observers = list(observers) if observers is not None else [HOST_ID]
    if trace is None:
        worlds_probe, eid = resolve_callable(factory)(*factory_args)()
        trace = default_ni_trace(
            eid, worlds_probe.a.monitor.config.page_size)
    units = [{"factory": factory, "factory_args": tuple(factory_args),
              "trace": trace, "index": index, "sites": sites,
              "observers": observers, "seed": seed}
             for index in range(len(trace))]
    report = CampaignReport(seed=seed)
    with _trace.span("campaign.crash-ni", seed=seed,
                     units=len(units), parallel=True), \
            _executor(executor, workers) as pool:
        per_index = pool.map("repro.engine.workers:run_crash_ni_unit",
                             units,
                             keys=[str(u["index"]) for u in units])
        _publish_stats(stats_out, pool)
    for runs in per_index:
        report.runs.extend(runs)
    return report


def parallel_crash_in_critical_section_campaign(monitor_cls=None, *,
                                                seed=0, config=None,
                                                workers=None,
                                                executor=None,
                                                stats_out=None):
    """:func:`repro.faults.campaign.crash_in_critical_section_campaign`
    with one unit per critical-section yield point.  The clean baseline
    run (which discovers the points) executes in the parent, exactly as
    the sequential campaign's does."""
    from repro.concurrency import Schedule
    from repro.faults.campaign import (
        CrashCampaignReport,
        make_interleaved_run,
    )
    from repro.hyperenclave.monitor import RustMonitor

    cls = monitor_cls or RustMonitor
    run_world = make_interleaved_run(monitor_cls, config)
    _state, baseline = run_world(41, Schedule(seed=seed))
    points = baseline.critical_yields()
    report = CrashCampaignReport(monitor=cls.__name__,
                                 critical_yields=len(points))
    monitor_path = callable_path(monitor_cls)
    units = [{"monitor": monitor_path, "config": config, "seed": seed,
              "point": point} for point in points]
    with _trace.span("campaign.crash-critical-section", seed=seed,
                     points=len(points), parallel=True), \
            _executor(executor, workers) as pool:
        report.records = pool.map(
            "repro.engine.workers:run_crash_point_unit", units,
            keys=[f"{p.vid}:{p.yield_index}" for p in points])
        _publish_stats(stats_out, pool)
    return report


# ---------------------------------------------------------------------------
# Hardened pure-check grid
# ---------------------------------------------------------------------------


def _pure_check_units(names, *, total_steps, total_seconds, seed,
                      sample_count, max_exhaustive, config, fake_clock):
    from repro.verification.harness import split_budget
    max_steps, max_seconds = split_budget(total_steps, total_seconds,
                                          max(1, len(names)))
    return [{"name": name, "max_steps": max_steps,
             "max_seconds": max_seconds, "seed": seed,
             "sample_count": sample_count,
             "max_exhaustive": max_exhaustive, "config": config,
             "fake_clock": fake_clock}
            for name in names]


def sequential_pure_check_grid(names, *, total_steps=None,
                               total_seconds=None, seed=0,
                               sample_count=128, max_exhaustive=4096,
                               config=None, fake_clock=False) -> List:
    """The hardened pure-check grid, run in-process: one
    :class:`~repro.ccal.refinement.CheckReport` per name, each under
    its :func:`~repro.verification.harness.split_budget` slice of the
    grid-wide allowance.  The parallel grid's equivalence baseline."""
    from repro.engine.workers import run_pure_check_unit
    return [run_pure_check_unit(unit)
            for unit in _pure_check_units(
                names, total_steps=total_steps,
                total_seconds=total_seconds, seed=seed,
                sample_count=sample_count,
                max_exhaustive=max_exhaustive, config=config,
                fake_clock=fake_clock)]


def parallel_pure_check_grid(names, *, total_steps=None,
                             total_seconds=None, seed=0,
                             sample_count=128, max_exhaustive=4096,
                             config=None, fake_clock=False,
                             workers=None, executor=None,
                             stats_out=None) -> List:
    """:func:`sequential_pure_check_grid` over the sharded executor.

    With ``fake_clock`` the budget's wall-clock reads a frozen zero in
    every worker, so ``budget_spent`` merges deterministically; without
    it, reports carry real per-worker timings (identical verdicts,
    non-identical ``seconds``).
    """
    units = _pure_check_units(names, total_steps=total_steps,
                              total_seconds=total_seconds, seed=seed,
                              sample_count=sample_count,
                              max_exhaustive=max_exhaustive,
                              config=config, fake_clock=fake_clock)
    with _trace.span("campaign.pure-grid", names=len(units),
                     parallel=True), \
            _executor(executor, workers) as pool:
        reports = pool.map("repro.engine.workers:run_pure_check_unit",
                           units, keys=[u["name"] for u in units])
        _publish_stats(stats_out, pool)
    return reports
