"""Retrofitting lints (Sec. 2.3).

The paper retrofits HyperEnclave before verification with four succinct
code changes.  This module turns each rule into a mechanical lint over
mirlight programs, so the corpus can be *checked* to be in retrofitted
form rather than assumed to be:

1. **Large loop bodies moved into helpers** — a natural loop whose body
   exceeds a statement budget is flagged; the fix is a helper call inside
   the loop (at most "one extra function call in some loops").
2. **No closures** — MIR defunctionalizes closures into separate named
   functions called indirectly; any Call whose callee operand is not a
   constant function item is flagged.
3. **No int-valued enum discriminate reads** — casting an enum to an
   integer emits a ``discriminant`` instruction; reads of discriminants
   that feed casts (rather than ``switchInt`` matches over data enums
   like Option/Result) are flagged.
4. **No lazy statics** — functions marked with the ``lazy_static`` attr,
   or exhibiting the check-then-initialize pattern on a global (read a
   global, branch on it, write the same global), are flagged; constants
   must be hardcoded.

:func:`check_retrofitted` runs all four and returns findings; an empty
list certifies the program is in the form the verification framework
expects.
"""

from dataclasses import dataclass
from typing import List

from repro.mir import ast

DEFAULT_LOOP_BUDGET = 8


@dataclass(frozen=True)
class Finding:
    """One retrofit-rule violation."""

    rule: str
    function: str
    detail: str

    def __str__(self):
        return f"[{self.rule}] {self.function}: {self.detail}"


# ---------------------------------------------------------------------------
# Rule 1 — loop bodies
# ---------------------------------------------------------------------------


def _successors(block):
    term = block.terminator
    if isinstance(term, ast.Goto):
        return (term.target,)
    if isinstance(term, ast.SwitchInt):
        return tuple(lbl for _, lbl in term.targets) + (term.otherwise,)
    if isinstance(term, (ast.Call, ast.Drop)):
        return (term.target,)
    if isinstance(term, ast.Assert):
        return (term.target,)
    return ()


def _back_edges(function):
    """(source, header) pairs found by DFS from the entry block."""
    colour = {}
    edges = []
    stack = [(function.entry, iter(_successors(function.blocks[function.entry])))]
    colour[function.entry] = "grey"
    while stack:
        label, successors = stack[-1]
        advanced = False
        for succ in successors:
            if succ not in function.blocks:
                continue
            state = colour.get(succ)
            if state == "grey":
                edges.append((label, succ))
            elif state is None:
                colour[succ] = "grey"
                stack.append((succ, iter(_successors(function.blocks[succ]))))
                advanced = True
                break
        if not advanced:
            colour[label] = "black"
            stack.pop()
    return edges


def natural_loop_blocks(function, back_edge):
    """The natural loop of ``back_edge = (source, header)``: header plus
    every block that reaches source without passing through header."""
    source, header = back_edge
    loop = {header, source}
    predecessors = {}
    for label, block in function.blocks.items():
        for succ in _successors(block):
            predecessors.setdefault(succ, []).append(label)
    worklist = [source]
    while worklist:
        label = worklist.pop()
        for pred in predecessors.get(label, ()):
            if pred not in loop:
                loop.add(pred)
                worklist.append(pred)
    return loop


def lint_loop_bodies(function, budget=DEFAULT_LOOP_BUDGET):
    """Rule 1: flag natural loops whose bodies exceed ``budget`` statements."""
    findings = []
    for edge in _back_edges(function):
        blocks = natural_loop_blocks(function, edge)
        size = sum(len(function.blocks[lbl].statements) for lbl in blocks)
        if size > budget:
            findings.append(Finding(
                "loop-body-size", function.name,
                f"loop at {edge[1]} has {size} statements (> {budget}); "
                f"move the body into a helper function"))
    return findings


# ---------------------------------------------------------------------------
# Rule 2 — closures / indirect calls
# ---------------------------------------------------------------------------


def lint_no_indirect_calls(function):
    """Rule 2: every callee must be a constant function item."""
    findings = []
    for label, block in function.blocks.items():
        term = block.terminator
        if isinstance(term, ast.Call) and not isinstance(
                term.func, ast.Constant):
            findings.append(Finding(
                "closure-call", function.name,
                f"indirect call in {label} (callee {term.func}); replace "
                f"the closure/higher-order function with direct code"))
    return findings


# ---------------------------------------------------------------------------
# Rule 3 — int-valued enum discriminants
# ---------------------------------------------------------------------------


def lint_discriminant_casts(function):
    """Rule 3: a discriminant read that is later *cast to an integer*
    signals an int-valued enum that should have been replaced by plain
    constants.  Discriminant reads consumed by switchInt (Option/Result
    matching) are fine."""
    findings = []
    for label, block in function.blocks.items():
        discriminant_vars = set()
        for stmt in block.statements:
            if not isinstance(stmt, ast.Assign):
                continue
            if isinstance(stmt.rvalue, ast.Discriminant) and stmt.place.is_bare:
                discriminant_vars.add(stmt.place.var)
            elif isinstance(stmt.rvalue, ast.Cast):
                operand = stmt.rvalue.operand
                if (isinstance(operand, (ast.Copy, ast.Move))
                        and operand.place.is_bare
                        and operand.place.var in discriminant_vars):
                    findings.append(Finding(
                        "int-enum-discriminant", function.name,
                        f"discriminant of an enum cast to an integer in "
                        f"{label}; replace the enum with integer constants"))
    return findings


# ---------------------------------------------------------------------------
# Rule 4 — lazy statics
# ---------------------------------------------------------------------------


def lint_no_lazy_static(function):
    """Rule 4: flag the lazy-init pattern (branch on a global, then write
    that same global) and explicit ``lazy_static`` attrs."""
    findings = []
    if "lazy_static" in function.attrs:
        findings.append(Finding(
            "lazy-static", function.name,
            "function is marked lazy_static; hardcode the constant"))
        return findings
    branched_globals = set()
    for block in function.blocks.values():
        term = block.terminator
        if isinstance(term, ast.SwitchInt) and isinstance(
                term.operand, (ast.Copy, ast.Move)):
            branched_globals.add(term.operand.place.var)
    if not branched_globals:
        return findings
    for block in function.blocks.values():
        for stmt in block.statements:
            if (isinstance(stmt, ast.Assign) and stmt.place.is_bare
                    and stmt.place.var in branched_globals
                    and stmt.place.var.isupper()):
                findings.append(Finding(
                    "lazy-static", function.name,
                    f"check-then-initialize pattern on global "
                    f"{stmt.place.var}; hardcode the constant"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def check_function(function, loop_budget=DEFAULT_LOOP_BUDGET) -> List[Finding]:
    """All four retrofit lints for one function."""
    findings = []
    findings.extend(lint_loop_bodies(function, loop_budget))
    findings.extend(lint_no_indirect_calls(function))
    findings.extend(lint_discriminant_casts(function))
    findings.extend(lint_no_lazy_static(function))
    return findings


def check_retrofitted(program, loop_budget=DEFAULT_LOOP_BUDGET) -> List[Finding]:
    """Lint every function; an empty result certifies retrofitted form."""
    findings = []
    for name in sorted(program.functions):
        findings.extend(check_function(program.functions[name], loop_budget))
    return findings
